"""Baseline store: CI fails only on findings that are *new*.

The committed ``analysis-baseline.json`` records accepted findings by
fingerprint (rule + path + message, deliberately line-independent so
unrelated edits don't churn it).  ``repro lint --fix-baseline`` rewrites
the file deterministically — entries sorted by (path, rule, message),
stable JSON formatting — so regenerating it never produces noisy diffs.
"""

from __future__ import annotations

import json
from pathlib import Path

from .core import Finding

__all__ = [
    "BASELINE_VERSION",
    "load_baseline",
    "render_baseline",
    "split_findings",
]

BASELINE_VERSION = 1


def load_baseline(path: Path | None) -> dict[str, dict]:
    """Accepted findings keyed by fingerprint; empty when absent."""
    if path is None or not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        entry["fingerprint"]: entry
        for entry in payload.get("findings", [])
        if "fingerprint" in entry
    }


def render_baseline(findings: list[Finding]) -> str:
    """Deterministic JSON text for the baseline file."""
    unique = {finding.fingerprint: finding for finding in findings}
    entries = sorted(
        unique.values(),
        key=lambda f: (f.path, f.rule, f.message, f.fingerprint),
    )
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Accepted findings for `repro lint`; regenerate with "
            "`repro lint --fix-baseline`. Entries match by fingerprint "
            "(rule+path+message), so line drift does not invalidate them."
        ),
        "findings": [
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def split_findings(
    findings: list[Finding], baseline: dict[str, dict]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition into (new, baselined) and list stale baseline entries."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        seen.add(finding.fingerprint)
        if finding.fingerprint in baseline:
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - seen)
    return new, baselined, stale
