"""WIRE001/002/003: dataclasses must round-trip through their wire forms.

The ``/v1`` transport and the serving types keep JSON encodings in sync by
hand (``to_dict``/``from_dict``, ``to_wire``/``from_wire``).  The classic
drift bug is adding a field to the dataclass and only one side of the
codec; the payload then silently drops or resets the field.  For every
*dataclass* that defines both a to-method and a from-method:

* WIRE001 — a declared field is never serialized: the to-method neither
  reads ``self.<field>`` nor defers to ``asdict``/``fields`` generically;
* WIRE002 — a declared field is never parsed: the from-method neither
  passes it to ``cls(...)`` nor constructs via ``cls(**payload)``;
* WIRE003 — key symmetry: a literal key written by the to-method must be
  *mentioned* by the from-method and vice versa.  The mention check uses
  every string constant in the opposing method, so dynamic loops like
  ``for key in ("arch", "hops"):`` count as coverage; ``protocol`` is
  exempt (version stamps are written, not read back into the object).

A method that uses the generic form (``asdict(self)``, ``fields(self)``,
``cls(**payload)``) covers every field by construction, and key symmetry
is skipped when either side is generic.
"""

from __future__ import annotations

import ast

from .core import ClassModel, Collector, Project, dotted_name

__all__ = ["check_wire"]

_TO_METHODS = ("to_wire", "to_dict")
_FROM_METHODS = ("from_wire", "from_dict")
_GENERIC_HELPERS = {"asdict", "fields", "astuple"}
#: keys a to-method may stamp without the from-method reading them back.
_KEY_WHITELIST = {"protocol"}


def _is_generic_to(method: ast.AST) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (
                name is not None
                and name.rsplit(".", maxsplit=1)[-1] in _GENERIC_HELPERS
            ):
                return True
    return False


def _is_generic_from(method: ast.AST, cls_name: str) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("cls", cls_name):
                if any(kw.arg is None for kw in node.keywords):
                    return True
    return False


def _self_reads(method: ast.AST) -> set[str]:
    reads: set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
    return reads


def _ctor_fields(method: ast.AST, cls: ClassModel) -> set[str]:
    covered: set[str] = set()
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Name) and func.id in ("cls", cls.name)
        ):
            continue
        for kw in node.keywords:
            if kw.arg is not None:
                covered.add(kw.arg)
        for index, _ in enumerate(node.args):
            if index < len(cls.dataclass_fields):
                covered.add(cls.dataclass_fields[index])
    return covered


def _written_keys(method: ast.AST) -> set[str]:
    """Literal wire keys the to-method produces: dict-literal keys plus
    ``out["key"] = ...`` subscript stores."""
    keys: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Store)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
    return keys


def _read_keys(method: ast.AST) -> set[str]:
    """Literal wire keys the from-method consumes: ``payload["key"]``,
    ``payload.get("key")`` and ``"key" in payload`` membership tests."""
    keys: set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            if isinstance(node.left, ast.Constant) and isinstance(
                node.left.value, str
            ):
                keys.add(node.left.value)
    return keys


def _mentioned_strings(method: ast.AST) -> set[str]:
    return {
        node.value
        for node in ast.walk(method)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def check_wire(project: Project, collector: Collector) -> None:
    for models in project.classes.values():
        for cls in models:
            if not cls.is_dataclass or not cls.dataclass_fields:
                continue
            to_name = next(
                (name for name in _TO_METHODS if name in cls.methods), None
            )
            from_name = next(
                (name for name in _FROM_METHODS if name in cls.methods), None
            )
            if to_name is None or from_name is None:
                continue
            _check_pair(collector, cls, to_name, from_name)


def _check_pair(
    collector: Collector, cls: ClassModel, to_name: str, from_name: str
) -> None:
    to_method = cls.methods[to_name]
    from_method = cls.methods[from_name]
    generic_to = _is_generic_to(to_method)
    generic_from = _is_generic_from(from_method, cls.name)

    if not generic_to:
        serialized = _self_reads(to_method)
        for name in cls.dataclass_fields:
            if name not in serialized:
                collector.emit(
                    cls.module,
                    to_method.lineno,
                    "WIRE001",
                    f"field '{cls.name}.{name}' is never serialized by "
                    f"{to_name}()",
                )
    if not generic_from:
        parsed = _ctor_fields(from_method, cls)
        for name in cls.dataclass_fields:
            if name not in parsed:
                collector.emit(
                    cls.module,
                    from_method.lineno,
                    "WIRE002",
                    f"field '{cls.name}.{name}' is never parsed by "
                    f"{from_name}()",
                )
    if generic_to or generic_from:
        return
    written = _written_keys(to_method) - _KEY_WHITELIST
    read = _read_keys(from_method) - _KEY_WHITELIST
    from_mentions = _mentioned_strings(from_method)
    to_mentions = _mentioned_strings(to_method)
    for key in sorted(written - from_mentions):
        collector.emit(
            cls.module,
            to_method.lineno,
            "WIRE003",
            f"wire key '{key}' is written by {cls.name}.{to_name}() but "
            f"never read by {from_name}()",
        )
    for key in sorted(read - to_mentions):
        collector.emit(
            cls.module,
            from_method.lineno,
            "WIRE003",
            f"wire key '{key}' is read by {cls.name}.{from_name}() but "
            f"never written by {to_name}()",
        )
