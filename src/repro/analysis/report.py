"""Text and JSON emitters for analysis results.

The text form is for humans at a terminal; the JSON form is the CI
artifact (``repro lint --format json``) and includes the lock-order graph
so the deadlock-freedom proof ships with every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core import RULES, Finding
from .dynamic import DynamicDiff
from .lockorder import LockOrderGraph

__all__ = ["AnalysisResult", "render_text", "render_json", "render_rules"]


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)  # all, sorted
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)  # baseline fingerprints
    suppressed: int = 0
    files: int = 0
    graph: LockOrderGraph = field(default_factory=LockOrderGraph)
    #: observed-vs-static diff when ``--verify-dynamic`` ran, else None.
    dynamic: DynamicDiff | None = None

    @property
    def ok(self) -> bool:
        return not self.new


def render_text(result: AnalysisResult) -> str:
    lines: list[str] = []
    for finding in result.new:
        lines.append(finding.render())
    status = "clean" if result.ok else f"{len(result.new)} new finding(s)"
    summary = (
        f"repro lint: {status} — {result.files} files, "
        f"{len(result.findings)} finding(s) total "
        f"({len(result.baselined)} baselined, {result.suppressed} "
        f"suppressed inline)"
    )
    lines.append(summary)
    if result.stale:
        lines.append(
            f"note: {len(result.stale)} stale baseline entr(y/ies) no "
            "longer fire; run `repro lint --fix-baseline` to drop them"
        )
    cycles = "acyclic" if result.graph.acyclic else (
        f"{len(result.graph.cycles)} cycle(s)"
    )
    lines.append(
        f"lock-order graph: {len(result.graph.nodes)} locks, "
        f"{len(result.graph.edges)} edges, {cycles}"
    )
    if result.dynamic is not None:
        diff = result.dynamic
        merged = "acyclic" if not diff.merged_cycles else (
            f"{len(diff.merged_cycles)} CYCLE(S)"
        )
        lines.append(
            f"dynamic verify ({diff.observed.source}): "
            f"{len(diff.observed.edges)} observed edge(s) — "
            f"{len(diff.matched)} matched, "
            f"{len(diff.missing_static)} missing from static, "
            f"{len(diff.unexercised)} static edge(s) unexercised; "
            f"merged graph {merged}; "
            f"{len(diff.observed.findings)} runtime finding(s)"
        )
        if diff.unexercised:
            lines.append("unexercised static edges (coverage gaps):")
            lines.extend(
                f"  {edge.src.label} -> {edge.dst.label}  "
                f"({edge.path}:{edge.line})"
                for edge in diff.unexercised
            )
    return "\n".join(lines) + "\n"


def render_json(result: AnalysisResult) -> dict:
    payload = {
        "ok": result.ok,
        "files": result.files,
        "summary": {
            "total": len(result.findings),
            "new": len(result.new),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "stale_baseline_entries": len(result.stale),
        },
        "findings": [finding.to_dict() for finding in result.new],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "stale": list(result.stale),
        "lock_order": result.graph.to_dict(),
    }
    if result.dynamic is not None:
        payload["dynamic"] = result.dynamic.to_dict()
    return payload


def render_rules() -> str:
    lines = ["rule catalog:"]
    for rule, (severity, description) in sorted(RULES.items()):
        lines.append(f"  {rule:9s} [{severity:7s}] {description}")
    return "\n".join(lines) + "\n"
