"""ENDPT001/002: wire dataclass ↔ HTTP route ↔ client method parity.

The transport keeps three things in sync by hand: the request/response
dataclasses in ``protocol.py``, the routes ``_Handler`` registers, and
the ``RemoteNavigationClient``/``FleetClient`` methods that speak them.
Drift is silent — an unparsed request dataclass or a route that replies
with a raw dict literal ships untyped bytes nobody round-trip-checks.

Module roles are detected structurally, not by filename: a *handler
module* defines a class deriving from ``BaseHTTPRequestHandler``; a
*client module* defines a class with a ``_call`` method (or a subclass
of one, e.g. ``FleetClient(RemoteNavigationClient)``).  Wire dataclasses
are the ``*Request`` / ``*Response`` dataclasses of any analyzed
``protocol.py``.

* ENDPT001 — a request dataclass whose ``X.from_wire`` is never called
  in a handler module (no registered route accepts it), or which is
  never constructed in a client module (nothing sends it).
* ENDPT002 — a response dataclass never constructed in a handler module
  (no route emits it) or whose ``from_wire`` no client calls (the reply
  shape is unchecked); plus orphan routes: a handler ``_reply`` whose
  payload is a raw dict literal instead of a protocol dataclass.
"""

from __future__ import annotations

import ast

from .core import Collector, Project, SourceModule, dotted_name

__all__ = ["check_endpoints"]


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        name = dotted_name(base)
        if name is not None:
            names.add(name.rsplit(".", maxsplit=1)[-1])
    return names


def check_endpoints(project: Project, collector: Collector) -> None:
    protocol_mods = [
        m for m in project.modules if m.relpath.endswith("protocol.py")
    ]
    if not protocol_mods:
        return

    handler_mods: set[int] = set()
    client_mods: set[int] = set()
    for models in project.classes.values():
        for cls in models:
            bases = _base_names(cls.node)
            if "BaseHTTPRequestHandler" in bases:
                handler_mods.add(id(cls.module))
            if "_call" in cls.methods:
                client_mods.add(id(cls.module))
            else:
                for base in bases:
                    parent = project.class_named(base)
                    if parent is not None and "_call" in parent.methods:
                        client_mods.add(id(cls.module))
                        break

    from_wire: dict[str, set[int]] = {}
    constructed: dict[str, set[int]] = {}
    dict_replies: list[tuple[SourceModule, int]] = []
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "from_wire" and isinstance(
                    func.value, ast.Name
                ):
                    from_wire.setdefault(func.value.id, set()).add(id(module))
                elif (
                    func.attr == "_reply"
                    and id(module) in handler_mods
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Dict)
                ):
                    dict_replies.append((module, node.lineno))
            elif isinstance(func, ast.Name):
                constructed.setdefault(func.id, set()).add(id(module))

    for name in sorted(project.classes):
        for cls in project.classes[name]:
            if cls.module not in protocol_mods or not cls.is_dataclass:
                continue
            line = cls.node.lineno
            if name.endswith("Request"):
                if not (from_wire.get(name, set()) & handler_mods):
                    collector.emit(
                        cls.module,
                        line,
                        "ENDPT001",
                        f"request dataclass '{name}' is never parsed by an "
                        f"HTTP handler (no registered route calls "
                        f"{name}.from_wire)",
                    )
                if not (constructed.get(name, set()) & client_mods):
                    collector.emit(
                        cls.module,
                        line,
                        "ENDPT001",
                        f"request dataclass '{name}' is never constructed "
                        f"by a client (no client method sends it)",
                    )
            elif name.endswith("Response"):
                if not (constructed.get(name, set()) & handler_mods):
                    collector.emit(
                        cls.module,
                        line,
                        "ENDPT002",
                        f"response dataclass '{name}' is never constructed "
                        f"by an HTTP handler (no route replies with it)",
                    )
                if not (from_wire.get(name, set()) & client_mods):
                    collector.emit(
                        cls.module,
                        line,
                        "ENDPT002",
                        f"response dataclass '{name}' is never parsed by a "
                        f"client (its wire shape is unchecked; no client "
                        f"calls {name}.from_wire)",
                    )

    for module, line in dict_replies:
        collector.emit(
            module,
            line,
            "ENDPT002",
            "route replies with a raw dict literal instead of a protocol "
            "response dataclass (orphan route: the wire shape is untyped "
            "and unchecked)",
        )
