"""Command-line front end for the analysis pass.

Reached three ways, all sharing :func:`run_lint`:

* ``repro lint`` — subcommand of the main CLI;
* ``python -m repro.analysis`` — direct module entry;
* the CI ``analysis`` job — ``repro lint --format json`` with the findings
  and lock-order-graph report uploaded as artifacts.

Exit status is 0 when no *new* (non-baselined, non-suppressed) findings
fire, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import (
    default_baseline_path,
    default_paths,
    default_root,
    run_analysis,
)
from .baseline import render_baseline
from .dynamic import render_dot
from .report import render_json, render_rules, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root for relative paths and the default baseline",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <root>/analysis-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding as new",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "dot"),
        default="text",
        help=(
            "output format (default: text; `dot` renders the merged "
            "static+observed lock graph for Graphviz)"
        ),
    )
    parser.add_argument(
        "--graph",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "also write the lock-order graph report to PATH "
            "(DOT when --format dot, text otherwise)"
        ),
    )
    parser.add_argument(
        "--verify-dynamic",
        type=Path,
        default=None,
        metavar="OBSERVED",
        help=(
            "cross-validate a runtime sanitizer report (see "
            "repro.analysis.sanitizer) against the static LOCK002 graph; "
            "observed edges missing from the static graph fail the run"
        ),
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.rules:
        sys.stdout.write(render_rules())
        return 0
    root = (args.root or default_root()).resolve()
    paths = [path.resolve() for path in args.paths] or default_paths(root)
    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    else:
        baseline_path = args.baseline or default_baseline_path(root)

    result = run_analysis(
        paths,
        root,
        baseline_path=baseline_path,
        observed_path=args.verify_dynamic,
    )

    if args.fix_baseline:
        target = args.baseline or default_baseline_path(root)
        target.write_text(render_baseline(result.findings), encoding="utf-8")
        sys.stdout.write(
            f"wrote {target} ({len(result.findings)} accepted finding(s))\n"
        )
        return 0

    observed = result.dynamic.observed if result.dynamic else None
    if args.graph is not None:
        args.graph.parent.mkdir(parents=True, exist_ok=True)
        if args.format == "dot":
            args.graph.write_text(
                render_dot(result.graph, observed), encoding="utf-8"
            )
        else:
            args.graph.write_text(result.graph.render(), encoding="utf-8")

    if args.format == "json":
        sys.stdout.write(json.dumps(render_json(result), indent=2) + "\n")
    elif args.format == "dot":
        sys.stdout.write(render_dot(result.graph, observed))
    else:
        sys.stdout.write(render_text(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="project-specific static analysis (see `--rules`)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
