"""LOCK002: the cross-module lock-acquisition graph must stay acyclic.

Two threads acquiring the same pair of locks in opposite orders is the
classic deadlock; the serving layer avoids it by convention (server lock
before queue lock, scheduler lock before stats lock, never the reverse).
This checker turns the convention into a machine-checked invariant:

1. every function is scanned once, recording which locks it acquires
   directly (``with self.<lock>:``, canonicalized through ``Condition``
   aliases) and which calls it makes while holding which locks — call
   receivers are typed via :class:`~repro.analysis.core.TypeEnv`;
2. a fixpoint propagates *may-acquire* sets through resolved calls, so an
   edge is recorded even when the nested acquisition is two calls deep
   (``cancel() -> queue.discard() -> with queue._lock``);
3. the resulting directed graph — nodes are ``Class.attr`` locks — is
   checked for cycles, and re-acquiring a non-reentrant lock already held
   is flagged as a one-node cycle.

The full graph (plus a topological order proving acyclicity) is emitted as
a report artifact; unresolvable receivers simply contribute no edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import Collector, FunctionModel, Project, TypeEnv

__all__ = ["LockNode", "LockEdge", "LockOrderGraph", "analyze_lock_order"]


@dataclass(frozen=True, order=True)
class LockNode:
    cls: str
    attr: str

    @property
    def label(self) -> str:
        return f"{self.cls}.{self.attr}"


@dataclass
class LockEdge:
    """``src`` held while ``dst`` is acquired, with the first witness site."""

    src: LockNode
    dst: LockNode
    path: str
    line: int
    via: str
    count: int = 1

    def to_dict(self) -> dict:
        return {
            "src": self.src.label,
            "dst": self.dst.label,
            "path": self.path,
            "line": self.line,
            "via": self.via,
            "sites": self.count,
        }


@dataclass
class LockOrderGraph:
    nodes: list[LockNode] = field(default_factory=list)
    edges: list[LockEdge] = field(default_factory=list)
    cycles: list[list[LockNode]] = field(default_factory=list)

    @property
    def acyclic(self) -> bool:
        return not self.cycles

    def topological_order(self) -> list[LockNode] | None:
        """Kahn's algorithm over the edge set; ``None`` while cyclic."""
        if not self.acyclic:
            return None
        indegree = {node: 0 for node in self.nodes}
        adjacency: dict[LockNode, list[LockNode]] = {
            node: [] for node in self.nodes
        }
        for edge in self.edges:
            adjacency.setdefault(edge.src, []).append(edge.dst)
            indegree.setdefault(edge.src, 0)
            indegree[edge.dst] = indegree.get(edge.dst, 0) + 1
        ready = sorted(node for node, deg in indegree.items() if deg == 0)
        order: list[LockNode] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in adjacency.get(node, ()):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
                    ready.sort()
        return order

    def to_dict(self) -> dict:
        return {
            "locks": [node.label for node in self.nodes],
            "edges": [edge.to_dict() for edge in self.edges],
            "acyclic": self.acyclic,
            "cycles": [
                [node.label for node in cycle] for cycle in self.cycles
            ],
            "topological_order": [
                node.label for node in self.topological_order() or []
            ],
        }

    def render(self) -> str:
        lines = [
            f"lock-order graph: {len(self.nodes)} locks, "
            f"{len(self.edges)} nested-acquisition edges",
            "",
            "locks:",
        ]
        lines.extend(f"  {node.label}" for node in self.nodes)
        lines.append("")
        lines.append("edges (held -> acquired):")
        if not self.edges:
            lines.append("  (none)")
        for edge in self.edges:
            plural = "site" if edge.count == 1 else "sites"
            lines.append(
                f"  {edge.src.label} -> {edge.dst.label}  "
                f"[{edge.count} {plural}; first: {edge.path}:{edge.line} "
                f"via {edge.via}]"
            )
        lines.append("")
        if self.acyclic:
            order = self.topological_order() or []
            lines.append("cycles: none — the acquisition graph is acyclic")
            if order:
                lines.append(
                    "safe acquisition order: "
                    + " -> ".join(node.label for node in order)
                )
        else:
            lines.append("cycles (deadlock potential):")
            for cycle in self.cycles:
                path = " -> ".join(node.label for node in cycle)
                lines.append(f"  {path} -> {cycle[0].label}")
        lines.append("")
        return "\n".join(lines)


@dataclass
class _FunctionScan:
    """Raw facts from one pass over a function body."""

    direct: set[LockNode] = field(default_factory=set)
    #: (callee qualname, held locks, line, callee display name)
    calls: list[tuple[str, frozenset[LockNode], int, str]] = field(
        default_factory=list
    )
    #: (src, dst, line) for a literal ``with`` nested under a held lock.
    nested_withs: list[tuple[LockNode, LockNode, int]] = field(
        default_factory=list
    )


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _scan_function(project: Project, func: FunctionModel) -> _FunctionScan:
    scan = _FunctionScan()
    env = TypeEnv(project, func)
    cls = project.class_named(func.cls)
    own_locks = cls.locks if cls is not None else {}
    holds = ()
    if cls is not None:
        holds = cls.holds_methods.get(func.name, ())
    initial = frozenset(
        LockNode(cls.name, cls.canonical_lock(name)) for name in holds
    ) if cls is not None else frozenset()

    def walk(node: ast.AST, held: frozenset[LockNode]) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            env.record_assign(node)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                walk(item.context_expr, held)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in own_locks and cls is not None:
                    dst = LockNode(cls.name, cls.canonical_lock(attr))
                    acquired.add(dst)
                    scan.direct.add(dst)
                    for src in held:
                        scan.nested_withs.append((src, dst, node.lineno))
            inner = held | acquired
            for stmt in node.body:
                walk(stmt, inner)
            return
        if isinstance(node, ast.Call):
            callee = project.resolve_call(node, env)
            if callee is not None:
                display = (
                    f"{callee.cls}.{callee.name}"
                    if callee.cls is not None
                    else callee.name
                )
                scan.calls.append(
                    (callee.qualname, held, node.lineno, display)
                )
        for child in ast.iter_child_nodes(node):
            walk(child, held)

    for stmt in func.node.body:
        walk(stmt, initial)
    return scan


def _lock_kind(project: Project, node: LockNode) -> str:
    cls = project.class_named(node.cls)
    if cls is None or node.attr not in cls.locks:
        return "lock"
    return cls.locks[node.attr].kind


def _find_cycles(
    nodes: list[LockNode], adjacency: dict[LockNode, list[LockNode]]
) -> list[list[LockNode]]:
    """Distinct elementary cycles found by DFS (one witness per back edge)."""
    cycles: list[list[LockNode]] = []
    seen_keys: set[tuple[LockNode, ...]] = set()
    color: dict[LockNode, int] = {}  # 0/absent=white, 1=on stack, 2=done
    stack: list[LockNode] = []

    def visit(node: LockNode) -> None:
        color[node] = 1
        stack.append(node)
        for nxt in adjacency.get(node, ()):
            state = color.get(nxt, 0)
            if state == 0:
                visit(nxt)
            elif state == 1:
                cycle = stack[stack.index(nxt):]
                pivot = cycle.index(min(cycle))
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen_keys:
                    seen_keys.add(canonical)
                    cycles.append(list(canonical))
        stack.pop()
        color[node] = 2

    for node in nodes:
        if color.get(node, 0) == 0:
            visit(node)
    return cycles


def analyze_lock_order(
    project: Project, collector: Collector
) -> LockOrderGraph:
    scans: dict[str, _FunctionScan] = {}
    functions: dict[str, FunctionModel] = {}
    for models in project.functions.values():
        for func in models:
            functions[func.qualname] = func
            scans[func.qualname] = _scan_function(project, func)

    # Fixpoint: a function may acquire whatever it acquires directly plus
    # whatever any resolved callee may acquire.
    may: dict[str, set[LockNode]] = {
        name: set(scan.direct) for name, scan in scans.items()
    }
    changed = True
    while changed:
        changed = False
        for name, scan in scans.items():
            acquired = may[name]
            before = len(acquired)
            for callee, _, _, _ in scan.calls:
                acquired |= may.get(callee, set())
            if len(acquired) != before:
                changed = True

    edges: dict[tuple[LockNode, LockNode], LockEdge] = {}
    reentries: list[tuple[LockNode, FunctionModel, int, str]] = []

    def add_edge(
        src: LockNode, dst: LockNode, func: FunctionModel, line: int, via: str
    ) -> None:
        if src == dst:
            if _lock_kind(project, src) != "rlock":
                reentries.append((src, func, line, via))
            return
        edge = edges.get((src, dst))
        if edge is None:
            edges[(src, dst)] = LockEdge(
                src=src,
                dst=dst,
                path=func.module.relpath,
                line=line,
                via=via,
            )
        else:
            edge.count += 1

    for name, scan in scans.items():
        func = functions[name]
        for src, dst, line in scan.nested_withs:
            add_edge(src, dst, func, line, f"with self.{dst.attr}")
        for callee, held, line, display in scan.calls:
            for dst in may.get(callee, ()):
                for src in held:
                    add_edge(src, dst, func, line, f"call to {display}()")

    # Every base lock declared anywhere is a node, connected or not.
    nodes: set[LockNode] = set()
    for models in project.classes.values():
        for cls in models:
            for attr in cls.locks:
                if cls.canonical_lock(attr) == attr:
                    nodes.add(LockNode(cls.name, attr))
    for (src, dst) in edges:
        nodes.update((src, dst))

    graph = LockOrderGraph(
        nodes=sorted(nodes),
        edges=sorted(edges.values(), key=lambda e: (e.src, e.dst)),
    )
    adjacency: dict[LockNode, list[LockNode]] = {}
    for edge in graph.edges:
        adjacency.setdefault(edge.src, []).append(edge.dst)
    graph.cycles = _find_cycles(graph.nodes, adjacency)

    for src, func, line, via in reentries:
        collector.emit(
            func.module,
            line,
            "LOCK002",
            f"non-reentrant lock '{src.label}' may be re-acquired while "
            f"already held ({via} in {func.qualname.split('::')[-1]})",
        )
    for cycle in graph.cycles:
        witness = next(
            (
                edge
                for edge in graph.edges
                if edge.src == cycle[0]
                and edge.dst == cycle[(1) % len(cycle)]
            ),
            graph.edges[0] if graph.edges else None,
        )
        path = " -> ".join(node.label for node in cycle)
        module = None
        line = 1
        if witness is not None:
            line = witness.line
            for mod in project.modules:
                if mod.relpath == witness.path:
                    module = mod
                    break
        if module is None:
            module = project.modules[0]
        collector.emit(
            module,
            line,
            "LOCK002",
            f"lock-order cycle: {path} -> {cycle[0].label}",
        )
    return graph
