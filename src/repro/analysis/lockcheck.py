"""LOCK001 + LOCK003: guarded-field discipline and blocking-under-lock.

Held locks are tracked *lexically*: entering ``with self.<lock>:`` adds the
lock (canonicalized through ``Condition(base)`` aliases) for the duration of
the block, and nested ``def``/``lambda`` bodies inherit the enclosing held
set.  That inheritance is deliberate — the serving layer's only nested
callables under a lock (e.g. the ``wait_for`` predicate in
``NavigationServer.drain``) really do run with the lock held.

* LOCK001 — a field annotated ``# guarded-by: <lock>`` is read or written
  via ``self.<field>`` while the lock is not held.  ``__init__`` is exempt
  (the object is not yet shared).  Helpers documented ``# holds: <lock>``
  start with that lock considered held.
* LOCK003 — a call that can block for unbounded or external time happens
  while *any* lock is held: ``time.sleep``, ``.wait()``/``.wait_for()``
  without a timeout, subprocess/socket/HTTP calls, or profiling execution
  (``profile``/``profile_one``/``profile_configs``/``_execute``).
"""

from __future__ import annotations

import ast

from .core import ClassModel, Collector, Project, dotted_name

__all__ = ["check_locks"]

#: dotted-name prefixes that mean "this call leaves the process / sleeps".
_BLOCKING_PREFIXES = (
    "time.sleep",
    "subprocess.",
    "socket.",
    "requests.",
    "urllib.request.",
    "http.client.",
)

#: simple callee names that run profiling workloads (seconds, not micros).
_PROFILING_CALLEES = {
    "profile",
    "profile_one",
    "profile_configs",
    "_execute",
    "_execute_local",
    "run_batch",
}


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_blocking_reason(call: ast.Call) -> str | None:
    """Why this call counts as blocking, or ``None`` if it does not."""
    dotted = dotted_name(call.func)
    if dotted is not None:
        for prefix in _BLOCKING_PREFIXES:
            if dotted == prefix or dotted.startswith(prefix):
                return f"'{dotted}'"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr == "wait":
            has_timeout = bool(call.args) or any(
                kw.arg == "timeout" for kw in call.keywords
            )
            if not has_timeout:
                return "'.wait()' without a timeout"
            return None
        if attr == "wait_for":
            has_timeout = len(call.args) >= 2 or any(
                kw.arg == "timeout" for kw in call.keywords
            )
            if not has_timeout:
                return "'.wait_for()' without a timeout"
            return None
        if attr in _PROFILING_CALLEES:
            return f"profiling call '.{attr}()'"
    elif isinstance(call.func, ast.Name) and call.func.id in _PROFILING_CALLEES:
        return f"profiling call '{call.func.id}()'"
    return None


class _LockWalker:
    """Walks one method body tracking the canonical held-lock set."""

    def __init__(
        self,
        cls: ClassModel,
        method: str,
        collector: Collector,
        check_guards: bool,
    ) -> None:
        self.cls = cls
        self.method = method
        self.collector = collector
        self.check_guards = check_guards

    def walk(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                self.walk(item.context_expr, held)
                if item.optional_vars is not None:
                    self.walk(item.optional_vars, held)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.cls.locks:
                    acquired.add(self.cls.canonical_lock(attr))
            inner = held | acquired
            for stmt in node.body:
                self.walk(stmt, inner)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self._check_guarded(node, attr, held)
        elif isinstance(node, ast.Call) and held:
            reason = _call_blocking_reason(node)
            if reason is not None:
                locks = ", ".join(
                    sorted(f"{self.cls.name}.{name}" for name in held)
                )
                self.collector.emit(
                    self.cls.module,
                    node.lineno,
                    "LOCK003",
                    f"blocking call {reason} in "
                    f"{self.cls.name}.{self.method}() while holding {locks}",
                )
        for child in ast.iter_child_nodes(node):
            self.walk(child, held)

    def _check_guarded(
        self, node: ast.Attribute, attr: str, held: frozenset[str]
    ) -> None:
        if not self.check_guards:
            return
        guards = self.cls.guarded_fields.get(attr)
        if guards is None:
            return
        required = self.cls.expand_held(guards)
        if required <= held:
            return
        missing = ", ".join(sorted(f"'{name}'" for name in required - held))
        self.collector.emit(
            self.cls.module,
            node.lineno,
            "LOCK001",
            f"field '{self.cls.name}.{attr}' is guarded by {missing} but "
            f"{self.cls.name}.{self.method}() accesses it without holding "
            "the lock",
        )


def check_locks(project: Project, collector: Collector) -> None:
    for models in project.classes.values():
        for cls in models:
            if not cls.locks and not cls.guarded_fields:
                continue
            for name, method in cls.methods.items():
                held = cls.expand_held(cls.holds_methods.get(name, ()))
                walker = _LockWalker(
                    cls,
                    name,
                    collector,
                    # __init__ builds the object before it is shared, so
                    # guarded-field discipline does not apply there yet.
                    check_guards=name != "__init__",
                )
                for stmt in method.body:
                    walker.walk(stmt, held)
