"""PLUMB001: cancellation/progress seats must be threaded through.

The serving stack plumbs ``cancel`` (a :class:`CancellationToken`),
``on_progress`` and ``on_run`` callbacks from the server down through
``profile_configs`` into ``ProfilingService._execute``.  Dropping one of
those seats in an intermediate call is the invariant-breaking bug this rule
targets: the job keeps running after cancellation, or progress events stop
flowing, with no error anywhere.

A function that *accepts* a seat parameter must forward it whenever it
calls a function that also explicitly accepts that seat.  Calls that splat
``**kwargs`` are skipped (the seat may ride along inside), and callees are
resolved through the shared type environment first, falling back to a
unique simple-name match so module-local helpers resolve too.
"""

from __future__ import annotations

import ast

from .core import Collector, FunctionModel, Project, TypeEnv

__all__ = ["SEATS", "check_plumbing"]

#: parameter names that carry cancellation/progress plumbing.
SEATS = ("cancel", "on_progress", "on_run")


def _resolve(
    project: Project, env: TypeEnv, call: ast.Call
) -> FunctionModel | None:
    callee = project.resolve_call(call, env)
    if callee is not None:
        return callee
    name = None
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    candidates = project.functions.get(name or "", [])
    if len(candidates) == 1:
        return candidates[0]
    return None


def _seat_passed(call: ast.Call, callee: FunctionModel, seat: str) -> bool:
    if any(kw.arg is None for kw in call.keywords):
        return True  # **kwargs may carry the seat; give it the benefit
    if any(kw.arg == seat for kw in call.keywords):
        return True
    position = callee.keyword_position(seat)
    return position is not None and len(call.args) > position


def _check_function(
    project: Project, func: FunctionModel, collector: Collector
) -> None:
    seats = [
        seat
        for seat in SEATS
        if seat in func.params
    ]
    if not seats:
        return
    env = TypeEnv(project, func)
    caller = f"{func.cls}.{func.name}" if func.cls else func.name

    def walk(node: ast.AST) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            env.record_assign(node)
        if isinstance(node, ast.Call):
            callee = _resolve(project, env, node)
            if callee is not None and callee.node is not func.node:
                display = (
                    f"{callee.cls}.{callee.name}"
                    if callee.cls
                    else callee.name
                )
                for seat in seats:
                    if seat not in callee.params:
                        continue
                    if not _seat_passed(node, callee, seat):
                        collector.emit(
                            func.module,
                            node.lineno,
                            "PLUMB001",
                            f"{caller}() accepts '{seat}' but drops it when "
                            f"calling {display}(), which also accepts "
                            f"'{seat}'",
                        )
        for child in ast.iter_child_nodes(node):
            walk(child)

    for stmt in func.node.body:
        walk(stmt)


def check_plumbing(project: Project, collector: Collector) -> None:
    for models in project.functions.values():
        for func in models:
            _check_function(project, func, collector)
