"""Shared model of the project-specific static analysis pass.

The serving layer coordinates ~40 lock/condition sites and keeps a hand-
rolled JSON wire protocol in sync with its dataclasses; :mod:`repro.analysis`
encodes those system invariants once and enforces them at lint time.  This
module holds everything the rule checkers share:

* :class:`Finding` — one typed diagnostic (rule id, path:line, message,
  severity) with a line-independent fingerprint for the baseline store;
* source annotations — ``# guarded-by: <lock>`` marks a field that must only
  be touched under that lock, ``# holds: <lock>`` marks a helper that is
  only ever called with the lock already held, and ``# lint: disable=RULE``
  suppresses findings on its line;
* the project model — per-class lock declarations (with ``Condition(lock)``
  aliasing), guarded fields, attribute/parameter types, dataclass fields,
  and a function registry — built once per run and consumed by every rule.

The analysis is best-effort and *syntactic*: it resolves method calls only
through annotations and constructor assignments it can see, and prefers a
missed edge over a false one.  Everything here is stdlib-only by design.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "RULES",
    "Finding",
    "Collector",
    "SourceModule",
    "LockDecl",
    "ClassModel",
    "FunctionModel",
    "Project",
    "TypeEnv",
    "annotation_name",
    "dotted_name",
    "discover_files",
    "build_project",
]

#: rule catalog: id -> (default severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "LOCK001": ("error", "guarded field accessed outside its lock"),
    "LOCK002": ("error", "lock-order cycle (deadlock potential)"),
    "LOCK003": ("warning", "blocking call inside a held-lock region"),
    "WIRE001": ("error", "wire dataclass field never serialized"),
    "WIRE002": ("error", "wire dataclass field never parsed"),
    "WIRE003": ("warning", "wire key serialized or parsed on one side only"),
    "PLUMB001": ("error", "cancellation/progress seat not forwarded"),
    "ENDPT001": ("error", "wire request dataclass without route/client parity"),
    "ENDPT002": ("error", "wire response, or route, out of endpoint parity"),
    "METRIC001": ("error", "metric family misregistered (name/kind/duplicate)"),
    "METRIC002": ("error", "metric label hygiene violation (labels/leak)"),
    "RES001": ("error", "thread or pool without join/daemon/shutdown path"),
    "DYN001": ("error", "observed lock-order edge missing from static graph"),
    "DYN002": ("error", "merged static+observed lock graph has a cycle"),
    "DYN003": ("error", "runtime sanitizer reported a concurrency violation"),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, and what went wrong.

    ``fingerprint`` deliberately excludes the line number, so a baseline
    entry keeps matching while unrelated edits shift the file around it.
    """

    path: str  # repo-relative posix path
    line: int
    rule: str
    message: str
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        text = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} [{self.severity}] "
            f"{self.message}"
        )


class Collector:
    """Finding sink that applies per-line ``# lint: disable`` suppressions."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []

    def emit(
        self, module: "SourceModule", line: int, rule: str, message: str
    ) -> None:
        severity = RULES[rule][0]
        finding = Finding(
            path=module.relpath,
            line=line,
            rule=rule,
            message=message,
            severity=severity,
        )
        disabled = module.suppressions.get(line)
        if disabled is not None and (not disabled or rule in disabled):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


# ------------------------------------------------------- source + annotations
# Annotations may share a comment with prose ("# lane map; guarded-by: _lock"),
# so they match anywhere after the "#", not only at the comment start.
_GUARDED_RE = re.compile(r"#.*\bguarded-by:\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)")
_HOLDS_RE = re.compile(r"#.*\bholds:\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)")
_SUPPRESS_RE = re.compile(r"#.*\blint:\s*disable(?:=([A-Z0-9_,\s]+))?")


def _split_names(text: str) -> tuple[str, ...]:
    return tuple(name.strip() for name in text.split(",") if name.strip())


@dataclass
class SourceModule:
    """One parsed file plus its comment-carried annotations (by line)."""

    path: Path
    relpath: str
    tree: ast.Module
    lines: list[str]
    guarded_by: dict[int, tuple[str, ...]] = field(default_factory=dict)
    holds: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: line -> suppressed rule ids (empty set = every rule).
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        module = cls(
            path=path,
            relpath=relpath,
            tree=ast.parse(text, filename=str(path)),
            lines=text.splitlines(),
        )
        for lineno, line in enumerate(module.lines, start=1):
            if "#" not in line:
                continue
            match = _GUARDED_RE.search(line)
            if match:
                module.guarded_by[lineno] = _split_names(match.group(1))
            match = _HOLDS_RE.search(line)
            if match:
                module.holds[lineno] = _split_names(match.group(1))
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = match.group(1)
                module.suppressions[lineno] = frozenset(
                    _split_names(rules) if rules else ()
                )
        return module


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen[sub] = None
        elif path.suffix == ".py":
            seen[path] = None
    return sorted(seen)


# ----------------------------------------------------------- syntax utilities
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def annotation_name(node: ast.AST | None) -> str | None:
    """Best-effort simple type name of an annotation expression.

    ``EventBuffer`` -> ``EventBuffer``; ``threading.Lock`` -> ``Lock``;
    ``dict[str, Job]`` -> ``dict``; ``X | None`` -> ``X``;
    ``Optional[X]`` -> ``X``; ``"Quoted"`` -> ``Quoted``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = annotation_name(node.value)
        if base == "Optional":
            return annotation_name(node.slice)
        return base
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_name(node.left)
        if left == "None":
            return annotation_name(node.right)
        return left
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``X`` for an expression of the exact shape ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


_LOCK_CTORS = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}


def _lock_ctor_kind(call: ast.AST) -> str | None:
    if not isinstance(call, ast.Call):
        return None
    name = dotted_name(call.func)
    if name is None:
        return None
    return _LOCK_CTORS.get(name.rsplit(".", maxsplit=1)[-1])


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name is not None and name.rsplit(".", maxsplit=1)[-1] == "dataclass":
            return True
    return False


# -------------------------------------------------------------- project model
@dataclass(frozen=True)
class LockDecl:
    """One lock-ish attribute of a class (``self.X = threading.Lock()``)."""

    attr: str
    kind: str  # "lock" | "rlock" | "condition"
    wraps: str | None = None  # Condition(self.Y) -> Y


@dataclass
class ClassModel:
    """Lock/field/type facts the rules need about one class."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    locks: dict[str, LockDecl] = field(default_factory=dict)
    guarded_fields: dict[str, tuple[str, ...]] = field(default_factory=dict)
    holds_methods: dict[str, tuple[str, ...]] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    dataclass_fields: list[str] = field(default_factory=list)
    is_dataclass: bool = False

    def canonical_lock(self, name: str) -> str:
        """Follow ``Condition(base_lock)`` aliases down to the base lock."""
        seen = set()
        while name in self.locks and name not in seen:
            seen.add(name)
            wraps = self.locks[name].wraps
            if wraps is None:
                break
            name = wraps
        return name

    def expand_held(self, names) -> frozenset[str]:
        """Canonical lock names covered by holding each of ``names``."""
        return frozenset(self.canonical_lock(name) for name in names)


@dataclass
class FunctionModel:
    """One function or method plus the signature facts the rules consume."""

    name: str
    qualname: str  # "relpath::Class.method" or "relpath::func"
    cls: str | None
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...] = ()
    positional: tuple[str, ...] = ()
    kwonly: tuple[str, ...] = ()
    has_varkw: bool = False
    returns: str | None = None

    def accepts(self, name: str) -> bool:
        return name in self.params or self.has_varkw

    def keyword_position(self, name: str) -> int | None:
        """Index a positional argument must reach to bind ``name`` (methods:
        ``self``/``cls`` already stripped), or ``None`` for keyword-only."""
        if name in self.positional:
            return self.positional.index(name)
        return None


class Project:
    """Everything the rule checkers share about the analyzed file set."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.classes: dict[str, list[ClassModel]] = {}
        self.functions: dict[str, list[FunctionModel]] = {}
        self._methods: dict[tuple[str, str], FunctionModel] = {}

    # ------------------------------------------------------------- registries
    def add_class(self, model: ClassModel) -> None:
        self.classes.setdefault(model.name, []).append(model)

    def add_function(self, model: FunctionModel) -> None:
        self.functions.setdefault(model.name, []).append(model)
        if model.cls is not None:
            self._methods.setdefault((model.cls, model.name), model)

    def class_named(self, name: str | None) -> ClassModel | None:
        """The class with this simple name, when it is unambiguous."""
        models = self.classes.get(name or "")
        if models is not None and len(models) == 1:
            return models[0]
        return None

    def method(self, cls: str | None, name: str) -> FunctionModel | None:
        if cls is None:
            return None
        return self._methods.get((cls, name))

    def attr_type(self, cls: str | None, attr: str) -> str | None:
        model = self.class_named(cls)
        if model is None:
            return None
        return model.attr_types.get(attr)

    # ------------------------------------------------------- call resolution
    def resolve_call(
        self, call: ast.Call, env: "TypeEnv"
    ) -> FunctionModel | None:
        """The callee function model, when types/annotations pin it down."""
        func = call.func
        if isinstance(func, ast.Name):
            # A constructor call types as the class's __init__ when known.
            cls = self.class_named(func.id)
            if cls is not None:
                return self.method(func.id, "__init__")
            candidates = self.functions.get(func.id, [])
            same_module = [
                f
                for f in candidates
                if f.module is env.module and f.cls is None
            ]
            if len(same_module) == 1:
                return same_module[0]
            if len(candidates) == 1 and candidates[0].cls is None:
                return candidates[0]
            return None
        if isinstance(func, ast.Attribute):
            receiver = env.type_of(func.value)
            return self.method(receiver, func.attr)
        return None


class TypeEnv:
    """Best-effort local type environment for one function body.

    Seeds ``self``/``cls`` and annotated parameters, then lets the caller
    record simple ``name = expr`` assignments as it walks statements in
    order.  Types are simple class names; ``None`` means unknown.
    """

    def __init__(self, project: Project, func: FunctionModel) -> None:
        self.project = project
        self.module = func.module
        self.locals: dict[str, str] = {}
        if func.cls is not None:
            self.locals["self"] = func.cls
            self.locals["cls"] = func.cls
        args = func.node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]:
            name = annotation_name(arg.annotation)
            if name is not None:
                self.locals[arg.arg] = name

    def record_assign(self, node: ast.stmt) -> None:
        """Track ``x = expr`` / ``x: T = ...`` for later receiver typing."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                inferred = self.type_of(node.value)
                if inferred is not None:
                    self.locals[target.id] = inferred
                else:
                    self.locals.pop(target.id, None)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            name = annotation_name(node.annotation)
            if name is not None:
                self.locals[node.target.id] = name

    def type_of(self, expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return self.project.attr_type(self.type_of(expr.value), expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and self.project.class_named(func.id):
                return func.id
            callee = self.project.resolve_call(expr, self)
            if callee is not None:
                return callee.returns
        return None


# ------------------------------------------------------------------- builders
def _collect_class(module: SourceModule, node: ast.ClassDef) -> ClassModel:
    model = ClassModel(
        name=node.name,
        module=module,
        node=node,
        is_dataclass=_is_dataclass_decorated(node),
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            attr = stmt.target.id
            ann = annotation_name(stmt.annotation)
            if annotation_name(stmt.annotation) == "ClassVar":
                continue
            if ann is not None:
                model.attr_types[attr] = ann
            if ann in _LOCK_CTORS:
                model.locks[attr] = LockDecl(
                    attr=attr, kind=_LOCK_CTORS[ann]
                )
            model.dataclass_fields.append(attr)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.methods[stmt.name] = stmt
            holds = module.holds.get(stmt.lineno)
            if holds is not None:
                model.holds_methods[stmt.name] = holds
    # Lock declarations, guarded-by annotations and attribute types come from
    # ``self.X = ...`` statements anywhere in the class body (usually
    # __init__); the *first* declaration of an attribute wins.
    for method in model.methods.values():
        param_types = {
            arg.arg: annotation_name(arg.annotation)
            for arg in [
                *method.args.posonlyargs,
                *method.args.args,
                *method.args.kwonlyargs,
            ]
            if arg.annotation is not None
        }
        for stmt in ast.walk(method):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                guards = module.guarded_by.get(stmt.lineno)
                if guards is not None:
                    model.guarded_fields.setdefault(attr, guards)
                if isinstance(stmt, ast.AnnAssign):
                    ann = annotation_name(stmt.annotation)
                    if ann is not None:
                        model.attr_types.setdefault(attr, ann)
                kind = _lock_ctor_kind(value)
                if kind is not None and attr not in model.locks:
                    wraps = None
                    if kind == "condition" and value.args:
                        wraps = _self_attr(value.args[0])
                    model.locks[attr] = LockDecl(
                        attr=attr, kind=kind, wraps=wraps
                    )
                elif isinstance(value, ast.Call):
                    ctor = dotted_name(value.func)
                    if ctor is not None:
                        model.attr_types.setdefault(
                            attr, ctor.rsplit(".", maxsplit=1)[-1]
                        )
                elif isinstance(value, ast.Name):
                    param_type = param_types.get(value.id)
                    if param_type is not None:
                        model.attr_types.setdefault(attr, param_type)
    return model


def _collect_function(
    module: SourceModule,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: str | None,
) -> FunctionModel:
    args = node.args
    positional = [arg.arg for arg in [*args.posonlyargs, *args.args]]
    is_method = cls is not None and positional[:1] in (["self"], ["cls"])
    if not is_method:
        for deco in node.decorator_list:
            if dotted_name(deco) in {"classmethod"} and positional[:1] == ["cls"]:
                is_method = True
    if is_method and positional:
        positional = positional[1:]
    kwonly = [arg.arg for arg in args.kwonlyargs]
    scope = f"{cls}.{node.name}" if cls is not None else node.name
    return FunctionModel(
        name=node.name,
        qualname=f"{module.relpath}::{scope}",
        cls=cls,
        module=module,
        node=node,
        params=tuple(positional) + tuple(kwonly),
        positional=tuple(positional),
        kwonly=tuple(kwonly),
        has_varkw=args.kwarg is not None,
        returns=annotation_name(node.returns),
    )


def build_project(modules: list[SourceModule]) -> Project:
    """Collect every class and function model across the analyzed files."""
    project = Project(modules)
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                project.add_class(_collect_class(module, node))
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        project.add_function(
                            _collect_function(module, stmt, node.name)
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                project.add_function(_collect_function(module, node, None))
    return project
