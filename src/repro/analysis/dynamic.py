"""Cross-validate the observed (runtime) lock graph against LOCK002.

:mod:`repro.analysis.sanitizer` writes an observed lock-order graph from
a real run; ``repro lint --verify-dynamic OBSERVED.json`` loads it here
and diffs it against the static LOCK002 graph:

* an observed edge **missing from the static graph** is a static-analyzer
  blind spot (unresolved receiver, callback indirection…) — DYN001, an
  error: the static acyclicity proof silently excludes that edge;
* a static edge **never exercised** at runtime is a coverage gap — listed
  in the report, not a finding (the run simply didn't drive that path);
* the **merged** graph (static ∪ observed) must stay acyclic — DYN002;
* runtime order-inversion / re-acquire findings recorded by the
  sanitizer re-surface as DYN003 (blocking-sleep and hold-budget
  findings are summarized but don't fail the run — they are load- and
  host-dependent).

``render_dot`` emits the merged graph in Graphviz DOT form
(``repro lint --format dot``): solid black edges were proven statically
*and* observed live, dashed gray edges are static-only (unexercised),
red edges are observed-only (analyzer gaps).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .core import RULES, Finding
from .lockorder import LockEdge, LockOrderGraph
from .sanitizer import REPORT_VERSION

__all__ = [
    "ObservedEdge",
    "ObservedGraph",
    "DynamicDiff",
    "find_label_cycles",
    "verify_dynamic",
    "render_dot",
]


@dataclass(frozen=True)
class ObservedEdge:
    """``src`` was held while ``dst`` was acquired, at runtime."""

    src: str
    dst: str
    count: int = 1
    site: str = ""

    @property
    def pair(self) -> tuple[str, str]:
        return (self.src, self.dst)


@dataclass
class ObservedGraph:
    """One sanitizer report: locks, edges, runtime findings."""

    locks: list[dict] = field(default_factory=list)
    edges: list[ObservedEdge] = field(default_factory=list)
    findings: list[dict] = field(default_factory=list)
    hold_budget_s: float | None = None
    source: str = "<observed>"

    @classmethod
    def from_dict(cls, payload: dict, source: str = "<observed>") -> "ObservedGraph":
        version = payload.get("version")
        if version != REPORT_VERSION:
            raise ValueError(
                f"unsupported observed-graph version {version!r} in {source} "
                f"(expected {REPORT_VERSION})"
            )
        edges = [
            ObservedEdge(
                src=str(edge["src"]),
                dst=str(edge["dst"]),
                count=int(edge.get("count", 1)),
                site=str(edge.get("site", "")),
            )
            for edge in payload.get("edges", [])
        ]
        return cls(
            locks=list(payload.get("locks", [])),
            edges=edges,
            findings=list(payload.get("findings", [])),
            hold_budget_s=payload.get("hold_budget_s"),
            source=source,
        )

    @classmethod
    def load(cls, path: Path) -> "ObservedGraph":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(payload, source=Path(path).as_posix())


@dataclass
class DynamicDiff:
    """The observed-vs-static comparison ``verify-dynamic`` reports."""

    observed: ObservedGraph
    matched: list[ObservedEdge] = field(default_factory=list)
    missing_static: list[ObservedEdge] = field(default_factory=list)
    unexercised: list[LockEdge] = field(default_factory=list)
    merged_cycles: list[list[str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing_static and not self.merged_cycles

    def to_dict(self) -> dict:
        return {
            "source": self.observed.source,
            "observed_edges": len(self.observed.edges),
            "matched": [e.pair for e in self.matched],
            "missing_from_static": [
                {"src": e.src, "dst": e.dst, "count": e.count, "site": e.site}
                for e in self.missing_static
            ],
            "unexercised_static": [
                {"src": e.src.label, "dst": e.dst.label,
                 "path": e.path, "line": e.line}
                for e in self.unexercised
            ],
            "merged_acyclic": not self.merged_cycles,
            "merged_cycles": self.merged_cycles,
            "runtime_findings": len(self.observed.findings),
        }


def find_label_cycles(
    pairs: set[tuple[str, str]]
) -> list[list[str]]:
    """Distinct elementary cycles in a string-labeled edge set (DFS, one
    witness per back edge — the merged-graph analogue of lockorder's
    ``_find_cycles``)."""
    adjacency: dict[str, list[str]] = {}
    nodes: set[str] = set()
    for src, dst in sorted(pairs):
        adjacency.setdefault(src, []).append(dst)
        nodes.update((src, dst))
    cycles: list[list[str]] = []
    seen_keys: set[tuple[str, ...]] = set()
    color: dict[str, int] = {}  # 0/absent=white, 1=on stack, 2=done
    stack: list[str] = []

    def visit(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for nxt in adjacency.get(node, ()):
            state = color.get(nxt, 0)
            if state == 0:
                visit(nxt)
            elif state == 1:
                cycle = stack[stack.index(nxt):]
                pivot = cycle.index(min(cycle))
                canonical = tuple(cycle[pivot:] + cycle[:pivot])
                if canonical not in seen_keys:
                    seen_keys.add(canonical)
                    cycles.append(list(canonical))
        stack.pop()
        color[node] = 2

    for node in sorted(nodes):
        if color.get(node, 0) == 0:
            visit(node)
    return cycles


#: runtime finding kinds that re-surface as lint errors (DYN003).  The
#: load-dependent kinds (blocking-sleep, hold-budget) stay report-only.
_ERROR_KINDS = ("order-inversion", "re-acquire")


def verify_dynamic(
    graph: LockOrderGraph, observed: ObservedGraph
) -> tuple[DynamicDiff, list[Finding]]:
    """Diff observed vs static edges; findings for gaps and merged cycles."""
    static_pairs = {(e.src.label, e.dst.label): e for e in graph.edges}
    diff = DynamicDiff(observed=observed)
    observed_pairs: set[tuple[str, str]] = set()
    for edge in sorted(observed.edges, key=lambda e: e.pair):
        observed_pairs.add(edge.pair)
        if edge.pair in static_pairs:
            diff.matched.append(edge)
        else:
            diff.missing_static.append(edge)
    exercised = {e.pair for e in diff.matched}
    diff.unexercised = [
        edge
        for edge in graph.edges
        if (edge.src.label, edge.dst.label) not in exercised
    ]
    merged = set(static_pairs) | observed_pairs
    diff.merged_cycles = [
        cycle for cycle in find_label_cycles(merged)
    ]

    findings: list[Finding] = []
    path = observed.source
    for edge in diff.missing_static:
        findings.append(
            Finding(
                path=path,
                line=1,
                rule="DYN001",
                message=(
                    f"observed lock-order edge {edge.src} -> {edge.dst} "
                    f"(runtime site {edge.site or 'unknown'}, "
                    f"{edge.count} acquisition(s)) is missing from the "
                    f"static LOCK002 graph"
                ),
                severity=RULES["DYN001"][0],
            )
        )
    for cycle in diff.merged_cycles:
        loop = " -> ".join(cycle)
        findings.append(
            Finding(
                path=path,
                line=1,
                rule="DYN002",
                message=(
                    f"merged static+observed lock graph has a cycle: "
                    f"{loop} -> {cycle[0]}"
                ),
                severity=RULES["DYN002"][0],
            )
        )
    for raw in observed.findings:
        if raw.get("kind") in _ERROR_KINDS:
            findings.append(
                Finding(
                    path=path,
                    line=1,
                    rule="DYN003",
                    message=(
                        f"runtime sanitizer [{raw.get('kind')}] "
                        f"{raw.get('message', '')} "
                        f"(thread {raw.get('thread', '?')}, "
                        f"site {raw.get('site', '?')})"
                    ),
                    severity=RULES["DYN003"][0],
                )
            )
    return diff, findings


def _dot_quote(label: str) -> str:
    return '"' + label.replace('"', '\\"') + '"'


def render_dot(
    graph: LockOrderGraph, observed: ObservedGraph | None = None
) -> str:
    """Graphviz DOT for the static graph, merged with the observed graph
    when one is given (``repro lint --format dot | dot -Tsvg``)."""
    static_pairs = {(e.src.label, e.dst.label): e for e in graph.edges}
    observed_pairs: dict[tuple[str, str], ObservedEdge] = {}
    if observed is not None:
        for edge in observed.edges:
            observed_pairs.setdefault(edge.pair, edge)
    nodes = {node.label for node in graph.nodes}
    for src, dst in observed_pairs:
        nodes.update((src, dst))
    lines = [
        "digraph lock_order {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
        '  edge [fontname="monospace", fontsize=9];',
    ]
    for label in sorted(nodes):
        lines.append(f"  {_dot_quote(label)};")
    for pair in sorted(set(static_pairs) | set(observed_pairs)):
        src, dst = pair
        attrs: list[str] = []
        if pair in static_pairs and pair in observed_pairs:
            count = observed_pairs[pair].count
            attrs = [
                "color=black",
                "penwidth=1.6",
                f'label="{count}x"',
            ]
        elif pair in static_pairs:
            attrs = ["color=gray50"]
            if observed is not None:
                attrs += ["style=dashed", 'label="unexercised"']
        else:
            count = observed_pairs[pair].count
            attrs = [
                "color=red",
                "penwidth=1.6",
                f'label="observed only ({count}x)"',
            ]
        lines.append(
            f"  {_dot_quote(src)} -> {_dot_quote(dst)} "
            f"[{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
