"""Project-specific static analysis for the serving/runtime layers.

``repro.analysis`` encodes the invariants the serving system lives by —
lock discipline, a deadlock-free lock-acquisition order, no blocking work
under a lock, wire-protocol round-tripping, and cancellation/progress
plumbing — as AST checkers (stdlib ``ast`` only, no third-party deps).

Run it as ``repro lint`` or ``python -m repro.analysis``.  Findings are
typed (rule id, path:line, message, severity); the committed
``analysis-baseline.json`` makes CI fail only on *new* findings.
"""

from __future__ import annotations

from pathlib import Path

from .baseline import load_baseline, render_baseline, split_findings
from .core import (
    RULES,
    Collector,
    Finding,
    SourceModule,
    build_project,
    discover_files,
)
from .dynamic import ObservedGraph, render_dot, verify_dynamic
from .endptcheck import check_endpoints
from .lockcheck import check_locks
from .lockorder import LockOrderGraph, analyze_lock_order
from .metriccheck import check_metrics
from .plumbing import check_plumbing
from .report import AnalysisResult, render_json, render_text
from .rescheck import check_resources
from .wirecheck import check_wire

__all__ = [
    "RULES",
    "Finding",
    "LockOrderGraph",
    "ObservedGraph",
    "AnalysisResult",
    "run_analysis",
    "default_root",
    "default_paths",
    "default_baseline_path",
    "render_text",
    "render_json",
    "render_dot",
    "render_baseline",
]


def default_root() -> Path:
    """Repository root inferred from this package's location."""
    return Path(__file__).resolve().parents[3]


def default_paths(root: Path) -> list[Path]:
    return [root / "src" / "repro"]


def default_baseline_path(root: Path) -> Path:
    return root / "analysis-baseline.json"


def run_analysis(
    paths: list[Path],
    root: Path,
    baseline_path: Path | None = None,
    observed_path: Path | None = None,
) -> AnalysisResult:
    """Run every checker over ``paths`` and partition against the baseline.

    ``observed_path`` — a sanitizer report (see
    :mod:`repro.analysis.sanitizer`) — switches on the dynamic
    cross-validation: the observed lock graph is diffed against the
    static LOCK002 graph and DYN001-003 findings join the result.
    """
    files = discover_files(paths)
    modules = [SourceModule.load(path, root) for path in files]
    project = build_project(modules)
    collector = Collector()
    check_locks(project, collector)
    graph = analyze_lock_order(project, collector)
    check_wire(project, collector)
    check_plumbing(project, collector)
    check_endpoints(project, collector)
    check_metrics(project, collector)
    check_resources(project, collector)
    findings = list(collector.findings)
    dynamic = None
    if observed_path is not None:
        observed = ObservedGraph.load(observed_path)
        dynamic, dyn_findings = verify_dynamic(graph, observed)
        findings.extend(dyn_findings)
    findings = sorted(findings, key=lambda f: f.sort_key)
    accepted = load_baseline(baseline_path)
    new, baselined, stale = split_findings(findings, accepted)
    return AnalysisResult(
        findings=findings,
        new=new,
        baselined=baselined,
        stale=stale,
        suppressed=len(collector.suppressed),
        files=len(files),
        graph=graph,
        dynamic=dynamic,
    )
