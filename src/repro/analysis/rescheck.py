"""RES001: thread and executor-pool lifecycle discipline.

A thread that is neither ``daemon=True`` nor ever joined outlives every
shutdown path and hangs interpreter exit; a process/thread pool without
a ``shutdown()`` (or ``with``-block) leaks workers.  The serving layer
spawns both — server workers, executor heartbeat/work loops, the fleet
lease sweeper, profiling pools — so the invariant is machine-checked:

* every ``threading.Thread(...)`` construction must either pass
  ``daemon=True`` or have join evidence — a ``.join(`` call in the same
  function or (for ``self.<attr>`` storage) anywhere in the same class;
* every ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` construction
  must be used as a context manager or have a ``.shutdown(`` call in
  the same function or class.

Evidence matching is name-blind on purpose (any ``.join(`` in scope
counts): the check aims at "a lifecycle path exists", not exact
data-flow — best-effort, biased against false positives.
"""

from __future__ import annotations

import ast

from .core import ClassModel, Collector, Project, dotted_name

__all__ = ["check_resources"]

_POOLS = ("ThreadPoolExecutor", "ProcessPoolExecutor")


def _calls_attr(tree: ast.AST, attr: str) -> bool:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == attr
        ):
            return True
    return False


def _class_evidence(cls: ClassModel | None, attr: str) -> bool:
    if cls is None:
        return False
    return any(_calls_attr(m, attr) for m in cls.methods.values())


def _with_wrapped(tree: ast.AST) -> set[int]:
    """ids of Call nodes used directly as ``with`` context expressions."""
    wrapped: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    wrapped.add(id(item.context_expr))
    return wrapped


def _keyword_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if (
            kw.arg == name
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return False


def check_resources(project: Project, collector: Collector) -> None:
    for models in project.functions.values():
        for func in models:
            cls = project.class_named(func.cls)
            wrapped = _with_wrapped(func.node)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                simple = name.rsplit(".", maxsplit=1)[-1]
                if simple == "Thread" and name in (
                    "Thread",
                    "threading.Thread",
                ):
                    if _keyword_true(node, "daemon"):
                        continue
                    if _calls_attr(func.node, "join") or _class_evidence(
                        cls, "join"
                    ):
                        continue
                    scope = func.qualname.split("::")[-1]
                    collector.emit(
                        func.module,
                        node.lineno,
                        "RES001",
                        f"thread created in {scope} without daemon=True "
                        f"and with no join() in scope — it outlives every "
                        f"shutdown path",
                    )
                elif simple in _POOLS:
                    if id(node) in wrapped:
                        continue
                    if _calls_attr(func.node, "shutdown") or _class_evidence(
                        cls, "shutdown"
                    ):
                        continue
                    scope = func.qualname.split("::")[-1]
                    collector.emit(
                        func.module,
                        node.lineno,
                        "RES001",
                        f"{simple} created in {scope} without a shutdown "
                        f"path (no `with` block and no .shutdown() in "
                        f"scope) — worker processes/threads leak",
                    )
