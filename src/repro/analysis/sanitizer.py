"""Runtime lockdep: observe what threads actually acquire.

``repro lint`` proves lock-order acyclicity *statically* (LOCK002); this
module is the runtime half of that proof.  When enabled it replaces the
``threading.Lock`` / ``RLock`` / ``Condition`` factories with wrappers
that keep a per-thread stack of held locks and record every nested
acquisition as an edge of an **observed** lock-order graph — each edge
with its first acquisition site and a count, plus per-lock acquisition /
contention / max-hold statistics.  It also flags, live:

* **order inversions** — acquiring ``B`` while holding ``A`` after the
  opposite order ``B -> .. -> A`` was already observed (the runtime
  analogue of a LOCK002 cycle, caught even when the two orders never
  race in this particular run);
* **re-acquisition** of a non-reentrant lock the thread already holds
  (guaranteed self-deadlock);
* **blocking calls** (``time.sleep``) made while holding a tracked lock;
* **hold-budget** violations — a lock held longer than
  ``REPRO_SANITIZE_HOLD_BUDGET`` seconds (default 1.0).

Zero overhead when off: enabling swaps module attributes on
:mod:`threading`; while disabled no wrapper exists anywhere — not even a
conditional — on the lock hot path.  Only locks created *directly* by
code under the configured roots (default: the ``repro`` package) are
tracked, so stdlib internals (``concurrent.futures``, ``queue``,
``threading.Event``…) and test scaffolding stay raw.

Enable via ``REPRO_SANITIZE=1`` (honored by the ``repro`` CLI and the
test suite) or ``pytest --sanitize-locks``; write the observed graph
with ``--sanitize-report PATH`` / ``REPRO_SANITIZE_REPORT=PATH`` and
cross-check it against the static graph with
``repro lint --verify-dynamic PATH`` (see :mod:`repro.analysis.dynamic`).
"""

from __future__ import annotations

import json
import linecache
import os
import re
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "REPORT_VERSION",
    "LockSanitizer",
    "SanitizerFinding",
    "current",
    "disable",
    "enable",
    "enabled_from_env",
]

REPORT_VERSION = 1
DEFAULT_HOLD_BUDGET = 1.0

#: real primitives, captured before any sanitizer can patch them.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition
_REAL_SLEEP = time.sleep

_THIS_FILE = os.path.abspath(__file__)
_THREADING_FILE = os.path.abspath(threading.__file__)
#: the ``repro`` package directory — the default tracking root.
_PACKAGE_ROOT = str(Path(__file__).resolve().parents[1])
_REPO_ROOT = str(Path(__file__).resolve().parents[3])

#: ``self.X = threading.Lock()`` on the creation line -> attribute name.
_ASSIGN_RE = re.compile(r"(?:self|cls)\.([A-Za-z_]\w*)\s*(?::[^=]*)?=")

#: findings cap — a pathological loop must not balloon the report.
_MAX_FINDINGS = 200


def enabled_from_env() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for the sanitizer."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def _hold_budget_from_env() -> float:
    raw = os.environ.get("REPRO_SANITIZE_HOLD_BUDGET", "")
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_HOLD_BUDGET


def _relsite(filename: str, lineno: int) -> str:
    try:
        rel = os.path.relpath(filename, _REPO_ROOT)
    except ValueError:  # different drive (windows)
        rel = filename
    if rel.startswith(".."):
        rel = filename
    return f"{rel.replace(os.sep, '/')}:{lineno}"


@dataclass(frozen=True)
class SanitizerFinding:
    """One runtime violation (kind, message, site, reporting thread)."""

    kind: str  # order-inversion | re-acquire | blocking-sleep | hold-budget
    message: str
    site: str
    thread: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "site": self.site,
            "thread": self.thread,
        }


class _Held:
    """One entry of a thread's held-lock stack."""

    __slots__ = ("lock", "acquired_at", "site", "depth")

    def __init__(self, lock: "_TrackedLock", acquired_at: float, site: str):
        self.lock = lock
        self.acquired_at = acquired_at
        self.site = site
        self.depth = 1


class _TrackedLock:
    """Wrapper around a real lock that reports to one sanitizer.

    Implements the full ``threading.Condition`` owner protocol
    (``_is_owned`` / ``_release_save`` / ``_acquire_restore``) so a
    ``Condition`` built over a tracked lock keeps the held-stack
    bookkeeping consistent across ``wait()``.
    """

    __slots__ = ("_san", "label", "kind", "reentrant", "_real")

    def __init__(self, san, label, kind, reentrant, real):
        self._san = san
        self.label = label
        self.kind = kind  # "lock" | "rlock" | "condition"
        self.reentrant = reentrant
        self._real = real

    def acquire(self, blocking=True, timeout=-1):
        return self._san._acquire(self, blocking, timeout)

    def release(self):
        self._san._release(self)

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc_info):
        self.release()

    def locked(self):
        return self._real.locked()

    def __repr__(self):
        return f"<sanitized {self.kind} {self.label!r} wrapping {self._real!r}>"

    # -------------------------------------------- Condition owner protocol
    def _is_owned(self):
        return any(e.lock is self for e in self._san._stack())

    def _release_save(self):
        return self._san._release_save(self)

    def _acquire_restore(self, saved):
        self._san._acquire_restore(self, saved)


class LockSanitizer:
    """Observes lock usage while enabled; see the module docstring.

    ``include`` adds extra directory roots whose lock creations are
    tracked (the ``repro`` package is always tracked); everything else
    stays raw.  Instances nest: ``enable()`` remembers the factories it
    replaced and ``disable()`` restores exactly those, so a test can run
    its own sanitizer under a session-wide one.
    """

    def __init__(self, *, hold_budget: float | None = None, include=()):
        self.hold_budget = (
            _hold_budget_from_env() if hold_budget is None else float(hold_budget)
        )
        self._roots = [_PACKAGE_ROOT] + [
            str(Path(p).resolve()) for p in include
        ]
        self._state = _REAL_LOCK()  # leaf: never user code under it
        self._tls = threading.local()
        #: label -> {"kind", "locks", "acquisitions", "contended", "max_hold_s"}
        self._locks: dict[str, dict] = {}
        #: (src, dst) -> {"count", "site"}
        self._edges: dict[tuple[str, str], dict] = {}
        self._adjacency: dict[str, set[str]] = {}
        self._findings: list[SanitizerFinding] = []
        self._finding_keys: set[tuple[str, str]] = set()
        self._prev: tuple | None = None
        self.enabled = False

    # ------------------------------------------------------------ lifecycle
    def enable(self) -> "LockSanitizer":
        if self.enabled:
            return self
        self._prev = (
            threading.Lock,
            threading.RLock,
            threading.Condition,
            time.sleep,
        )
        threading.Lock = self._make_lock
        threading.RLock = self._make_rlock
        threading.Condition = self._make_condition
        time.sleep = self._sleep
        self.enabled = True
        return self

    def disable(self) -> None:
        if not self.enabled:
            return
        (
            threading.Lock,
            threading.RLock,
            threading.Condition,
            time.sleep,
        ) = self._prev
        self._prev = None
        self.enabled = False

    def add_roots(self, include) -> None:
        for p in include:
            root = str(Path(p).resolve())
            if root not in self._roots:
                self._roots.append(root)

    # ------------------------------------------------------------ factories
    def _creation_frame(self):
        """The frame that called the patched factory, or ``None`` when the
        creation is indirect (stdlib composites like ``threading.Event``)
        or outside every tracked root."""
        frame = sys._getframe(2)
        if frame is None:
            return None
        filename = os.path.abspath(frame.f_code.co_filename)
        if filename in (_THIS_FILE, _THREADING_FILE):
            return None
        if not any(filename.startswith(root) for root in self._roots):
            return None
        return frame

    def _label(self, frame) -> tuple[str, str]:
        filename = frame.f_code.co_filename
        lineno = frame.f_lineno
        site = _relsite(filename, lineno)
        line = linecache.getline(filename, lineno)
        match = _ASSIGN_RE.search(line)
        if match is not None:
            attr = match.group(1)
            self_obj = frame.f_locals.get("self")
            if self_obj is not None:
                return f"{type(self_obj).__name__}.{attr}", site
            return attr, site
        return f"<{os.path.basename(filename)}:{lineno}>", site

    def _register(self, lock: _TrackedLock, site: str) -> _TrackedLock:
        with self._state:
            stats = self._locks.setdefault(
                lock.label,
                {
                    "kind": lock.kind,
                    "site": site,
                    "locks": 0,
                    "acquisitions": 0,
                    "contended": 0,
                    "max_hold_s": 0.0,
                },
            )
            stats["locks"] += 1
        return lock

    def _make_lock(self):
        frame = self._creation_frame()
        if frame is None:
            return _REAL_LOCK()
        label, site = self._label(frame)
        return self._register(
            _TrackedLock(self, label, "lock", False, _REAL_LOCK()), site
        )

    def _make_rlock(self):
        frame = self._creation_frame()
        if frame is None:
            return _REAL_RLOCK()
        label, site = self._label(frame)
        return self._register(
            _TrackedLock(self, label, "rlock", True, _REAL_RLOCK()), site
        )

    def _make_condition(self, lock=None):
        if lock is None:
            frame = self._creation_frame()
            if frame is None:
                return _REAL_CONDITION()
            label, site = self._label(frame)
            lock = self._register(
                _TrackedLock(self, label, "condition", True, _REAL_RLOCK()),
                site,
            )
        return _REAL_CONDITION(lock)

    # -------------------------------------------------------- acquire paths
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _call_site(self) -> str:
        frame = sys._getframe(2)
        while frame is not None:
            filename = os.path.abspath(frame.f_code.co_filename)
            if filename not in (_THIS_FILE, _THREADING_FILE):
                return _relsite(frame.f_code.co_filename, frame.f_lineno)
            frame = frame.f_back
        return "<unknown>"

    def _record_finding(self, kind: str, message: str, site: str) -> None:
        finding = SanitizerFinding(
            kind=kind,
            message=message,
            site=site,
            thread=threading.current_thread().name,
        )
        with self._state:
            key = (kind, message)
            if key in self._finding_keys:
                return
            if len(self._findings) >= _MAX_FINDINGS:
                return
            self._finding_keys.add(key)
            self._findings.append(finding)

    def _reachable_locked(self, src: str, dst: str) -> bool:
        """Whether ``dst`` is reachable from ``src`` in the observed graph."""
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for nxt in self._adjacency.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _note_edges(self, stack: list, lock: _TrackedLock, site: str) -> None:
        if not stack:
            with self._state:
                self._locks[lock.label]["acquisitions"] += 1
            return
        inversions: list[str] = []
        with self._state:
            self._locks[lock.label]["acquisitions"] += 1
            held_seen: set[str] = set()
            for entry in stack:
                src = entry.lock.label
                if src == lock.label or src in held_seen:
                    continue
                held_seen.add(src)
                key = (src, lock.label)
                edge = self._edges.get(key)
                if edge is None:
                    if self._reachable_locked(lock.label, src):
                        inversions.append(src)
                    self._edges[key] = {"count": 1, "site": site}
                    self._adjacency.setdefault(src, set()).add(lock.label)
                else:
                    edge["count"] += 1
        for src in inversions:
            self._record_finding(
                "order-inversion",
                f"lock-order inversion: '{lock.label}' acquired while "
                f"holding '{src}', but the opposite order "
                f"'{lock.label}' -> '{src}' was already observed",
                site,
            )

    def _acquire(self, lock: _TrackedLock, blocking, timeout) -> bool:
        stack = self._stack()
        for entry in stack:
            if entry.lock is lock:
                if lock.reentrant:
                    got = lock._real.acquire(blocking, timeout)
                    if got:
                        entry.depth += 1
                    return got
                site = self._call_site()
                self._record_finding(
                    "re-acquire",
                    f"non-reentrant lock '{lock.label}' re-acquired by "
                    f"thread already holding it (self-deadlock)",
                    site,
                )
                # Fall through: behave exactly like the unsanitized lock
                # (a timeout-less acquire here really does deadlock).
                break
        site = self._call_site()
        self._note_edges(stack, lock, site)
        got = lock._real.acquire(False)
        if not got:
            with self._state:
                self._locks[lock.label]["contended"] += 1
            if not blocking:
                return False
            got = lock._real.acquire(True, timeout)
            if not got:
                return False
        stack.append(_Held(lock, time.monotonic(), site))
        return True

    def _note_hold(self, lock: _TrackedLock, entry: _Held) -> None:
        hold = time.monotonic() - entry.acquired_at
        with self._state:
            stats = self._locks[lock.label]
            if hold > stats["max_hold_s"]:
                stats["max_hold_s"] = hold
        if hold > self.hold_budget:
            self._record_finding(
                "hold-budget",
                f"lock '{lock.label}' held for {hold:.3f}s "
                f"(budget {self.hold_budget:.3f}s); acquired at {entry.site}",
                entry.site,
            )

    def _release(self, lock: _TrackedLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            entry = stack[i]
            if entry.lock is lock:
                if lock.reentrant and entry.depth > 1:
                    entry.depth -= 1
                    lock._real.release()
                    return
                del stack[i]
                self._note_hold(lock, entry)
                lock._real.release()
                return
        # Released by a thread that never acquired it through this
        # sanitizer (cross-thread Lock release is legal): delegate and let
        # the real lock raise its own error when genuinely unheld.
        lock._real.release()

    # ------------------------------------------- Condition protocol support
    def _release_save(self, lock: _TrackedLock):
        """Fully release around ``Condition.wait`` (all recursion levels)."""
        stack = self._stack()
        depth = 1
        for i in range(len(stack) - 1, -1, -1):
            entry = stack[i]
            if entry.lock is lock:
                depth = entry.depth
                del stack[i]
                self._note_hold(lock, entry)
                break
        if lock.reentrant:
            return (depth, lock._real._release_save())
        lock._real.release()
        return (depth, None)

    def _acquire_restore(self, lock: _TrackedLock, saved) -> None:
        depth, real_state = saved
        site = self._call_site()
        stack = self._stack()
        self._note_edges(stack, lock, site)
        if lock.reentrant:
            lock._real._acquire_restore(real_state)
        else:
            lock._real.acquire()
        entry = _Held(lock, time.monotonic(), site)
        entry.depth = depth
        stack.append(entry)

    # ------------------------------------------------------- blocking calls
    def _sleep(self, seconds) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack:
            held = ", ".join(
                sorted({entry.lock.label for entry in stack})
            )
            site = self._call_site()
            self._record_finding(
                "blocking-sleep",
                f"time.sleep({seconds!r}) called while holding [{held}]",
                site,
            )
        _REAL_SLEEP(seconds)

    # ------------------------------------------------------------ reporting
    @property
    def findings(self) -> list[SanitizerFinding]:
        with self._state:
            return list(self._findings)

    def report(self) -> dict:
        """The observed lock graph + stats as a JSON-ready dict."""
        with self._state:
            locks = [
                {"label": label, **stats}
                for label, stats in sorted(self._locks.items())
            ]
            for entry in locks:
                entry["max_hold_s"] = round(entry["max_hold_s"], 6)
            edges = [
                {"src": src, "dst": dst, "count": edge["count"],
                 "site": edge["site"]}
                for (src, dst), edge in sorted(self._edges.items())
            ]
            findings = [f.to_dict() for f in self._findings]
        return {
            "version": REPORT_VERSION,
            "hold_budget_s": self.hold_budget,
            "locks": locks,
            "edges": edges,
            "findings": findings,
        }

    def write_report(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


# -------------------------------------------------------- module singleton
_active: LockSanitizer | None = None


def enable(*, hold_budget: float | None = None, include=()) -> LockSanitizer:
    """Enable the process-wide sanitizer (idempotent; extends roots)."""
    global _active
    if _active is not None and _active.enabled:
        _active.add_roots(include)
        return _active
    _active = LockSanitizer(hold_budget=hold_budget, include=include)
    return _active.enable()


def disable() -> LockSanitizer | None:
    """Disable the process-wide sanitizer; returns it with its data."""
    if _active is not None:
        _active.disable()
    return _active


def current() -> LockSanitizer | None:
    return _active
