"""METRIC001/002: metric-registry hygiene across the serving layer.

``MetricsRegistry`` is stringly-typed: nothing stops two call sites from
registering the same family with different kinds, inconsistent label
sets, or per-entity labeled series that are never removed when the
entity goes away (an unbounded series leak — exactly the bug class the
fleet's per-executor metrics invited).  This checker resolves the metric
*names* statically, including the two loop idioms the codebase uses:

* f-string families over a constant tuple::

      for name in ("executed", "cache_hits"):
          self.metrics.gauge(f"profiling_{name}", ...)

* module-level tuples driving labeled removal::

      _EXECUTOR_METRICS = ("fleet_claims", ...)
      for name in _EXECUTOR_METRICS:
          self.metrics.remove(labeled(name, executor=executor_id))

Names it cannot resolve to constants (e.g. ``f"jobs_{status.value}"``)
are silently skipped — best-effort, no false positives.

Call sites count when the receiver is typed ``MetricsRegistry`` (via
:class:`~repro.analysis.core.TypeEnv`) or is a ``*.metrics`` attribute.

* METRIC001 — family name not snake_case; one family used as both a
  counter and a gauge; a gauge family registered at more than one site.
* METRIC002 — one family used with inconsistent label-key sets (or
  mixed labeled/unlabeled); a labeled family that is never ``remove``d
  anywhere (per-entity series leak).
"""

from __future__ import annotations

import ast
import re
from itertools import product

from .core import (
    Collector,
    FunctionModel,
    Project,
    SourceModule,
    TypeEnv,
    dotted_name,
)

__all__ = ["check_metrics"]

_SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _str_tuple(node: ast.AST | None) -> tuple[str, ...] | None:
    """``("a", "b")`` / ``["a", "b"]`` -> the string tuple, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            values.append(elt.value)
        else:
            return None
    return tuple(values)


def _module_tuples(module: SourceModule) -> dict[str, tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` constant tuples."""
    out: dict[str, tuple[str, ...]] = {}
    for node in module.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            values = _str_tuple(node.value)
            if values is not None:
                out[node.targets[0].id] = values
    return out


class _NameResolver:
    """Resolve a metric-name expression to its possible constant values."""

    def __init__(
        self,
        func: FunctionModel,
        module_tuples: dict[str, tuple[str, ...]],
    ) -> None:
        self.bindings: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(func.node):
            if not isinstance(node, ast.For) or not isinstance(
                node.target, ast.Name
            ):
                continue
            values = _str_tuple(node.iter)
            if values is None and isinstance(node.iter, ast.Name):
                values = module_tuples.get(node.iter.id)
            if values is not None:
                self.bindings[node.target.id] = values

    def resolve(self, node: ast.AST) -> tuple[str, ...] | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return (node.value,)
        if isinstance(node, ast.Name):
            return self.bindings.get(node.id)
        if isinstance(node, ast.JoinedStr):
            parts: list[tuple[str, ...]] = []
            for value in node.values:
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    parts.append((value.value,))
                elif isinstance(value, ast.FormattedValue):
                    resolved = self.resolve(value.value)
                    if resolved is None:
                        return None
                    parts.append(resolved)
                else:
                    return None
            return tuple("".join(combo) for combo in product(*parts))
        return None


def _is_metrics_receiver(expr: ast.AST, env: TypeEnv) -> bool:
    if env.type_of(expr) == "MetricsRegistry":
        return True
    name = dotted_name(expr)
    return (
        name is not None
        and name.rsplit(".", maxsplit=1)[-1] == "metrics"
    )


def _labeled_call(node: ast.AST) -> ast.Call | None:
    """The ``labeled(name, **labels)`` call, when ``node`` is one."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    name = dotted_name(node.func)
    if name is not None and name.rsplit(".", maxsplit=1)[-1] == "labeled":
        return node
    return None


class _Family:
    """Everything observed about one metric family name."""

    __slots__ = ("first", "kinds", "gauge_sites", "label_sets", "labeled")

    def __init__(self, module: SourceModule, line: int) -> None:
        self.first = (module, line)
        self.kinds: dict[str, tuple[SourceModule, int]] = {}
        self.gauge_sites: set[tuple[str, int]] = set()
        self.label_sets: dict[frozenset | None, tuple[SourceModule, int]] = {}
        self.labeled = False


def check_metrics(project: Project, collector: Collector) -> None:
    families: dict[str, _Family] = {}
    removed: set[str] = set()
    tuples_by_module = {
        id(module): _module_tuples(module) for module in project.modules
    }

    for models in project.functions.values():
        for func in models:
            env = TypeEnv(project, func)
            resolver = _NameResolver(
                func, tuples_by_module[id(func.module)]
            )
            for node in ast.walk(func.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    env.record_assign(node)
                    continue
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                if not isinstance(fn, ast.Attribute) or fn.attr not in (
                    "inc",
                    "gauge",
                    "remove",
                ):
                    continue
                if not node.args or not _is_metrics_receiver(fn.value, env):
                    continue
                arg = node.args[0]
                labeled = _labeled_call(arg)
                if labeled is not None:
                    name_expr = labeled.args[0]
                    keys = frozenset(
                        kw.arg for kw in labeled.keywords if kw.arg
                    )
                else:
                    name_expr = arg
                    keys = None
                names = resolver.resolve(name_expr)
                if names is None:
                    continue  # dynamic name — best-effort skip
                for name in names:
                    if fn.attr == "remove":
                        removed.add(name)
                        continue
                    family = families.get(name)
                    if family is None:
                        family = families[name] = _Family(
                            func.module, node.lineno
                        )
                    kind = "counter" if fn.attr == "inc" else "gauge"
                    family.kinds.setdefault(kind, (func.module, node.lineno))
                    if kind == "gauge":
                        family.gauge_sites.add(
                            (func.module.relpath, node.lineno)
                        )
                    family.label_sets.setdefault(
                        keys, (func.module, node.lineno)
                    )
                    if keys:
                        family.labeled = True

    for name in sorted(families):
        family = families[name]
        module, line = family.first
        if not _SNAKE_RE.match(name):
            collector.emit(
                module,
                line,
                "METRIC001",
                f"metric family '{name}' is not snake_case "
                f"(expected ^[a-z][a-z0-9_]*$)",
            )
        if len(family.kinds) > 1:
            counter_mod, counter_line = family.kinds["counter"]
            gauge_mod, gauge_line = family.kinds["gauge"]
            collector.emit(
                gauge_mod,
                gauge_line,
                "METRIC001",
                f"metric family '{name}' is used as both a counter "
                f"({counter_mod.relpath}:{counter_line}) and a gauge",
            )
        if len(family.gauge_sites) > 1:
            sites = ", ".join(
                f"{path}:{lineno}"
                for path, lineno in sorted(family.gauge_sites)
            )
            collector.emit(
                module,
                line,
                "METRIC001",
                f"gauge family '{name}' is registered at "
                f"{len(family.gauge_sites)} sites ({sites}); later "
                f"registrations silently replace earlier ones",
            )
        if len(family.label_sets) > 1:
            rendered = sorted(
                "(unlabeled)" if keys is None else
                "{" + ", ".join(sorted(keys)) + "}"
                for keys in family.label_sets
            )
            collector.emit(
                module,
                line,
                "METRIC002",
                f"metric family '{name}' is used with inconsistent label "
                f"sets: {', '.join(rendered)}",
            )
        if family.labeled and name not in removed:
            collector.emit(
                module,
                line,
                "METRIC002",
                f"labeled metric family '{name}' is never removed: "
                f"per-entity series leak (remove the labeled series when "
                f"the entity deregisters)",
            )
