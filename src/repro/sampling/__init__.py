"""Samplers: the unified abstraction of Eq. 2/3 and its instantiations."""

from repro.sampling.base import SampleBatch, Sampler, fanout_step
from repro.sampling.batching import BatchIterator
from repro.sampling.biased import BiasedNeighborSampler, hot_set_weights
from repro.sampling.cluster import ClusterSampler
from repro.sampling.expectation import saturating_expectation, tree_growth_bound
from repro.sampling.layerwise import LayerSampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.saint import SaintSampler

__all__ = [
    "SampleBatch",
    "Sampler",
    "fanout_step",
    "BatchIterator",
    "NeighborSampler",
    "LayerSampler",
    "SaintSampler",
    "BiasedNeighborSampler",
    "ClusterSampler",
    "hot_set_weights",
    "saturating_expectation",
    "tree_growth_bound",
]
