"""Locality-aware biased sampling (2PGraph-style).

2PGraph accelerates training by preferring neighbours that are already
resident on the device, at the cost of a small accuracy drop (paper Fig. 1b).
In the unified abstraction this is just Eq. 2 with the neighbour-selection
probability ``p(η)`` made a function of data locality: vertices inside the
*hot set* (the cache-resident partition) receive sampling weight
``1 + bias_rate * scale`` relative to cold vertices.

``bias_rate`` is the "Biased Sampling Rate" knob of Fig. 3; ``0`` recovers
the unbiased :class:`~repro.sampling.neighbor.NeighborSampler` exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.csr import CSRGraph
from repro.sampling.base import SampleBatch, Sampler, fanout_step

__all__ = ["BiasedNeighborSampler", "hot_set_weights"]

#: relative preference multiplier applied at bias_rate=1.0
_MAX_PREFERENCE = 24.0


def hot_set_weights(
    num_nodes: int, hot_nodes: np.ndarray, bias_rate: float
) -> np.ndarray:
    """Per-vertex sampling weights: hot vertices get boosted probability."""
    if not 0.0 <= bias_rate <= 1.0:
        raise SamplingError("bias_rate must lie in [0, 1]")
    weights = np.ones(num_nodes, dtype=np.float64)
    if bias_rate > 0 and hot_nodes.size:
        weights[hot_nodes] = 1.0 + bias_rate * _MAX_PREFERENCE
    return weights


class BiasedNeighborSampler(Sampler):
    """Node-wise sampler whose ``p(η)`` prefers a hot vertex set."""

    name = "biased"

    def __init__(
        self,
        fanouts: list[int],
        *,
        bias_rate: float,
        hot_nodes: np.ndarray | None = None,
    ) -> None:
        if not fanouts:
            raise SamplingError("fanouts must contain at least one hop")
        if any(k <= 0 for k in fanouts):
            raise SamplingError("every fanout must be positive")
        if not 0.0 <= bias_rate <= 1.0:
            raise SamplingError("bias_rate must lie in [0, 1]")
        self.fanouts = [int(k) for k in fanouts]
        self.bias_rate = float(bias_rate)
        self.hot_nodes = (
            np.empty(0, dtype=np.int64)
            if hot_nodes is None
            else np.asarray(hot_nodes, dtype=np.int64)
        )
        self._weights: np.ndarray | None = None
        self._weights_for: int = -1

    def set_hot_nodes(self, hot_nodes: np.ndarray) -> None:
        """Update the hot set (e.g. after a cache refresh)."""
        self.hot_nodes = np.asarray(hot_nodes, dtype=np.int64)
        self._weights = None

    def _weight_vector(self, graph: CSRGraph) -> np.ndarray | None:
        if self.bias_rate == 0.0 or self.hot_nodes.size == 0:
            return None
        if self._weights is None or self._weights_for != graph.num_nodes:
            self._weights = hot_set_weights(
                graph.num_nodes, self.hot_nodes, self.bias_rate
            )
            self._weights_for = graph.num_nodes
        return self._weights

    def sample(
        self, graph: CSRGraph, targets: np.ndarray, *, rng: np.random.Generator
    ) -> SampleBatch:
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise SamplingError("empty target set")
        weights = self._weight_vector(graph)
        frontier = targets
        collected = [targets]
        for k in self.fanouts:
            frontier = fanout_step(graph, frontier, k, weights=weights, rng=rng)
            if frontier.size == 0:
                break
            collected.append(frontier)
        all_nodes = np.concatenate(collected)
        return self._finalize(
            graph,
            targets,
            all_nodes,
            hops=len(self.fanouts),
            sampler=self.name,
            bias_rate=self.bias_rate,
        )

    def expected_hops(self) -> int:
        return len(self.fanouts)

    def fanout_profile(self) -> list[float]:
        return [float(k) for k in self.fanouts]
