"""Unified sampler abstraction (paper Sec. 3.2, Eq. 2).

Every sampling strategy — node-wise, layer-wise, subgraph-wise, biased — is
expressed as repeated *fanout steps*: from a frontier ``B^{l-1}``, select up
to ``k_l`` neighbours per vertex with probability ``p(η)``, and union the
result into the mini-batch.  :func:`fanout_step` implements one such step
with weighted sampling-without-replacement (Efraimidis–Spirakis keys), which
is exactly the indicator ``I_p(η)`` of Eq. 2; subclasses differ only in how
they schedule steps and shape ``p(η)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.graphs.csr import CSRGraph

__all__ = ["SampleBatch", "Sampler", "fanout_step"]


@dataclass
class SampleBatch:
    """One mini-batch ``G_i(V_i, E_i)`` produced by a sampler.

    ``nodes`` are the global vertex ids of the subgraph rows (sorted).
    ``target_index`` locates the loss vertices ``B0_i`` inside the subgraph.
    """

    subgraph: CSRGraph
    nodes: np.ndarray
    target_index: np.ndarray
    num_targets: int
    hops: int
    meta: dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        """Mini-batch size ``|V_i|`` — the estimator's key variable."""
        return self.subgraph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.subgraph.num_edges


def fanout_step(
    graph: CSRGraph,
    frontier: np.ndarray,
    k: int,
    *,
    weights: np.ndarray | None = None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample up to ``k`` distinct neighbours of every frontier vertex.

    ``weights`` (per global vertex, positive) bias the neighbour choice —
    the ``p(η)`` hook of Eq. 2.  Uses Efraimidis–Spirakis exponential keys so
    the whole step is vectorised: neighbour ``u`` of ``v`` is kept when its
    key ranks in the top ``k`` of ``v``'s neighbourhood.
    """
    if k <= 0:
        raise SamplingError("fanout k must be positive")
    frontier = np.asarray(frontier, dtype=np.int64)
    src, dst = graph.gather_neighborhoods(frontier)
    if dst.size == 0:
        return np.empty(0, dtype=np.int64)

    if weights is None:
        keys = rng.random(dst.size)
    else:
        w = weights[dst]
        if np.any(w <= 0):
            raise SamplingError("bias weights must be strictly positive")
        keys = rng.random(dst.size) ** (1.0 / w)

    # Rank edges per source vertex by key (descending) and keep rank < k.
    order = np.lexsort((-keys, src))
    src_sorted = src[order]
    boundaries = np.concatenate([[True], src_sorted[1:] != src_sorted[:-1]])
    group_start = np.maximum.accumulate(np.where(boundaries, np.arange(src_sorted.size), 0))
    rank = np.arange(src_sorted.size) - group_start
    chosen = order[rank < k]
    return np.unique(dst[chosen])


class Sampler:
    """Base class: expands target vertices ``B0`` into a :class:`SampleBatch`."""

    name = "base"

    def sample(
        self, graph: CSRGraph, targets: np.ndarray, *, rng: np.random.Generator
    ) -> SampleBatch:
        """Produce the mini-batch for targets ``B0_i``."""
        raise NotImplementedError

    def expected_hops(self) -> int:
        """Number of fanout steps (τ exponent context for Eq. 12)."""
        raise NotImplementedError

    def fanout_profile(self) -> list[float]:
        """Per-hop expected fanout ``k_l`` — feeds E[|V_i|] of Eq. 12."""
        raise NotImplementedError

    def _finalize(
        self,
        graph: CSRGraph,
        targets: np.ndarray,
        all_nodes: np.ndarray,
        hops: int,
        **meta,
    ) -> SampleBatch:
        """Induce the subgraph and locate targets inside it."""
        targets = np.asarray(targets, dtype=np.int64)
        subgraph, nodes = graph.induced_subgraph(all_nodes)
        target_index = np.searchsorted(nodes, np.unique(targets))
        return SampleBatch(
            subgraph=subgraph,
            nodes=nodes,
            target_index=target_index,
            num_targets=int(np.unique(targets).size),
            hops=hops,
            meta=meta,
        )
