"""Partition-based subgraph sampling (Cluster-GCN style).

Fig. 3 leaves the sampler list open ("Sampler Choices: GraphSAINT,
GraphSAGE, FastGCN, ...").  Cluster-GCN is the natural fourth family: the
graph is pre-partitioned, and each mini-batch is the induced subgraph of a
few partitions.  In the unified Eq. 2 abstraction this is biased sampling
with ``p(η)`` equal to the partition-membership indicator — neighbour
selection probability 1 inside the batch's partitions and 0 outside.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.csr import CSRGraph
from repro.graphs.partition import bfs_partition
from repro.sampling.base import SampleBatch, Sampler

__all__ = ["ClusterSampler"]


class ClusterSampler(Sampler):
    """Mini-batches are unions of graph partitions containing the targets."""

    name = "cluster"

    def __init__(
        self,
        num_parts: int = 32,
        *,
        parts_per_batch: int = 2,
        partition: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        if num_parts <= 0 or parts_per_batch <= 0:
            raise SamplingError("partition counts must be positive")
        self.num_parts = num_parts
        self.parts_per_batch = parts_per_batch
        self._partition = partition
        self._seed = seed

    def _ensure_partition(self, graph: CSRGraph) -> np.ndarray:
        if self._partition is None or self._partition.shape[0] != graph.num_nodes:
            parts = min(self.num_parts, graph.num_nodes)
            self._partition = bfs_partition(graph, parts, seed=self._seed)
        return self._partition

    def sample(
        self, graph: CSRGraph, targets: np.ndarray, *, rng: np.random.Generator
    ) -> SampleBatch:
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise SamplingError("empty target set")
        partition = self._ensure_partition(graph)

        # Partitions hosting the most targets are selected for this batch.
        owner_parts, counts = np.unique(partition[targets], return_counts=True)
        order = np.argsort(counts)[::-1]
        chosen = owner_parts[order[: self.parts_per_batch]]
        members = np.nonzero(np.isin(partition, chosen))[0]
        all_nodes = np.union1d(members, targets)

        batch = self._finalize(
            graph,
            targets,
            all_nodes,
            hops=1,
            sampler=self.name,
            partitions=chosen.tolist(),
        )
        # Cluster-GCN trains on every (training) vertex of the selected
        # partitions, not just the scheduled targets; the runtime backend
        # masks non-training vertices out of the loss.
        batch.target_index = np.arange(batch.num_nodes, dtype=np.int64)
        batch.num_targets = batch.num_nodes
        return batch

    def expected_hops(self) -> int:
        return 1

    def fanout_profile(self) -> list[float]:
        """One flood-fill hop bounded by partition size (Eq. 2 view)."""
        return [float(self.parts_per_batch)]
