"""Subgraph-wise sampling (GraphSAINT-style random walks).

The paper treats subgraph sampling as "node-wise sampling with many more
hops but a single neighbour fanout per hop" (Sec. 3.2).  We implement the
random-walk variant: from every root, walk ``walk_length`` steps choosing one
uniform neighbour per step; the union of visited vertices induces the
training subgraph, and the loss is computed on every labelled vertex in it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.csr import CSRGraph
from repro.sampling.base import SampleBatch, Sampler

__all__ = ["SaintSampler"]


class SaintSampler(Sampler):
    """GraphSAINT random-walk subgraph sampler."""

    name = "saint"

    def __init__(self, walk_length: int = 4, *, loss_on_all: bool = True) -> None:
        if walk_length <= 0:
            raise SamplingError("walk_length must be positive")
        self.walk_length = int(walk_length)
        self.loss_on_all = loss_on_all

    def _random_walk(
        self, graph: CSRGraph, roots: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Visited vertices of simultaneous walks (vectorised per step)."""
        current = roots.copy()
        visited = [roots]
        for _ in range(self.walk_length):
            degrees = graph.degrees[current]
            alive = degrees > 0
            if not np.any(alive):
                break
            # One uniform neighbour per alive walker.
            offset = (rng.random(current.size) * degrees).astype(np.int64)
            offset = np.minimum(offset, np.maximum(degrees - 1, 0))
            # Dead walkers are masked out below, but their gather still
            # evaluates; an isolated node at the CSR tail has
            # indptr[current] == len(indices), so clamp before indexing.
            slot = np.minimum(
                graph.indptr[current] + offset, graph.indices.size - 1
            )
            nxt = graph.indices[slot]
            current = np.where(alive, nxt, current)
            visited.append(current.copy())
        return np.concatenate(visited)

    def sample(
        self, graph: CSRGraph, targets: np.ndarray, *, rng: np.random.Generator
    ) -> SampleBatch:
        roots = np.unique(np.asarray(targets, dtype=np.int64))
        if roots.size == 0:
            raise SamplingError("empty target set")
        all_nodes = self._random_walk(graph, roots, rng)
        batch = self._finalize(
            graph, roots, all_nodes, hops=self.walk_length, sampler=self.name
        )
        if self.loss_on_all and graph.labels is not None:
            # GraphSAINT trains on the entire subgraph, not just the roots.
            batch.target_index = np.arange(batch.num_nodes, dtype=np.int64)
            batch.num_targets = batch.num_nodes
        return batch

    def expected_hops(self) -> int:
        return self.walk_length

    def fanout_profile(self) -> list[float]:
        """One neighbour per hop — the paper's special case of Eq. 2."""
        return [1.0] * self.walk_length
