"""Target-vertex batch scheduling.

Algorithm 1 line 1: an epoch visits ``|V_train| / |B0|`` mini-batches.  The
iterator shuffles training vertices each epoch (``random`` order) or groups
them by locality partition (``partition`` order — 2PGraph schedules batches
so consecutive batches reuse the same cached region).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import SamplingError

__all__ = ["BatchIterator"]


class BatchIterator:
    """Yields target-vertex sets ``B0_i`` of one epoch."""

    def __init__(
        self,
        train_nodes: np.ndarray,
        batch_size: int,
        *,
        order: str = "random",
        partition: np.ndarray | None = None,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise SamplingError("batch_size must be positive")
        if order not in ("random", "sequential", "partition"):
            raise SamplingError(f"unknown batch order {order!r}")
        if order == "partition" and partition is None:
            raise SamplingError("partition order requires a partition vector")
        self.train_nodes = np.asarray(train_nodes, dtype=np.int64)
        if self.train_nodes.size == 0:
            raise SamplingError("no training vertices")
        self.batch_size = int(batch_size)
        self.order = order
        self.partition = partition
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)
        self._epoch = 0

    def __len__(self) -> int:
        """Number of mini-batches per epoch (``n_iter`` of Eq. 4)."""
        n = self.train_nodes.size
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def _epoch_order(self) -> np.ndarray:
        if self.order == "sequential":
            return self.train_nodes
        if self.order == "random":
            return self._rng.permutation(self.train_nodes)
        # Partition order: shuffle within each partition, then concatenate
        # partitions in random order so batches stay locality-coherent.
        parts = self.partition[self.train_nodes]
        chunks: list[np.ndarray] = []
        for pid in self._rng.permutation(np.unique(parts)):
            members = self.train_nodes[parts == pid]
            chunks.append(self._rng.permutation(members))
        return np.concatenate(chunks)

    def epoch(self) -> Iterator[np.ndarray]:
        """Iterate the batches of one epoch."""
        order = self._epoch_order()
        self._epoch += 1
        stop = len(self) * self.batch_size if self.drop_last else order.size
        for lo in range(0, stop, self.batch_size):
            batch = order[lo : lo + self.batch_size]
            if batch.size:
                yield batch
