"""Node-wise neighbour sampling (GraphSAGE-style).

The canonical instantiation of Eq. 2: hop ``l`` fans out ``k_l`` uniformly
chosen neighbours from every frontier vertex.  The ``hop_list`` (paper
Fig. 3's "Hop List" knob) is the per-layer fanout vector.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.csr import CSRGraph
from repro.sampling.base import SampleBatch, Sampler, fanout_step

__all__ = ["NeighborSampler"]


class NeighborSampler(Sampler):
    """Uniform node-wise sampler with a per-hop fanout list."""

    name = "sage"

    def __init__(self, fanouts: list[int]) -> None:
        if not fanouts:
            raise SamplingError("fanouts must contain at least one hop")
        if any(k <= 0 for k in fanouts):
            raise SamplingError("every fanout must be positive")
        self.fanouts = [int(k) for k in fanouts]

    def sample(
        self, graph: CSRGraph, targets: np.ndarray, *, rng: np.random.Generator
    ) -> SampleBatch:
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise SamplingError("empty target set")
        frontier = targets
        collected = [targets]
        for k in self.fanouts:
            frontier = fanout_step(graph, frontier, k, rng=rng)
            if frontier.size == 0:
                break
            collected.append(frontier)
        all_nodes = np.concatenate(collected)
        return self._finalize(
            graph, targets, all_nodes, hops=len(self.fanouts), sampler=self.name
        )

    def expected_hops(self) -> int:
        return len(self.fanouts)

    def fanout_profile(self) -> list[float]:
        return [float(k) for k in self.fanouts]
