"""Analytic mini-batch-size expectation — the white-box core of Eq. 12.

The paper models ``E[|V_i|] = f_overlapping(|B0| * Π_l (1 + k_l)^τ, p(η))``:
the product term is the tree-growth upper bound (every hop multiplies the
frontier by ``1 + k_l``), and ``f_overlapping`` is a learnable penalty
accounting for neighbourhood overlap, saturation at ``|V|`` and sampling
bias.  This module provides the closed-form pieces; the learnable wrapper
lives in :mod:`repro.estimator.batchsize`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError

__all__ = ["tree_growth_bound", "saturating_expectation"]


def tree_growth_bound(
    batch_size: int, fanouts: list[float], *, tau: float = 1.0
) -> float:
    """Upper bound ``|B0| * Π_l (1 + k_l)^τ`` of Eq. 12 (no overlap)."""
    if batch_size <= 0:
        raise SamplingError("batch_size must be positive")
    if tau <= 0:
        raise SamplingError("tau must be positive")
    product = 1.0
    for k in fanouts:
        if k < 0:
            raise SamplingError("fanouts must be non-negative")
        product *= (1.0 + k) ** tau
    return float(batch_size) * product


def saturating_expectation(
    bound: float | np.ndarray,
    num_nodes: int,
    *,
    overlap: float = 1.0,
) -> np.ndarray:
    """Deterministic overlap penalty: birthday-style saturation toward |V|.

    Sampling ``m`` vertex slots uniformly from ``n`` distinct vertices yields
    ``n * (1 - exp(-m / n))`` distinct vertices in expectation; ``overlap``
    rescales the effective ``m`` (``<1`` = more redundancy, e.g. biased
    samplers revisiting the hot set).  Used both as the analytic prior of the
    gray-box batch-size model and as a sanity bound in tests.
    """
    if num_nodes <= 0:
        raise SamplingError("num_nodes must be positive")
    if overlap <= 0:
        raise SamplingError("overlap must be positive")
    m = np.asarray(bound, dtype=np.float64) * overlap
    return num_nodes * (1.0 - np.exp(-m / num_nodes))
