"""Layer-wise importance sampling (FastGCN-style).

FastGCN fixes the *total* number of vertices sampled per layer (``Δ_l``)
instead of a per-vertex fanout, drawing them with probability proportional to
(squared) degree.  The paper folds this into the unified abstraction through
Eq. 3: the effective per-vertex fanout is ``E[k_l] = Δ_l / |B^{l-1}|`` up to
the shared-neighbour coefficient ``μ``, which is how
:meth:`LayerSampler.fanout_profile` reports it to the estimator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.csr import CSRGraph
from repro.sampling.base import SampleBatch, Sampler

__all__ = ["LayerSampler"]


class LayerSampler(Sampler):
    """FastGCN-style sampler: ``Δ_l`` vertices per layer, degree-weighted."""

    name = "fastgcn"

    def __init__(self, layer_sizes: list[int], *, importance: bool = True) -> None:
        if not layer_sizes:
            raise SamplingError("layer_sizes must contain at least one layer")
        if any(s <= 0 for s in layer_sizes):
            raise SamplingError("every layer size must be positive")
        self.layer_sizes = [int(s) for s in layer_sizes]
        self.importance = importance
        self._last_batch_hint = max(self.layer_sizes)

    def sample(
        self, graph: CSRGraph, targets: np.ndarray, *, rng: np.random.Generator
    ) -> SampleBatch:
        targets = np.unique(np.asarray(targets, dtype=np.int64))
        if targets.size == 0:
            raise SamplingError("empty target set")
        self._last_batch_hint = targets.size
        frontier = targets
        collected = [targets]
        for delta in self.layer_sizes:
            src, dst = graph.gather_neighborhoods(frontier)
            if dst.size == 0:
                break
            candidates = np.unique(dst)
            if self.importance:
                weights = graph.degrees[candidates].astype(np.float64) ** 2
                prob = weights / weights.sum()
            else:
                prob = None
            take = min(delta, candidates.size)
            frontier = rng.choice(candidates, size=take, replace=False, p=prob)
            collected.append(frontier)
        all_nodes = np.concatenate(collected)
        return self._finalize(
            graph,
            targets,
            all_nodes,
            hops=len(self.layer_sizes),
            sampler=self.name,
        )

    def expected_hops(self) -> int:
        return len(self.layer_sizes)

    def fanout_profile(self) -> list[float]:
        """Eq. 3: effective fanout ``Δ_l / |B^{l-1}|`` per layer."""
        profile: list[float] = []
        prev = float(max(self._last_batch_hint, 1))
        for delta in self.layer_sizes:
            profile.append(delta / prev)
            prev = float(delta)
        return profile
