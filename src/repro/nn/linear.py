"""Dense linear layer."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """``y = x W + b`` with Glorot-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform(in_features, out_features, rng=rng), name="weight"
        )
        self.bias = Parameter(zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
