"""GNN library: layers, models, optimizers and metrics (PyTorch substitute)."""

from repro.nn.graphconv import GATConv, GCNConv, Propagation, SAGEConv
from repro.nn.linear import Linear
from repro.nn.metrics import accuracy, confusion_matrix, macro_f1
from repro.nn.models import MODEL_NAMES, GNN, build_model
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Propagation",
    "GCNConv",
    "SAGEConv",
    "GATConv",
    "Linear",
    "Module",
    "Parameter",
    "GNN",
    "build_model",
    "MODEL_NAMES",
    "Optimizer",
    "SGD",
    "Adam",
    "accuracy",
    "confusion_matrix",
    "macro_f1",
]
