"""Weight initialisers (Glorot/Kaiming), seeded for reproducibility."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "kaiming_uniform", "zeros"]


def glorot_uniform(
    fan_in: int, fan_out: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform init — the PyG default for GNN layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(
    fan_in: int, fan_out: int, *, rng: np.random.Generator
) -> np.ndarray:
    """He uniform init for ReLU stacks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """Zero array, used for biases."""
    return np.zeros(shape, dtype=np.float64)
