"""Full GNN models: configurable stacks of GCN / SAGE / GAT layers.

The paper's design space includes model-design knobs (hidden channels, layer
count — Fig. 3, Cat. 3); :func:`build_model` maps those knobs to a concrete
network, and every model shares the ``forward(x, prop)`` interface.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import dropout, elu, log_softmax, relu
from repro.autograd.tensor import Tensor
from repro.nn.graphconv import GATConv, GCNConv, Propagation, SAGEConv
from repro.nn.module import Module

__all__ = ["GNN", "build_model", "count_parameters", "MODEL_NAMES"]

MODEL_NAMES = ("gcn", "sage", "gat")


def count_parameters(
    arch: str,
    in_features: int,
    num_classes: int,
    *,
    hidden_channels: int = 64,
    num_layers: int = 2,
    heads: int = 4,
) -> int:
    """|Φ| of a :func:`build_model` network without allocating it.

    Drives Γ_model (Eq. 10) inside the performance estimator, where building
    real weight arrays for thousands of candidates would be wasteful.
    """
    if arch not in MODEL_NAMES:
        raise ValueError(f"unknown architecture {arch!r}; known: {MODEL_NAMES}")
    dims_in = [in_features] + [hidden_channels] * (num_layers - 1)
    dims_out = [hidden_channels] * (num_layers - 1) + [num_classes]
    total = 0
    for i, (d_in, d_out) in enumerate(zip(dims_in, dims_out, strict=True)):
        last = i == num_layers - 1
        if arch == "gcn":
            total += d_in * d_out + d_out
        elif arch == "sage":
            total += 2 * d_in * d_out + d_out
        else:
            head_out = max(d_out // heads, 1) if not last else d_out
            total += d_in * heads * head_out  # projection
            total += 2 * heads * head_out  # att_src + att_dst
            total += heads * head_out if not last else d_out  # bias
    return total


class GNN(Module):
    """A stack of graph-convolution layers with dropout and log-softmax head."""

    def __init__(
        self,
        arch: str,
        in_features: int,
        hidden_channels: int,
        num_classes: int,
        *,
        num_layers: int = 2,
        heads: int = 4,
        dropout_p: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if arch not in MODEL_NAMES:
            raise ValueError(f"unknown architecture {arch!r}; known: {MODEL_NAMES}")
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        rng = np.random.default_rng(seed)
        self.arch = arch
        self.dropout_p = dropout_p
        self.num_layers = num_layers
        self.hidden_channels = hidden_channels
        self._rng = np.random.default_rng(seed + 1)  # dropout masks

        layers: list[Module] = []
        dims_in = [in_features] + [hidden_channels] * (num_layers - 1)
        dims_out = [hidden_channels] * (num_layers - 1) + [num_classes]
        for i, (d_in, d_out) in enumerate(zip(dims_in, dims_out, strict=True)):
            last = i == num_layers - 1
            if arch == "gcn":
                layers.append(GCNConv(d_in, d_out, rng=rng))
            elif arch == "sage":
                layers.append(SAGEConv(d_in, d_out, rng=rng))
            else:
                # PyG convention: hidden_channels is the *total* width, split
                # across heads; concatenated heads restore it.  The output
                # layer averages heads onto num_classes.
                head_out = max(d_out // heads, 1) if not last else d_out
                layers.append(
                    GATConv(d_in, head_out, heads=heads, concat_heads=not last, rng=rng)
                )
        self.layers = layers

    def forward(self, x: Tensor, prop: Propagation) -> Tensor:
        # Fusing kernels take the hidden-layer relu inside the aggregation
        # call; the dropout rng draw order stays identical either way, so
        # switching kernels never desynchronises the mask sequence.
        kernel = getattr(prop, "kernel", None)
        fuse = kernel is not None and kernel.fuses_epilogue and self.arch != "gat"
        h = x
        for i, layer in enumerate(self.layers):
            last = i == self.num_layers - 1
            if fuse:
                h = layer(h, prop, activation=None if last else "relu")
            else:
                h = layer(h, prop)
                if not last:
                    h = elu(h) if self.arch == "gat" else relu(h)
            if not last:
                h = dropout(h, self.dropout_p, training=self.training, rng=self._rng)
        return log_softmax(h, axis=-1)


def build_model(
    arch: str,
    in_features: int,
    num_classes: int,
    *,
    hidden_channels: int = 64,
    num_layers: int = 2,
    heads: int = 4,
    dropout_p: float = 0.5,
    seed: int = 0,
) -> GNN:
    """Factory mapping design-space model knobs to a concrete network."""
    return GNN(
        arch,
        in_features,
        hidden_channels,
        num_classes,
        num_layers=num_layers,
        heads=heads,
        dropout_p=dropout_p,
        seed=seed,
    )
