"""Graph convolution layers: GCN, GraphSAGE and GAT (Eq. 1 Aggregate/Combine).

Layers consume a :class:`Propagation` — the per-mini-batch message-passing
structure built once from a sampled subgraph and shared by all layers, so the
normalised adjacency is not recomputed per layer.

A :class:`Propagation` may carry an
:class:`~repro.runtime.kernels.SpmmKernel` instance (duck-typed — this
module never imports the runtime package, avoiding an import cycle).  When
present, every sparse aggregation routes through it, and kernels that fuse
the bias/activation epilogue get the whole GCN/SAGE layer tail in one call
(``docs/kernels.md``).  With ``kernel=None`` the layers run the seed-era
:func:`~repro.autograd.sparse.spmm` path unchanged — that is the
bit-exactness baseline the ``reference`` kernel is asserted against.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.functional import leaky_relu
from repro.autograd.sparse import normalized_adjacency, segment_softmax, spmm
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform, zeros
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter

__all__ = ["Propagation", "GCNConv", "SAGEConv", "GATConv"]


def _spmm(prop: "Propagation", matrix: sp.csr_matrix, x: Tensor, **kwargs) -> Tensor:
    """Route an aggregation through the propagation's kernel, if any."""
    if prop.kernel is None:
        return spmm(matrix, x, **kwargs)
    return prop.kernel.spmm(matrix, x, **kwargs)


def _activate(x: Tensor, activation: str | None) -> Tensor:
    if activation is None:
        return x
    from repro.autograd.functional import elu, relu

    if activation == "relu":
        return relu(x)
    if activation == "elu":
        return elu(x)
    raise ValueError(f"unknown activation {activation!r}")


class Propagation:
    """Message-passing structure of one (sub)graph, built lazily.

    ``sym``/``row`` are the GCN / mean-aggregation propagation matrices;
    ``src``/``dst`` enumerate directed edges *including self-loops* for
    attention layers.  ``kernel`` optionally selects the SpMM execution
    backend; kernels cache their per-matrix plans on the matrices this
    object memoises, so plans live exactly one topology.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        num_nodes: int,
        *,
        kernel=None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_nodes = int(num_nodes)
        self.kernel = kernel
        self._sym: sp.csr_matrix | None = None
        self._row: sp.csr_matrix | None = None
        self._row_t: sp.csr_matrix | None = None
        self._coo: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_graph(cls, graph, *, kernel=None) -> "Propagation":
        """Build from any object with ``indptr``/``indices``/``num_nodes``."""
        return cls(graph.indptr, graph.indices, graph.num_nodes, kernel=kernel)

    @property
    def sym(self) -> sp.csr_matrix:
        if self._sym is None:
            self._sym = normalized_adjacency(
                self.indptr, self.indices, self.num_nodes, mode="sym"
            )
        return self._sym

    @property
    def row(self) -> sp.csr_matrix:
        if self._row is None:
            self._row = normalized_adjacency(
                self.indptr, self.indices, self.num_nodes, mode="row"
            )
        return self._row

    @property
    def row_t(self) -> sp.csr_matrix:
        if self._row_t is None:
            self._row_t = self.row.T.tocsr()
        return self._row_t

    @property
    def edges_with_loops(self) -> tuple[np.ndarray, np.ndarray]:
        if self._coo is None:
            degrees = np.diff(self.indptr)
            src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), degrees)
            loops = np.arange(self.num_nodes, dtype=np.int64)
            self._coo = (
                np.concatenate([src, loops]),
                np.concatenate([self.indices, loops]),
            )
        return self._coo

    def edge_matrices(self) -> dict[str, sp.csr_matrix]:
        """Gather/scatter operators over the self-loop edge list.

        ``gather_src @ h`` picks per-edge source rows; ``scatter_dst @ m``
        sums edge messages per destination.  Each matrix's transpose is the
        other direction's operator, so spmm backward passes reuse them —
        this keeps GAT free of slow ``np.add.at`` scatters.
        """
        if not hasattr(self, "_edge_mats"):
            from repro.autograd.tensor import get_default_dtype

            src, dst = self.edges_with_loops
            n, e = self.num_nodes, src.size
            ones = np.ones(e, dtype=get_default_dtype())
            rows = np.arange(e, dtype=np.int64)
            gather_src = sp.csr_matrix((ones, (rows, src)), shape=(e, n))
            gather_dst = sp.csr_matrix((ones, (rows, dst)), shape=(e, n))
            self._edge_mats = {
                "gather_src": gather_src,
                "gather_dst": gather_dst,
                "scatter_src": gather_src.T.tocsr(),
                "scatter_dst": gather_dst.T.tocsr(),
            }
        return self._edge_mats


class GCNConv(Module):
    """Kipf & Welling graph convolution: ``D^-1/2 Â D^-1/2 X W``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.lin = Linear(in_features, out_features, bias=True, rng=rng)

    def forward(
        self, x: Tensor, prop: Propagation, *, activation: str | None = None
    ) -> Tensor:
        kernel = prop.kernel
        if kernel is not None and kernel.fuses_epilogue:
            # Reassociate (A X) W -> A (X W) so bias + activation fuse into
            # the aggregation (tolerance-bounded vs reference; see
            # docs/kernels.md).
            return kernel.spmm_epilogue(
                prop.sym,
                x @ self.lin.weight,
                bias=self.lin.bias,
                activation=activation,
                symmetric=True,
            )
        return _activate(self.lin(_spmm(prop, prop.sym, x, symmetric=True)), activation)


class SAGEConv(Module):
    """GraphSAGE mean aggregator: ``W_self x ⊕ W_neigh mean(x_N(v))``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.lin_self = Linear(in_features, out_features, bias=True, rng=rng)
        self.lin_neigh = Linear(in_features, out_features, bias=False, rng=rng)

    def forward(
        self, x: Tensor, prop: Propagation, *, activation: str | None = None
    ) -> Tensor:
        kernel = prop.kernel
        if kernel is not None and kernel.fuses_epilogue:
            return kernel.spmm_epilogue(
                prop.row,
                x @ self.lin_neigh.weight,
                add=self.lin_self(x),
                activation=activation,
                transposed=prop.row_t,
            )
        out = self.lin_self(x) + self.lin_neigh(
            _spmm(prop, prop.row, x, transposed=prop.row_t)
        )
        return _activate(out, activation)


class GATConv(Module):
    """Graph attention layer (Velickovic et al.) with multi-head attention.

    Heads are concatenated when ``concat_heads`` (hidden layers) and averaged
    otherwise (output layer), matching the reference implementation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        heads: int = 4,
        concat_heads: bool = True,
        negative_slope: float = 0.2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if heads <= 0:
            raise ValueError("heads must be positive")
        rng = rng or np.random.default_rng()
        self.heads = heads
        self.out_features = out_features
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.weight = Parameter(
            glorot_uniform(in_features, heads * out_features, rng=rng), name="weight"
        )
        self.att_src = Parameter(
            glorot_uniform(heads, out_features, rng=rng) * 0.5, name="att_src"
        )
        self.att_dst = Parameter(
            glorot_uniform(heads, out_features, rng=rng) * 0.5, name="att_dst"
        )
        self.bias = Parameter(
            zeros(heads * out_features if concat_heads else out_features), name="bias"
        )

    def forward(self, x: Tensor, prop: Propagation) -> Tensor:
        src, dst = prop.edges_with_loops
        mats = prop.edge_matrices()
        n = prop.num_nodes
        h = (x @ self.weight).reshape(n, self.heads, self.out_features)

        # Per-node attention terms, then per-edge logits e_uv = a_s·h_u + a_d·h_v.
        alpha_src = (h * self.att_src).sum(axis=2)  # (n, heads)
        alpha_dst = (h * self.att_dst).sum(axis=2)
        logits = leaky_relu(
            _spmm(prop, mats["gather_src"], alpha_src, transposed=mats["scatter_src"])
            + _spmm(prop, mats["gather_dst"], alpha_dst, transposed=mats["scatter_dst"]),
            self.negative_slope,
        )
        att = segment_softmax(logits, dst, n, scatter_matrix=mats["scatter_dst"])

        messages = _spmm(
            prop,
            mats["gather_src"],
            h.reshape(n, self.heads * self.out_features),
            transposed=mats["scatter_src"],
        ).reshape(src.size, self.heads, self.out_features)
        weighted = messages * att.reshape(src.size, self.heads, 1)
        out = _spmm(
            prop,
            mats["scatter_dst"],
            weighted.reshape(src.size, self.heads * self.out_features),
            transposed=mats["gather_dst"],
        ).reshape(n, self.heads, self.out_features)

        if self.concat_heads:
            return out.reshape(n, self.heads * self.out_features) + self.bias
        return out.mean(axis=1) + self.bias
