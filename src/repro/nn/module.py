"""Module/Parameter system, mirroring the torch.nn idiom at small scale."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`."""

    def __init__(self, data: np.ndarray, *, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing parameter discovery and train/eval mode.

    Subclasses assign :class:`Parameter` and sub-``Module`` instances as
    attributes; :meth:`parameters` walks the attribute tree to find them,
    which is all the optimizers need.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------- discovery
    def parameters(self) -> Iterator[Parameter]:
        """Yield every trainable parameter exactly once, depth-first."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter) and id(value) not in seen:
                seen.add(id(value))
                yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item
                    elif isinstance(item, Module):
                        yield from item._parameters(seen)

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs including self."""
        yield prefix or type(self).__name__, self
        for attr, value in self.__dict__.items():
            path = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Module):
                yield from value.named_modules(path)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{path}[{i}]")

    # ----------------------------------------------------------------- modes
    def train(self) -> "Module":
        """Enable training mode (dropout active) recursively."""
        for _, module in self.named_modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Enable evaluation mode (dropout off) recursively."""
        for _, module in self.named_modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count ``|Φ|`` (drives Γ_model, Eq. 10)."""
        return sum(p.data.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by discovery order."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (order-matched)."""
        params = list(self.parameters())
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries, model has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            incoming = state[f"param_{i}"]
            if incoming.shape != param.data.shape:
                raise ValueError(f"shape mismatch on param_{i}")
            param.data = incoming.copy()

    # ------------------------------------------------------------------ call
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
