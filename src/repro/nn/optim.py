"""Optimizers: SGD (with momentum) and Adam.

Optimizer state size matters here beyond convergence: Γ_model in Eq. 10 of
the paper scales with ``|Φ|`` times the optimizer's per-parameter state
factor, which :attr:`Optimizer.state_factor` exposes to the memory model.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    #: multiples of |Φ| held as persistent state (weights excluded).
    state_factor: float = 0.0

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self.state_factor = 1.0 if momentum else 0.0
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity, strict=True):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    state_factor = 2.0  # first and second moment per parameter

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not (0 <= betas[0] < 1 and 0 <= betas[1] < 1):
            raise ValueError("betas must lie in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v, strict=True):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
