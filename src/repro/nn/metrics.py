"""Classification metrics used when reporting ``Acc`` in Perf(T, Γ, Acc)."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "macro_f1", "confusion_matrix"]


def accuracy(log_probs: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy given per-class log-probabilities (or logits)."""
    if log_probs.shape[0] != targets.shape[0]:
        raise ValueError("row count mismatch between predictions and targets")
    if log_probs.shape[0] == 0:
        return 0.0
    pred = log_probs.argmax(axis=1)
    return float(np.mean(pred == targets))


def confusion_matrix(
    pred: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """``C[i, j]`` = count of true class ``i`` predicted as ``j``."""
    flat = targets.astype(np.int64) * num_classes + pred.astype(np.int64)
    return np.bincount(flat, minlength=num_classes * num_classes).reshape(
        num_classes, num_classes
    )


def macro_f1(log_probs: np.ndarray, targets: np.ndarray, num_classes: int) -> float:
    """Unweighted mean F1 over classes (classes absent from data are skipped)."""
    pred = log_probs.argmax(axis=1)
    cm = confusion_matrix(pred, targets, num_classes)
    tp = np.diag(cm).astype(np.float64)
    support = cm.sum(axis=1)
    predicted = cm.sum(axis=0)
    f1s: list[float] = []
    for c in range(num_classes):
        if support[c] == 0:
            continue
        precision = tp[c] / predicted[c] if predicted[c] else 0.0
        recall = tp[c] / support[c]
        if precision + recall == 0:
            f1s.append(0.0)
        else:
            f1s.append(2 * precision * recall / (precision + recall))
    return float(np.mean(f1s)) if f1s else 0.0
