"""GNNavigator reproduction (DAC 2024): adaptive GNN training via automatic
guideline exploration.

Public entry points:

* :mod:`repro.graphs` — graph substrate and synthetic dataset zoo
* :mod:`repro.autograd` / :mod:`repro.nn` — numpy GNN training stack
* :mod:`repro.sampling` — unified sampler abstraction (Eq. 2/3)
* :mod:`repro.hardware` — simulated heterogeneous platform + device cache
* :mod:`repro.config` — reconfigurable settings, templates, design space
* :mod:`repro.runtime` — the reconfigurable runtime backend (Algo. 1)
* :mod:`repro.estimator` — gray-box performance estimator (Eqs. 4-12)
* :mod:`repro.explorer` — DSE, Pareto decision making, ``GNNavigator`` facade
* :mod:`repro.serving` — multi-tenant navigation server with a shared
  cross-task result store
"""

__version__ = "1.0.0"
