"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``navigate``   run GNNavigator end to end on a task and print guidelines
``serve``      serve navigation requests: batch mode over a job file, or
               network mode (``--port``) exposing the HTTP transport
``submit``     submit request(s) to a remote ``repro serve --port`` server
``poll``       poll/await remote jobs by id
``watch``      stream a remote job's live progress events until terminal
``cancel``     cancel remote jobs by id
``stats``      print a remote server's profiling/store/job counters
``metrics``    print a remote server's raw metrics registry scrape
``executor``   join a server's profiling fleet as a remote executor
``fleet``      inspect a remote server's fleet (``fleet status``)
``templates``  run the baseline system templates on a task
``transfer``   inspect the cross-task transfer corpus (``transfer stats``)
``datasets``   list the synthetic dataset zoo with statistics
``lint``       run the project-specific static analysis pass
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.config import KERNEL_NAMES, TaskSpec, get_template, template_names
from repro.errors import ServingError
from repro.experiments.tables import render_table
from repro.explorer import GNNavigator, RuntimeConstraint
from repro.graphs import DATASETS, load_dataset, profile_graph
from repro.runtime import RuntimeBackend
from repro.runtime.parallel import default_store_dir

__all__ = ["main", "build_parser"]


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be a non-negative integer")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GNNavigator (DAC 2024) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    nav = sub.add_parser("navigate", help="explore and train a guideline")
    nav.add_argument("--dataset", default="reddit2")
    nav.add_argument("--arch", default="sage", choices=["gcn", "sage", "gat"])
    nav.add_argument("--platform", default="rtx4090")
    nav.add_argument("--epochs", type=int, default=6)
    nav.add_argument(
        "--priority",
        default="balance",
        choices=["balance", "ex_tm", "ex_ma", "ex_ta"],
    )
    nav.add_argument("--budget", type=int, default=16, help="profiling budget")
    nav.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=None,
        help="worker processes for ground-truth profiling (default: serial)",
    )
    nav.add_argument(
        "--profile-cache",
        default=None,
        metavar="DIR",
        help="directory for the persistent profiling result cache",
    )
    nav.add_argument(
        "--shared-cache",
        action="store_true",
        help="persist profiling to the shared serving/experiment store "
        "(the layout `repro serve` and the experiment harness use)",
    )
    nav.add_argument(
        "--transfer",
        action="store_true",
        help="warm-start from the cross-task corpus over the profiling "
        "store (implies --shared-cache unless a cache dir is given): "
        "donor tasks' ground truth shrinks this run's profiling budget",
    )
    nav.add_argument("--max-time-ms", type=float, default=None)
    nav.add_argument("--max-memory-mib", type=float, default=None)
    nav.add_argument("--min-accuracy", type=float, default=None)
    nav.add_argument(
        "--kernel",
        default=None,
        choices=list(KERNEL_NAMES),
        help="SpMM execution backend for every explored candidate "
        "(default: the config default, i.e. $REPRO_KERNEL or 'reference')",
    )

    serve = sub.add_parser(
        "serve",
        help="serve navigation requests: a job-file batch, or --port for "
        "a long-lived HTTP server remote clients submit to",
    )
    serve.add_argument(
        "--jobs",
        default=None,
        metavar="FILE",
        help="JSON job file: a list of request specs "
        '(e.g. [{"dataset": "reddit2", "priorities": ["balance"]}]); '
        "'-' reads the specs from stdin.  Required without --port; with "
        "--port the specs are pre-submitted before serving",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for --port mode (default: loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the HTTP transport on this port until interrupted "
        "(0 picks a free port); without it, run the job file and exit",
    )
    serve.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="concurrent navigation jobs (worker threads)",
    )
    serve.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=None,
        help="worker processes for ground-truth profiling (default: serial)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared persistent result store "
        "(default: the repo-local serving store)",
    )
    serve.add_argument(
        "--no-store",
        action="store_true",
        help="keep result sharing in-memory only (no persistent store)",
    )
    serve.add_argument(
        "--fair",
        action="store_true",
        help="schedule tenants by weighted round-robin (fair-share) instead "
        "of pure priority, so one chatty tenant cannot starve the rest",
    )
    serve.add_argument(
        "--max-inflight-per-tenant",
        type=int,
        default=None,
        metavar="N",
        help="cap concurrent jobs per tenant (default: unlimited)",
    )
    serve.add_argument(
        "--store-budget",
        type=int,
        default=None,
        metavar="N",
        help="evict least-recently-written store entries past N "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--store-budget-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="evict least-recently-written store entries past BYTES on "
        "disk (default: unbounded; combines with --store-budget)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="fleet lease TTL: how long a remote executor may go silent "
        "before its claimed profiling work is re-issued (default: 10)",
    )
    serve.add_argument(
        "--transfer",
        action="store_true",
        help="warm-start navigations from the cross-task corpus over the "
        "persistent store (requires a store; per-request transfer_policy "
        "specs still override)",
    )

    def add_remote(sub_parser):
        sub_parser.add_argument(
            "--server",
            required=True,
            metavar="URL",
            help="base URL of a `repro serve --port` server "
            "(e.g. http://127.0.0.1:8765)",
        )
        sub_parser.add_argument(
            "--tenant",
            default="",
            help="fair-share lane / quota bucket for this client",
        )
        return sub_parser

    submit = add_remote(
        sub.add_parser(
            "submit", help="submit navigation request(s) to a remote server"
        )
    )
    submit.add_argument(
        "--jobs",
        default=None,
        metavar="FILE",
        help="JSON job file of request specs ('-' = stdin); without it, "
        "one request is built from the task flags below",
    )
    submit.add_argument("--dataset", default="reddit2")
    submit.add_argument("--arch", default="sage", choices=["gcn", "sage", "gat"])
    submit.add_argument("--platform", default="rtx4090")
    submit.add_argument("--epochs", type=int, default=6)
    submit.add_argument(
        "--priority",
        default="balance",
        choices=["balance", "ex_tm", "ex_ma", "ex_ta"],
        help="exploration objective",
    )
    submit.add_argument("--budget", type=int, default=16)
    submit.add_argument(
        "--profile-epochs", type=int, default=2, help="epochs per profiling run"
    )
    submit.add_argument(
        "--queue-priority",
        type=int,
        default=0,
        help="server queue priority (higher runs first)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block for every submitted job's result before exiting",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream each job's live progress events (implies --wait)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="with --wait: seconds to wait per job (default: forever)",
    )

    poll = add_remote(
        sub.add_parser("poll", help="poll/await remote jobs by id")
    )
    poll.add_argument("job_ids", nargs="+", metavar="JOB_ID")
    poll.add_argument(
        "--wait",
        action="store_true",
        help="block for each job's result instead of printing its status",
    )
    poll.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="with --wait: seconds to wait per job (default: forever)",
    )

    watch = add_remote(
        sub.add_parser(
            "watch",
            help="stream live progress of remote jobs (one line per event) "
            "until each job's stream ends",
        )
    )
    watch.add_argument("job_ids", nargs="+", metavar="JOB_ID")
    watch.add_argument(
        "--since",
        type=_nonnegative_int,
        default=0,
        help="resume the stream from this event sequence number "
        "(a previous watch's last printed seq + 1)",
    )

    cancel = add_remote(
        sub.add_parser("cancel", help="cancel remote jobs by id")
    )
    cancel.add_argument("job_ids", nargs="+", metavar="JOB_ID")

    add_remote(
        sub.add_parser(
            "stats", help="print a remote server's profiling/store counters"
        )
    )

    add_remote(
        sub.add_parser(
            "metrics",
            help="print a remote server's metrics registry (name value "
            "per line, counters and gauges)",
        )
    )

    executor = sub.add_parser(
        "executor",
        help="join a server's profiling fleet: claim candidate batches, "
        "run them locally, commit the records back (until interrupted)",
    )
    executor.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="base URL of a `repro serve --port` server "
        "(e.g. http://127.0.0.1:8765)",
    )
    executor.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=None,
        help="worker processes for claimed profiling runs (default: serial)",
    )
    executor.add_argument(
        "--executor-id",
        default=None,
        metavar="ID",
        help="rejoin under a previously-assigned executor id "
        "(default: the server assigns a fresh one)",
    )
    executor.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        metavar="N",
        help="cap candidates per claim (default: the server's batch limit)",
    )
    executor.add_argument(
        "--claim-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="long-poll window of one idle claim round (default: 2)",
    )

    fleet = add_remote(
        sub.add_parser(
            "fleet", help="inspect a remote server's profiling fleet"
        )
    )
    fleet.add_argument(
        "action",
        choices=["status"],
        help="'status' prints the executor census and queue depths",
    )

    tmpl = sub.add_parser("templates", help="run the baseline templates")
    tmpl.add_argument("--dataset", default="reddit2")
    tmpl.add_argument("--arch", default="sage", choices=["gcn", "sage", "gat"])
    tmpl.add_argument("--epochs", type=int, default=4)
    tmpl.add_argument(
        "--kernel",
        default=None,
        choices=list(KERNEL_NAMES),
        help="SpMM execution backend to run the templates under",
    )

    transfer = sub.add_parser(
        "transfer",
        help="inspect the cross-task transfer corpus over a result store",
    )
    transfer.add_argument(
        "action",
        choices=["stats"],
        help="'stats' prints the task families the corpus can donate from",
    )
    transfer.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store directory to index "
        "(default: the shared serving/experiment store)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the project-specific static analysis pass "
        "(lock discipline, lock ordering, wire drift, plumbing)",
    )
    add_lint_arguments(lint)

    sub.add_parser("datasets", help="list the dataset zoo")
    return parser


def _cmd_navigate(args: argparse.Namespace) -> int:
    constraint = RuntimeConstraint(
        max_time_s=None if args.max_time_ms is None else args.max_time_ms / 1e3,
        max_memory_bytes=(
            None if args.max_memory_mib is None else args.max_memory_mib * 2**20
        ),
        min_accuracy=args.min_accuracy,
    )
    task = TaskSpec(
        dataset=args.dataset,
        arch=args.arch,
        platform=args.platform,
        epochs=args.epochs,
    )
    cache_dir = args.profile_cache
    if args.shared_cache:
        if cache_dir is not None:
            raise ServingError("--shared-cache and --profile-cache conflict")
        cache_dir = str(default_store_dir())
    transfer = None
    if args.transfer:
        from repro.runtime.parallel import ResultStore
        from repro.transfer import TransferContext, TransferCorpus

        # The corpus lives in the persistent store; without an explicit
        # cache dir, transfer implies the shared one (where `repro serve`
        # and the experiment harness accumulate donors).
        if cache_dir is None:
            cache_dir = str(default_store_dir())
        transfer = TransferContext(TransferCorpus(ResultStore(cache_dir)))
    space = None
    if args.kernel is not None:
        # Rebase the full space so every explored candidate (and therefore
        # the applied guideline) carries the requested kernel.
        from dataclasses import replace

        from repro.config import DesignSpace, default_space

        full = default_space()
        space = DesignSpace(full.domains, base=replace(full.base, kernel=args.kernel))
    nav = GNNavigator(
        task,
        space=space,
        profile_budget=args.budget,
        workers=args.workers,
        cache_dir=cache_dir,
        transfer=transfer,
    )
    print(f"exploring for priority {args.priority!r} ({constraint.describe()})...")
    report = nav.explore(constraint=constraint, priorities=[args.priority])
    info = report.extras.get("transfer")
    if args.transfer:
        if info is None:
            print("transfer: cold start (no compatible donors in the corpus)")
        else:
            donors = ", ".join(
                f"{d['dataset']}({d['similarity']:.2f})" for d in info["donors"]
            )
            print(
                f"transfer: warm start from {donors} — "
                f"{info['donor_records']} donor records, "
                f"budget {info['full_budget']}->{info['budget']} "
                f"({info['runs_saved']} runs saved)"
            )
    guideline = report.guidelines[args.priority]
    print(f"guideline: {guideline.describe()}")
    perf = nav.apply(guideline)
    print(f"measured : {perf.summary()}")
    return 0


def _read_specs(jobs: str) -> list[dict]:
    text = sys.stdin.read() if jobs == "-" else open(jobs).read()
    specs = json.loads(text)
    if not isinstance(specs, list):
        raise ServingError("job file must hold a JSON list of request specs")
    return specs


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import NavigationRequest, NavigationServer

    if args.jobs is None and args.port is None:
        raise ServingError("serve needs --jobs (batch mode), --port, or both")
    requests = []
    if args.jobs is not None:
        requests = [
            NavigationRequest.from_dict(spec) for spec in _read_specs(args.jobs)
        ]

    cache_dir = None
    if not args.no_store:
        cache_dir = args.cache_dir or str(default_store_dir())
    if args.port is not None:
        return _serve_network(args, requests, cache_dir)
    with NavigationServer(
        workers=args.serve_workers,
        profile_workers=args.workers,
        cache_dir=cache_dir,
        fairness=args.fair,
        max_inflight=args.max_inflight_per_tenant,
        store_budget=args.store_budget,
        store_budget_bytes=args.store_budget_bytes,
        fleet_lease_ttl=args.lease_ttl,
        transfer=args.transfer,
    ) as server:
        job_ids = server.submit_many(requests)
        print(
            f"serving {len(job_ids)} request(s) on {args.serve_workers} "
            f"worker(s), store: {cache_dir or 'in-memory'}"
        )
        jobs = server.drain()

    rows = []
    for job in jobs:
        req = job.request
        if job.status.value == "done":
            outcome = job.result.best().describe()
        else:
            outcome = job.error or job.status.value
        rows.append(
            [
                job.job_id,
                f"{req.task.dataset}+{req.task.arch}",
                "/".join(req.priorities),
                str(req.priority),
                job.status.value,
                outcome,
            ]
        )
    stats = server.stats
    print(
        render_table(
            ["job", "task", "objectives", "prio", "status", "outcome"],
            rows,
            title="served navigation jobs",
        )
    )
    print(
        f"profiling: {stats.executed} runs, {stats.cache_hits} cache hits, "
        f"{stats.shared_inflight} shared in-flight, "
        f"{stats.deduplicated} deduplicated, {stats.evictions} evicted"
    )
    return 0 if all(j.status.value == "done" for j in jobs) else 1


def _serve_network(
    args: argparse.Namespace, requests: list, cache_dir: str | None
) -> int:
    """``repro serve --port``: expose the HTTP transport until interrupted."""
    from repro.serving import NavigationServer
    from repro.serving.transport import NavigationHTTPServer

    with NavigationServer(
        workers=args.serve_workers,
        profile_workers=args.workers,
        cache_dir=cache_dir,
        fairness=args.fair,
        max_inflight=args.max_inflight_per_tenant,
        store_budget=args.store_budget,
        store_budget_bytes=args.store_budget_bytes,
        fleet_lease_ttl=args.lease_ttl,
        transfer=args.transfer,
    ) as server:
        if requests:
            job_ids = server.submit_many(requests)
            print(f"pre-submitted {len(job_ids)} request(s) from the job file")
        transport = NavigationHTTPServer(
            server, host=args.host, port=args.port
        )
        print(
            f"serving on {transport.url} "
            f"({args.serve_workers} worker(s), "
            f"store: {cache_dir or 'in-memory'})",
            flush=True,
        )
        try:
            transport.serve_forever()
        except KeyboardInterrupt:
            print("interrupted; draining running jobs...", flush=True)
        finally:
            transport.stop()
    stats = server.stats
    print(
        f"profiling: {stats.executed} runs, {stats.cache_hits} cache hits, "
        f"{stats.shared_inflight} shared in-flight, "
        f"{stats.deduplicated} deduplicated, {stats.evictions} evicted"
    )
    return 0


def _remote_client(args: argparse.Namespace):
    from repro.serving.transport import RemoteNavigationClient

    return RemoteNavigationClient(args.server, tenant=args.tenant)


def _print_outcome(client, job_id: str, timeout: float | None) -> bool:
    """Wait for one remote job; print its outcome; True when it succeeded."""
    from repro.errors import JobFailedError

    try:
        result = client.result(job_id, timeout)
    except JobFailedError as exc:
        print(f"{job_id} [failed] {exc.message}")
        if exc.traceback:
            print(exc.traceback.rstrip())
        return False
    except ServingError as exc:
        print(f"{job_id} [{exc}]")
        return False
    print(f"{job_id} [done] {result.best().describe()}")
    return True


def _follow(client, job_id: str, since: int = 0) -> bool:
    """Stream one job's events to stdout; True when it ended DONE."""
    last = None
    for event in client.watch(job_id, since=since):
        print(f"  #{event.seq} {event.describe()}", flush=True)
        last = event
    return last is not None and last.status == "done"


def _cmd_submit(args: argparse.Namespace) -> int:
    client = _remote_client(args)
    if args.jobs is not None:
        specs = _read_specs(args.jobs)
        from repro.serving import NavigationRequest

        handles = client.submit_many(
            [NavigationRequest.from_dict(spec) for spec in specs]
        )
    else:
        from repro.config import TaskSpec as _TaskSpec

        task = _TaskSpec(
            dataset=args.dataset,
            arch=args.arch,
            platform=args.platform,
            epochs=args.epochs,
        )
        handles = [
            client.submit(
                task,
                priorities=(args.priority,),
                budget=args.budget,
                profile_epochs=args.profile_epochs,
                priority=args.queue_priority,
            )
        ]
    for handle in handles:
        print(f"submitted {handle.job_id}")
    if args.follow:
        # live progress first, then the one-line outcome per job (the
        # result is already terminal once the stream ends, so the
        # outcome print below returns immediately).
        for handle in handles:
            _follow(client, handle.job_id)
    elif not args.wait:
        return 0
    ok = [_print_outcome(client, h.job_id, args.timeout) for h in handles]
    return 0 if all(ok) else 1


def _cmd_poll(args: argparse.Namespace) -> int:
    client = _remote_client(args)
    if args.wait:
        ok = [
            _print_outcome(client, job_id, args.timeout)
            for job_id in args.job_ids
        ]
        return 0 if all(ok) else 1
    code = 0
    for job_id in args.job_ids:
        snapshot = client.snapshot(job_id)
        line = f"{job_id} [{snapshot.status.value}]"
        if snapshot.error:
            line += f" {snapshot.error}"
            code = 1
        print(line)
    return code


def _cmd_watch(args: argparse.Namespace) -> int:
    client = _remote_client(args)
    ok = True
    for job_id in args.job_ids:
        ok = _follow(client, job_id, since=args.since) and ok
    return 0 if ok else 1


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = _remote_client(args)
    for job_id in args.job_ids:
        taken = client.cancel(job_id)
        print(f"{job_id} {'cancelled' if taken else 'not cancellable'}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    snapshot = _remote_client(args).metrics()
    width = max((len(name) for name in snapshot), default=0)
    for name, value in snapshot.items():
        text = f"{value:g}" if isinstance(value, float) else str(value)
        print(f"{name:<{width}}  {text}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = _remote_client(args).stats()
    p = stats.profiling
    print(
        f"profiling: {p['executed']} runs, {p['cache_hits']} cache hits, "
        f"{p['shared_inflight']} shared in-flight, "
        f"{p['deduplicated']} deduplicated, {p['evictions']} evicted"
    )
    s = stats.store
    if s.get("persistent"):
        print(
            f"store: {s['entries']} entries, {s['bytes']} bytes, "
            f"{s['pinned']} pinned"
        )
    else:
        print("store: in-memory only")
    census = ", ".join(
        f"{count} {status}"
        for status, count in sorted(stats.jobs.items())
        if status != "total"
    )
    print(f"jobs: {stats.jobs.get('total', 0)} total" + (f" ({census})" if census else ""))
    return 0


def _cmd_executor(args: argparse.Namespace) -> int:
    from repro.serving.fleet import ProfilingExecutor

    executor = ProfilingExecutor(
        args.server,
        workers=args.workers,
        executor_id=args.executor_id,
        max_candidates=args.max_candidates,
        claim_timeout=args.claim_timeout,
    )
    executor.register()
    print(
        f"executor {executor.executor_id} joined {args.server} "
        f"({args.workers or 'serial'} profiling worker(s), "
        f"heartbeat every {executor.heartbeat_seconds:.1f}s)",
        flush=True,
    )
    try:
        # run() re-registers, which is idempotent under the same id; the
        # eager register above exists so the banner can name the id before
        # the loop blocks.
        executor.run()
    except KeyboardInterrupt:
        print("interrupted; leaving the fleet...", flush=True)
    finally:
        executor.stop()
    print(
        f"executor {executor.executor_id}: {executor.claimed} batches "
        f"claimed, {executor.runs} runs executed, "
        f"{executor.committed} records committed"
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.serving.fleet import FleetClient

    status = FleetClient(args.server, tenant=args.tenant).fleet_status()
    rows = [
        [
            row["executor_id"],
            str(row["workers"]),
            f"{row['age_seconds']:.1f}s",
            str(row["claims"]),
            str(row["commits"]),
            str(row["lease_expiries"]),
            str(row["leased_keys"]),
        ]
        for row in status.executors
    ]
    print(
        render_table(
            ["executor", "workers", "last seen", "claims", "commits",
             "expiries", "leased"],
            rows,
            title=f"profiling fleet @ {args.server}",
        )
    )
    print(
        f"queue: {status.pending} candidate(s) pending, "
        f"{status.leased} leased"
    )
    return 0


def _cmd_templates(args: argparse.Namespace) -> int:
    from dataclasses import replace

    task = TaskSpec(dataset=args.dataset, arch=args.arch, epochs=args.epochs)
    rows = []
    for name in template_names():
        config = get_template(name)
        if args.kernel is not None:
            config = replace(config, kernel=args.kernel)
        report = RuntimeBackend(task, config).train()
        rows.append(
            [
                name,
                f"{report.time_s * 1e3:.2f}",
                f"{report.memory.total / 2**20:.1f}",
                f"{report.accuracy * 100:.2f}%",
            ]
        )
    print(
        render_table(
            ["template", "T (ms)", "Γ (MiB)", "Acc"],
            rows,
            title=f"{task.dataset}+{task.arch}, {task.epochs} epochs",
        )
    )
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    from repro.runtime.parallel import ResultStore
    from repro.transfer import TransferCorpus

    store_dir = args.store or str(default_store_dir())
    corpus = TransferCorpus(ResultStore(store_dir))
    corpus.refresh()
    stats = corpus.stats()
    rows = [
        [
            fam["fingerprint_id"],
            fam["dataset"],
            fam["arch"],
            fam["platform"],
            str(fam["num_nodes"]),
            str(fam["num_edges"]),
            str(fam["records"]),
        ]
        for fam in stats["families"]
    ]
    print(
        render_table(
            ["fingerprint", "dataset", "arch", "platform", "|V|", "|E|", "records"],
            rows,
            title=f"transfer corpus @ {store_dir}",
        )
    )
    print(
        f"{stats['tasks']} task family(ies), {stats['records']} donor "
        f"record(s) indexed"
    )
    return 0


def _cmd_datasets() -> int:
    rows = []
    for spec in sorted({s.name: s for s in DATASETS.values()}.values(), key=lambda s: s.name):
        graph = load_dataset(spec.name)
        profile = profile_graph(graph)
        rows.append(
            [
                spec.name,
                "/".join(spec.aliases),
                str(profile.num_nodes),
                str(profile.num_edges),
                f"{profile.avg_degree:.1f}",
                str(profile.feature_dim),
                str(profile.num_classes),
            ]
        )
    print(
        render_table(
            ["dataset", "aliases", "|V|", "|E|", "avg deg", "n_attr", "classes"],
            rows,
            title="Synthetic dataset zoo (scaled stand-ins, see DESIGN.md)",
        )
    )
    return 0


def _maybe_sanitize() -> None:
    """Honor ``REPRO_SANITIZE=1``: run under the runtime lockdep and write
    the observed lock graph (``REPRO_SANITIZE_REPORT``) at exit."""
    from repro.analysis import sanitizer

    if not sanitizer.enabled_from_env():
        return
    san = sanitizer.enable()
    report = os.environ.get("REPRO_SANITIZE_REPORT", "")
    if report:
        import atexit

        atexit.register(san.write_report, report)


def main(argv: list[str] | None = None) -> int:
    _maybe_sanitize()
    args = build_parser().parse_args(argv)
    if args.command == "navigate":
        return _cmd_navigate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "poll":
        return _cmd_poll(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "executor":
        return _cmd_executor(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "templates":
        return _cmd_templates(args)
    if args.command == "transfer":
        return _cmd_transfer(args)
    if args.command == "lint":
        return run_lint(args)
    return _cmd_datasets()


if __name__ == "__main__":
    sys.exit(main())
