"""Sparse / graph-structured differentiable operations.

GNN aggregation (Eq. 1 of the paper) reduces messages along edges.  The three
primitives here cover every model we implement:

* :func:`gather` — pick per-edge source rows from node embeddings;
* :func:`scatter_add` / :func:`scatter_mean` — reduce edge messages to nodes;
* :func:`segment_softmax` — per-destination softmax for GAT attention;
* :func:`spmm` — CSR sparse × dense matmul (fixed topology, differentiable in
  the dense operand), used by GCN/SAGE mean aggregation for speed.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, as_tensor

__all__ = ["gather", "scatter_add", "scatter_mean", "segment_softmax", "spmm", "normalized_adjacency"]


def gather(x: Tensor, index: np.ndarray) -> Tensor:
    """Rows ``x[index]`` with scatter-add backward."""
    x = as_tensor(x)
    index = np.asarray(index, dtype=np.int64)
    out = x.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(x.data)
        np.add.at(full, index, grad)
        x._accumulate_fresh(full)

    return Tensor._make(out, (x,), backward)


def scatter_add(src: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Sum rows of ``src`` into ``num_rows`` buckets given by ``index``."""
    src = as_tensor(src)
    index = np.asarray(index, dtype=np.int64)
    if index.shape[0] != src.data.shape[0]:
        raise ValueError("index length must match src rows")
    out = np.zeros((num_rows,) + src.data.shape[1:], dtype=src.data.dtype)
    np.add.at(out, index, src.data)

    def backward(grad: np.ndarray) -> None:
        src._accumulate_fresh(grad[index])

    return Tensor._make(out, (src,), backward)


def scatter_mean(src: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Mean-reduce rows of ``src`` per destination bucket (empty buckets → 0)."""
    index = np.asarray(index, dtype=np.int64)
    counts = np.bincount(index, minlength=num_rows).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_rows,) + (1,) * (src.data.ndim - 1))
    summed = scatter_add(src, index, num_rows)
    return summed * Tensor(1.0 / counts)


def segment_softmax(
    values: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    *,
    scatter_matrix: sp.csr_matrix | None = None,
) -> Tensor:
    """Softmax of ``values`` computed independently within each segment.

    Used for GAT: per-edge attention logits are normalised over all edges
    sharing a destination vertex.  ``values`` may be 1-D (one head) or 2-D
    ``(num_edges, num_heads)``.  ``scatter_matrix`` — a cached
    ``(num_segments, num_edges)`` CSR summing rows per segment — replaces the
    slow ``np.add.at`` reductions when supplied.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    data = values.data
    trailing = data.shape[1:]

    def seg_sum_rows(rows: np.ndarray) -> np.ndarray:
        if scatter_matrix is not None and rows.ndim == 2:
            return scatter_matrix @ rows
        total = np.zeros((num_segments,) + trailing, dtype=data.dtype)
        np.add.at(total, segment_ids, rows)
        return total

    seg_max = np.full((num_segments,) + trailing, -np.inf, dtype=data.dtype)
    np.maximum.at(seg_max, segment_ids, data)
    shifted = data - seg_max[segment_ids]
    exp = np.exp(shifted)
    out = exp / seg_sum_rows(exp)[segment_ids]

    def backward(grad: np.ndarray) -> None:
        # d softmax: s * (g - sum_j s_j g_j) within each segment.
        weighted = out * grad
        seg_dot = seg_sum_rows(weighted)
        values._accumulate_fresh(weighted - out * seg_dot[segment_ids])

    return Tensor._make(out, (values,), backward)


def spmm(
    matrix: sp.csr_matrix,
    x: Tensor,
    *,
    symmetric: bool = False,
    transposed: sp.csr_matrix | None = None,
) -> Tensor:
    """``matrix @ x`` where ``matrix`` is a constant scipy CSR matrix.

    The backward pass needs ``matrix.T``; pass ``symmetric=True`` for
    symmetric propagation matrices (GCN's ``D^-1/2 Â D^-1/2``) or a cached
    ``transposed`` matrix to avoid re-transposing per call.  Otherwise the
    transpose is computed lazily on first backward and memoised.
    """
    x = as_tensor(x)
    out = matrix @ x.data
    state: dict[str, sp.csr_matrix] = {}
    if symmetric:
        state["T"] = matrix
    elif transposed is not None:
        state["T"] = transposed

    def backward(grad: np.ndarray) -> None:
        if "T" not in state:
            state["T"] = matrix.T.tocsr()
        x._accumulate_fresh(state["T"] @ grad)

    return Tensor._make(np.asarray(out), (x,), backward)


def normalized_adjacency(
    indptr: np.ndarray,
    indices: np.ndarray,
    num_nodes: int,
    *,
    mode: str = "sym",
    add_self_loops: bool = True,
    dtype=None,
) -> sp.csr_matrix:
    """GCN-style normalised adjacency ``D^-1/2 (A + I) D^-1/2`` (or row ``D^-1 A``).

    ``mode='sym'`` gives the GCN propagation matrix; ``mode='row'`` gives the
    mean aggregator used by GraphSAGE.  Values use the autograd default dtype
    unless overridden, so spmm products do not silently upcast.
    """
    from repro.autograd.tensor import get_default_dtype

    dtype = dtype or get_default_dtype()
    n_edges = indices.size
    src = np.repeat(np.arange(num_nodes, dtype=np.int64), np.diff(indptr))
    adj = sp.csr_matrix(
        (np.ones(n_edges, dtype=dtype), (src, indices)),
        shape=(num_nodes, num_nodes),
    )
    if add_self_loops:
        adj = adj + sp.eye(num_nodes, format="csr", dtype=dtype)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    deg = np.maximum(deg, 1.0)
    if mode == "sym":
        d_inv_sqrt = sp.diags((1.0 / np.sqrt(deg)).astype(dtype))
        return (d_inv_sqrt @ adj @ d_inv_sqrt).tocsr()
    if mode == "row":
        d_inv = sp.diags((1.0 / deg).astype(dtype))
        return (d_inv @ adj).tocsr()
    raise ValueError(f"unknown normalisation mode {mode!r}")
