"""Differentiable activation, normalisation and loss functions.

These compose :class:`~repro.autograd.tensor.Tensor` primitives or register
custom backward closures where a fused implementation is clearer or more
numerically stable (log-softmax, cross-entropy).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "exp",
    "log",
    "sigmoid",
    "tanh",
    "dropout",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "concat",
]


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.2) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0
    out = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * np.where(mask, 1.0, negative_slope))

    return Tensor._make(out, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0
    neg = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    out = np.where(mask, x.data, neg)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * np.where(mask, 1.0, neg + alpha))

    return Tensor._make(out, (x,), backward)


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * out)

    return Tensor._make(out, (x,), backward)


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad / x.data)

    return Tensor._make(np.log(x.data), (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * out * (1.0 - out))

    return Tensor._make(out, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * (1.0 - out**2))

    return Tensor._make(out, (x,), backward)


def dropout(
    x: Tensor,
    p: float,
    *,
    training: bool = True,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Inverted dropout; identity when evaluating or when ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must lie in [0, 1)")
    x = as_tensor(x)
    if not training or p == 0.0 or not is_grad_enabled():
        return x
    rng = rng or np.random.default_rng()
    # float32 draws are ~2x faster and precision is irrelevant for masking.
    keep = (rng.random(x.data.shape, dtype=np.float32) >= p).astype(x.data.dtype)
    keep /= 1.0 - p

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad * keep)

    return Tensor._make(x.data * keep, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable fused log-softmax."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    softmax = np.exp(out)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_fresh(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood for integer class targets."""
    log_probs = as_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.data.shape[0]
    if targets.shape != (n,):
        raise ValueError("targets must be a 1-D class-id array matching rows")
    picked = log_probs.data[np.arange(n), targets]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(log_probs.data)
        full[np.arange(n), targets] = -grad / n
        log_probs._accumulate_fresh(full)

    return Tensor._make(np.asarray(-picked.mean()), (log_probs,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:], strict=True):
            idx = [slice(None)] * grad.ndim
            idx[axis] = slice(lo, hi)
            t._accumulate(grad[tuple(idx)])

    return Tensor._make(out, tuple(tensors), backward)
