"""A small reverse-mode automatic-differentiation engine over numpy.

This is the repo's substitute for PyTorch (see DESIGN.md): enough of a tensor
library to train GCN / GraphSAGE / GAT end-to-end.  A :class:`Tensor` wraps a
``float`` numpy array; operations record a backward closure on a tape, and
:meth:`Tensor.backward` walks the tape in reverse topological order.

Design choices kept deliberately boring:

* gradients are accumulated into ``tensor.grad`` (numpy arrays, never
  Tensors) exactly like ``torch.autograd``;
* broadcasting is supported by summing gradients back over broadcast axes;
* no in-place ops, no views — every op allocates, which keeps the tape sound.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]

_GRAD_ENABLED = True
#: float32 matches the precision GNN frameworks train in and halves memory
#: traffic; numeric gradient checks switch to float64 via `default_dtype`.
_DEFAULT_DTYPE = np.float32


def get_default_dtype() -> np.dtype:
    """Dtype new tensors are coerced to."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Globally change the tensor dtype (float32 or float64)."""
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError("default dtype must be float32 or float64")
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dt


class default_dtype:
    """Context manager temporarily switching the default dtype."""

    def __init__(self, dtype) -> None:
        self._dtype = dtype

    def __enter__(self) -> "default_dtype":
        self._prev = get_default_dtype()
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._prev)


class no_grad:
    """Context manager disabling tape recording (evaluation mode)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Whether new operations will record backward closures."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: np.ndarray | float | int | Iterable,
        *,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        arr = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ----------------------------------------------------------- tape plumbing
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_fresh(self, grad: np.ndarray) -> None:
        """Accumulate a gradient the caller guarantees is freshly allocated.

        Skips the defensive copy of :meth:`_accumulate`; only backward
        closures that just built ``grad`` (matmul, elementwise products,
        spmm...) may use this.
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (defaults to scalar seed 1)."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # -------------------------------------------------------------- shape info
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Read-only view of the underlying data."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate_fresh(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate_fresh(grad * other.data)
            other._accumulate_fresh(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate_fresh(grad / other.data)
            other._accumulate_fresh(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate_fresh(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate_fresh(grad @ other.data.swapaxes(-1, -2))
            other._accumulate_fresh(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                o = np.expand_dims(o, axis=axis)
            mask = self.data == o
            # Split gradient among ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.where(mask, g / counts, 0.0))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------ shape moves
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce value to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)
