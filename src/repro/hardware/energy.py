"""Energy model — an extension beyond the paper's Perf(T, Γ, Acc).

The paper's introduction motivates FPGA/accelerator work by "notable
reduction in time cost or energy consumption"; this module adds the energy
side so deployment studies can weigh joules next to seconds.  Energy is
derived from the same per-batch records the time model uses:

* host energy   = host active power x (t_sample + t_transfer staging)
* device energy = device active power x (t_replace + t_compute) + idle floor
* link energy   = transferred bytes x pJ/bit figure

Powers are parametric per platform class, defaulting to public TDP-level
figures scaled by a utilisation factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.costmodel import FLOAT_BYTES
from repro.hardware.specs import Platform
from repro.runtime.report import BatchRecord

__all__ = ["EnergyModel", "EnergyBreakdown"]

#: active-power defaults (watts) per platform name; fall back to generic.
_POWER_TABLE: dict[str, tuple[float, float]] = {
    # (host active W, device active W)
    "rtx4090": (180.0, 450.0),
    "a100": (180.0, 400.0),
    "m90": (60.0, 75.0),
}
_DEFAULT_POWER = (150.0, 300.0)
#: energy per transferred bit over PCIe-class links (picojoules).
_LINK_PJ_PER_BIT = 15.0
#: idle draw as a fraction of active power while the device waits.
_IDLE_FRACTION = 0.15


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per phase for a batch, epoch or run."""

    host_j: float
    device_j: float
    link_j: float

    @property
    def total_j(self) -> float:
        return self.host_j + self.device_j + self.link_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            host_j=self.host_j + other.host_j,
            device_j=self.device_j + other.device_j,
            link_j=self.link_j + other.link_j,
        )


class EnergyModel:
    """Charges joules to the measured per-batch phase times."""

    def __init__(
        self,
        platform: Platform,
        *,
        utilization: float = 0.7,
    ) -> None:
        if not 0.0 < utilization <= 1.0:
            raise HardwareError("utilization must lie in (0, 1]")
        host_w, device_w = _POWER_TABLE.get(platform.name, _DEFAULT_POWER)
        self.platform = platform
        self.host_watts = host_w * utilization
        self.device_watts = device_w * utilization
        self.utilization = utilization

    def batch_energy(self, record: BatchRecord, n_attr: int) -> EnergyBreakdown:
        """Energy of one mini-batch iteration from its phase times."""
        if n_attr < 0:
            raise HardwareError("n_attr cannot be negative")
        host_time = record.t_sample + record.t_transfer
        device_busy = record.t_replace + record.t_compute
        # Whichever pipeline finishes early idles until the batch ends (Eq. 4).
        wall = record.time
        device_idle = max(wall - device_busy, 0.0)
        host_idle = max(wall - host_time, 0.0)

        transferred_bits = record.num_missed * n_attr * FLOAT_BYTES * 8.0
        return EnergyBreakdown(
            host_j=self.host_watts * (host_time + _IDLE_FRACTION * host_idle),
            device_j=self.device_watts
            * (device_busy + _IDLE_FRACTION * device_idle),
            link_j=transferred_bits * _LINK_PJ_PER_BIT * 1e-12,
        )

    def records_energy(
        self, records: list[BatchRecord], n_attr: int
    ) -> EnergyBreakdown:
        """Total energy over a list of batch records (epoch or full run)."""
        total = EnergyBreakdown(0.0, 0.0, 0.0)
        for record in records:
            total = total + self.batch_energy(record, n_attr)
        return total
