"""Simulated heterogeneous platform: specs, device cache, cost and memory models."""

from repro.hardware.cache import CACHE_POLICIES, CacheStats, DeviceCache
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.hardware.costmodel import (
    FLOAT_BYTES,
    ModelCosting,
    batch_time,
    model_costing,
    t_compute,
    t_replace,
    t_sample,
    t_transfer,
)
from repro.hardware.memory import (
    MemoryBreakdown,
    gamma_cache,
    gamma_model,
    gamma_runtime,
)
from repro.hardware.specs import (
    PLATFORMS,
    DeviceSpec,
    HostSpec,
    LinkSpec,
    Platform,
    get_platform,
)

__all__ = [
    "CACHE_POLICIES",
    "CacheStats",
    "DeviceCache",
    "EnergyBreakdown",
    "EnergyModel",
    "FLOAT_BYTES",
    "ModelCosting",
    "model_costing",
    "batch_time",
    "t_compute",
    "t_replace",
    "t_sample",
    "t_transfer",
    "MemoryBreakdown",
    "gamma_model",
    "gamma_cache",
    "gamma_runtime",
    "PLATFORMS",
    "HostSpec",
    "DeviceSpec",
    "LinkSpec",
    "Platform",
    "get_platform",
]
