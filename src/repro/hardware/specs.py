"""Hardware specifications: the "Hardware Info." inputs of Fig. 4.

The paper trains on real CPU-GPU platforms (RTX 4090, A100, M90) linked by
PCIe.  We replace the physical machines with parametric specifications that
drive the analytic cost model (Eqs. 4-8) — see the substitution table in
DESIGN.md.  Numbers are public datasheet values; ``gather_bandwidth`` models
the *effective* host-side feature-gather + PCIe pipeline, which in measured
GNN systems is far below the raw link rate because feature rows are scattered
in host DRAM (the reason PaGraph-style caching pays off at all).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError

__all__ = ["HostSpec", "DeviceSpec", "LinkSpec", "Platform", "PLATFORMS", "get_platform"]

GIB = 1024**3


@dataclass(frozen=True)
class HostSpec:
    """General-purpose platform executing sampling and file I/O (Algo. 1)."""

    name: str
    cores: int
    #: vertices the sampler can expand per second per core
    sample_rate_vps: float
    #: per-batch fixed overhead of launching a sampling task (seconds)
    sample_overhead_s: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.sample_rate_vps <= 0:
            raise HardwareError("host cores and sample rate must be positive")


@dataclass(frozen=True)
class DeviceSpec:
    """Dedicated platform executing aggregate/combine (GPU-like)."""

    name: str
    memory_bytes: int
    fp32_tflops: float
    mem_bandwidth_gbps: float
    #: fixed cost per kernel launch (seconds); batches issue several kernels
    kernel_overhead_s: float

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise HardwareError("device memory must be positive")
        if self.fp32_tflops <= 0 or self.mem_bandwidth_gbps <= 0:
            raise HardwareError("device throughput values must be positive")

    @property
    def flops_per_s(self) -> float:
        return self.fp32_tflops * 1e12

    @property
    def bytes_per_s(self) -> float:
        return self.mem_bandwidth_gbps * 1e9


@dataclass(frozen=True)
class LinkSpec:
    """Host-device interconnect (PCIe/DMA)."""

    name: str
    #: raw link bandwidth (GB/s)
    pcie_bandwidth_gbps: float
    #: effective bandwidth of gathering scattered feature rows on the host
    #: and staging them for DMA (GB/s); the practical transfer bottleneck
    gather_bandwidth_gbps: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.pcie_bandwidth_gbps <= 0 or self.gather_bandwidth_gbps <= 0:
            raise HardwareError("link bandwidths must be positive")

    @property
    def effective_bytes_per_s(self) -> float:
        """Serial gather + DMA pipeline rate."""
        raw = self.pcie_bandwidth_gbps * 1e9
        gather = self.gather_bandwidth_gbps * 1e9
        return 1.0 / (1.0 / raw + 1.0 / gather)


@dataclass(frozen=True)
class Platform:
    """A heterogeneous training platform: host + device + link."""

    name: str
    host: HostSpec
    device: DeviceSpec
    link: LinkSpec

    def as_features(self) -> list[float]:
        """Numeric encoding for black-box estimator components."""
        return [
            float(self.host.cores),
            self.host.sample_rate_vps,
            float(self.device.memory_bytes),
            self.device.fp32_tflops,
            self.device.mem_bandwidth_gbps,
            self.link.effective_bytes_per_s,
        ]


_XEON = HostSpec(
    name="xeon-8358", cores=32, sample_rate_vps=8.0e6, sample_overhead_s=1.0e-4
)

PLATFORMS: dict[str, Platform] = {
    "rtx4090": Platform(
        name="rtx4090",
        host=_XEON,
        device=DeviceSpec(
            name="RTX 4090",
            memory_bytes=24 * GIB,
            fp32_tflops=82.6,
            mem_bandwidth_gbps=1008.0,
            kernel_overhead_s=8.0e-6,
        ),
        link=LinkSpec(
            name="PCIe4 x16",
            pcie_bandwidth_gbps=32.0,
            gather_bandwidth_gbps=0.8,
            latency_s=1.0e-5,
        ),
    ),
    "a100": Platform(
        name="a100",
        host=_XEON,
        device=DeviceSpec(
            name="A100-40G",
            memory_bytes=40 * GIB,
            fp32_tflops=19.5,
            mem_bandwidth_gbps=1555.0,
            kernel_overhead_s=6.0e-6,
        ),
        link=LinkSpec(
            name="PCIe4 x16",
            pcie_bandwidth_gbps=32.0,
            gather_bandwidth_gbps=1.0,
            latency_s=1.0e-5,
        ),
    ),
    # "M90": the paper's edge-class device; modelled as a memory-constrained
    # mid-range accelerator on a narrower link.
    "m90": Platform(
        name="m90",
        host=HostSpec(
            name="edge-host", cores=8, sample_rate_vps=3.0e6, sample_overhead_s=2.0e-4
        ),
        device=DeviceSpec(
            name="M90",
            memory_bytes=8 * GIB,
            fp32_tflops=10.0,
            mem_bandwidth_gbps=400.0,
            kernel_overhead_s=1.5e-5,
        ),
        link=LinkSpec(
            name="PCIe3 x8",
            pcie_bandwidth_gbps=8.0,
            gather_bandwidth_gbps=0.4,
            latency_s=2.0e-5,
        ),
    ),
}


def get_platform(name: str) -> Platform:
    """Look up a platform by name (case-insensitive)."""
    key = name.lower()
    if key not in PLATFORMS:
        raise HardwareError(f"unknown platform {name!r}; known: {sorted(PLATFORMS)}")
    return PLATFORMS[key]
