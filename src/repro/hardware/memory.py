"""Device memory accounting — Eqs. 9-10.

``Γ = Γ_model + Γ_cache + Γ_runtime``: static model/optimizer state, the
feature cache, and the transient per-batch footprint (subgraph features,
activations for backprop, topology buffers).  The breakdown is reported per
epoch as a peak, exactly what the paper measures with the PyTorch profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.costmodel import FLOAT_BYTES

__all__ = ["MemoryBreakdown", "gamma_model", "gamma_cache", "gamma_runtime"]

#: activations kept for backward relative to a single forward pass
_ACTIVATION_FACTOR = 2.0
#: allocator floor present on any live device (bytes).  Real CUDA contexts
#: reserve hundreds of MiB; our datasets are ~20x scaled down (DESIGN.md), so
#: the floor is scaled too — otherwise it would mask every cache/activation
#: difference the paper's Γ comparisons are about.
RUNTIME_FLOOR_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class MemoryBreakdown:
    """Peak device memory split into the Eq. 9 terms (bytes)."""

    model: float
    cache: float
    runtime: float

    @property
    def total(self) -> float:
        return self.model + self.cache + self.runtime

    @property
    def total_gib(self) -> float:
        return self.total / 1024**3


def gamma_model(num_params: int, *, optimizer_state_factor: float = 2.0) -> float:
    """Γ_model ∝ |Φ|: weights + gradients + optimizer moments."""
    if num_params < 0:
        raise HardwareError("parameter count cannot be negative")
    copies = 1.0 + 1.0 + optimizer_state_factor  # weights + grads + state
    return num_params * FLOAT_BYTES * copies


def gamma_cache(capacity_nodes: int, n_attr: int) -> float:
    """Γ_cache = f(r|V| * n_attr): resident feature rows plus index."""
    if capacity_nodes < 0 or n_attr < 0:
        raise HardwareError("cache size terms cannot be negative")
    index_bytes = capacity_nodes * 8  # id -> slot map
    return capacity_nodes * n_attr * FLOAT_BYTES + index_bytes


def gamma_runtime(
    num_nodes: int,
    num_edges: int,
    *,
    n_attr: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int,
    heads: int = 1,
    attention: bool = False,
) -> float:
    """Γ_runtime = f(|V_i|, Φ): transient footprint of one mini-batch step.

    Covers input features, per-layer activations retained for backward,
    edge-level attention buffers (GAT) and CSR topology of the subgraph.
    """
    if num_nodes < 0 or num_edges < 0:
        raise HardwareError("subgraph size terms cannot be negative")
    features = num_nodes * n_attr * FLOAT_BYTES
    hidden_units = num_nodes * hidden_dim * max(num_layers - 1, 0)
    if attention:
        hidden_units *= heads
        edge_buffers = num_edges * heads * 3 * FLOAT_BYTES  # logits/att/grads
    else:
        edge_buffers = 0.0
    activations = (hidden_units + num_nodes * out_dim) * FLOAT_BYTES
    topology = (num_edges + num_nodes + 1) * 8  # int64 CSR on device
    return (
        RUNTIME_FLOOR_BYTES
        + features
        + _ACTIVATION_FACTOR * activations
        + edge_buffers
        + topology
    )
