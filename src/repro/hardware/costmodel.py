"""Analytic time cost model — the white-box half of Eqs. 4-8.

Each ``f_*`` of the paper becomes an explicit function of the mini-batch
quantities the runtime measures (``|V_i|``, ``|E_i|``, cache hit counts) and
the platform specification.  ``t_compute`` uses a roofline: a batch is
compute-bound or memory-bound depending on the model's arithmetic intensity,
which is what makes GAT-on-arxiv nearly cache-insensitive (device-side bound)
while SAGE-on-products is transfer-bound — the Table 1 shape.

The same functions serve two roles:

* driven by *measured* per-batch quantities → the simulated ground truth the
  runtime backend reports;
* driven by *predicted* quantities (E[|V_i|], predicted hit rate) → the
  white-box prior inside the gray-box estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.specs import Platform

__all__ = [
    "ModelCosting",
    "model_costing",
    "t_sample",
    "t_transfer",
    "t_replace",
    "t_compute",
    "batch_time",
    "FLOAT_BYTES",
]

FLOAT_BYTES = 4  # features/activations are fp32 on device
#: forward + backward traffic relative to forward-only
_BACKWARD_FACTOR = 3.0
#: edge-parallel reductions hit DRAM with scattered accesses; effective
#: traffic is several times the nominal payload.  Attention (per-edge
#: softmax over irregular segments) is markedly worse than sum/mean spmm —
#: this is what makes GAT device-bound and hence cache-insensitive (Table 1).
_SCATTER_INEFFICIENCY = {"gcn": 2.0, "sage": 2.0, "gat": 6.0}


@dataclass(frozen=True)
class ModelCosting:
    """Per-batch FLOP and DRAM-byte counts of one training step."""

    flops: float
    bytes_moved: float
    kernel_launches: int


def model_costing(
    arch: str,
    num_nodes: int,
    num_edges: int,
    *,
    in_dim: int,
    hidden_dim: int,
    out_dim: int,
    num_layers: int,
    heads: int = 4,
) -> ModelCosting:
    """FLOPs / bytes / kernels of one forward+backward over a mini-batch.

    Aggregate traffic scales with ``|E_i| * d`` (edge-parallel reduction);
    combine compute scales with ``|V_i| * d_in * d_out`` (GEMM).  GAT adds
    per-edge attention terms with ``heads`` multiplicity.
    """
    if arch not in ("gcn", "sage", "gat"):
        raise HardwareError(f"unknown architecture {arch!r}")
    v, e = float(num_nodes), float(num_edges + num_nodes)  # + self loops
    dims_in = [in_dim] + [hidden_dim] * (num_layers - 1)
    dims_out = [hidden_dim] * (num_layers - 1) + [out_dim]
    scatter = _SCATTER_INEFFICIENCY[arch]

    flops = 0.0
    bytes_moved = 0.0
    kernels = 0
    for layer, (d_in, d_out) in enumerate(zip(dims_in, dims_out, strict=True)):
        if arch == "gat":
            if layer > 0:
                d_in *= heads  # concatenated heads widen hidden inputs
            # Projection GEMM to heads*d_out, per-edge attention (dot, softmax,
            # weighting) and edge-parallel aggregation per head.
            flops += 2.0 * v * d_in * d_out * heads
            flops += e * heads * (4.0 * d_out + 10.0)
            bytes_moved += FLOAT_BYTES * (
                v * (d_in + heads * d_out)
                + scatter * e * heads * (d_out + 2.0)
            )
            kernels += 6
        else:
            mults = 2.0 if arch == "sage" else 1.0  # SAGE: self + neighbour GEMMs
            flops += 2.0 * v * d_in * d_out * mults
            flops += 2.0 * e * d_in  # aggregation adds
            bytes_moved += FLOAT_BYTES * (
                scatter * e * d_in + v * (d_in + d_out) * mults
            )
            kernels += 3
    # Loss + optimizer step are v*out_dim-scale; folded into a small constant.
    flops += 6.0 * v * out_dim
    bytes_moved += FLOAT_BYTES * 2.0 * v * out_dim
    kernels += 2
    return ModelCosting(
        flops=flops * _BACKWARD_FACTOR,
        bytes_moved=bytes_moved * _BACKWARD_FACTOR,
        kernel_launches=kernels,
    )


def t_sample(
    num_expanded: int, platform: Platform, *, edges_touched: int = 0
) -> float:
    """Eq. 7: host sampling time for ``|V_i| - |B0|`` expanded vertices.

    ``edges_touched`` accounts for scanning adjacency of frontier vertices
    (each scanned edge costs a fraction of a vertex expansion).
    """
    if num_expanded < 0:
        raise HardwareError("expanded vertex count cannot be negative")
    host = platform.host
    effective = num_expanded + 0.1 * max(edges_touched, 0)
    parallel_rate = host.sample_rate_vps * min(host.cores, 8) ** 0.5
    return host.sample_overhead_s + effective / parallel_rate


def t_transfer(num_missed: int, n_attr: int, platform: Platform) -> float:
    """Eq. 6: move ``n_attr * |V_i| * (1 - hit)`` feature volume to device."""
    if num_missed < 0:
        raise HardwareError("missed vertex count cannot be negative")
    if num_missed == 0:
        return 0.0
    volume = num_missed * n_attr * FLOAT_BYTES
    link = platform.link
    return link.latency_s + volume / link.effective_bytes_per_s


def t_replace(
    num_admitted: int, num_evicted: int, n_attr: int, platform: Platform
) -> float:
    """Eq. 5: cache-update overhead of replacing stale rows on device."""
    if num_admitted < 0 or num_evicted < 0:
        raise HardwareError("cache update counts cannot be negative")
    rows = num_admitted + num_evicted
    if rows == 0:
        return 0.0
    volume = rows * n_attr * FLOAT_BYTES
    device = platform.device
    # Device-side row scatter plus index bookkeeping; ~3x raw copy cost.
    return device.kernel_overhead_s + 3.0 * volume / device.bytes_per_s


def t_compute(costing: ModelCosting, platform: Platform) -> float:
    """Eq. 8 as a roofline: max(compute-bound, memory-bound) + launch cost."""
    device = platform.device
    compute_bound = costing.flops / device.flops_per_s
    memory_bound = costing.bytes_moved / device.bytes_per_s
    return (
        costing.kernel_launches * device.kernel_overhead_s
        + max(compute_bound, memory_bound)
    )


def batch_time(
    sample_s: float, transfer_s: float, replace_s: float, compute_s: float
) -> float:
    """Eq. 4 (per batch): host and device pipelines overlap; the slower wins."""
    return max(sample_s + transfer_s, replace_s + compute_s)
