"""Device feature cache — the transmission-strategy abstraction (Sec. 3.2).

Redundant device memory stores feature rows of hot vertices so they need no
host-device transfer.  The paper abstracts every transmission strategy as:
lookup which part of the mini-batch is cached, transfer the rest, then update
the cache per policy.  :class:`DeviceCache` implements that contract with the
policies of Fig. 3:

* ``static`` — PaGraph: prefilled with the highest-priority (degree) vertices
  once, never updated (``cache update policy = None``);
* ``fifo`` / ``lru`` — dynamic policies that admit missed vertices and evict
  the oldest / least-recently-used rows;
* ``none`` — no cache (PyG baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareError

__all__ = ["CacheStats", "DeviceCache", "CACHE_POLICIES"]

CACHE_POLICIES = ("none", "static", "fifo", "lru")


@dataclass
class CacheStats:
    """Running counters; ``hit_rate`` is the ``hit`` of Eqs. 5-6."""

    lookups: int = 0
    hits: int = 0
    admitted: int = 0
    evicted: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DeviceCache:
    """Feature-row cache of ``capacity`` vertices with a pluggable policy."""

    def __init__(
        self,
        num_nodes: int,
        capacity: int,
        *,
        policy: str = "static",
        priority: np.ndarray | None = None,
    ) -> None:
        if policy not in CACHE_POLICIES:
            raise HardwareError(f"unknown cache policy {policy!r}; known: {CACHE_POLICIES}")
        if capacity < 0 or capacity > num_nodes:
            raise HardwareError("capacity must lie in [0, num_nodes]")
        if policy != "none" and capacity == 0:
            policy = "none"
        self.num_nodes = num_nodes
        self.capacity = int(capacity)
        self.policy = policy
        self.stats = CacheStats()
        self._resident = np.zeros(num_nodes, dtype=bool)
        # LRU/FIFO bookkeeping: insertion or last-use tick per resident vertex.
        self._tick = 0
        self._stamp = np.full(num_nodes, -1, dtype=np.int64)
        self._count = 0
        if policy == "static":
            if priority is None:
                raise HardwareError("static policy requires a priority order")
            head = np.asarray(priority, dtype=np.int64)[: self.capacity]
            self._resident[head] = True
            self._count = head.size

    # ---------------------------------------------------------------- queries
    @property
    def occupancy(self) -> int:
        return self._count

    def hot_nodes(self) -> np.ndarray:
        """Currently resident vertex ids (the biased sampler's hot set)."""
        return np.nonzero(self._resident)[0]

    def is_resident(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean residency mask without touching statistics."""
        return self._resident[np.asarray(nodes, dtype=np.int64)]

    # --------------------------------------------------------------- protocol
    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Hit mask for a mini-batch; updates hit statistics and LRU stamps."""
        nodes = np.asarray(nodes, dtype=np.int64)
        mask = self._resident[nodes]
        self.stats.lookups += int(nodes.size)
        self.stats.hits += int(mask.sum())
        if self.policy == "lru" and nodes.size:
            self._tick += 1
            self._stamp[nodes[mask]] = self._tick
        return mask

    def update(self, missed: np.ndarray) -> tuple[int, int]:
        """Admit missed vertices per policy; returns ``(admitted, evicted)``.

        ``static`` and ``none`` never change contents (PaGraph's disabled
        update policy); dynamic policies fill free slots first and then evict
        the stalest rows.
        """
        if self.policy in ("none", "static") or self.capacity == 0:
            return 0, 0
        missed = np.unique(np.asarray(missed, dtype=np.int64))
        missed = missed[~self._resident[missed]]
        if missed.size == 0:
            return 0, 0
        self._tick += 1
        if missed.size > self.capacity:
            # Admit only the newest capacity-many; the rest would evict
            # each other within the same batch.
            missed = missed[: self.capacity]

        free = self.capacity - self._count
        evict_needed = max(0, missed.size - free)
        evicted = 0
        if evict_needed:
            resident_ids = np.nonzero(self._resident)[0]
            stamps = self._stamp[resident_ids]
            victims = resident_ids[np.argsort(stamps, kind="stable")[:evict_needed]]
            self._resident[victims] = False
            self._stamp[victims] = -1
            self._count -= victims.size
            evicted = int(victims.size)

        self._resident[missed] = True
        self._stamp[missed] = self._tick
        self._count += int(missed.size)
        self.stats.admitted += int(missed.size)
        self.stats.evicted += evicted
        return int(missed.size), evicted

    def reset_stats(self) -> None:
        """Zero the counters (contents preserved)."""
        self.stats = CacheStats()
