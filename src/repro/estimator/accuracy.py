"""Accuracy-change estimation — Eq. 11.

``δAcc = f_accuracy(Deg(G_i), Deg(G), |V_i|)``: the paper models accuracy
relative to unbiased mini-batch training from the degree distribution of the
sampled batches vs. the full graph, on the assumption that batches focusing
on important (high-degree) vertices learn more.  As the paper concedes, this
component "is still more like a black box": we expose exactly the Eq. 11
inputs plus the sampler knobs that shape them, and learn the mapping with a
forest.
"""

from __future__ import annotations

import numpy as np

from repro.config.settings import SAMPLER_NAMES, TrainingConfig
from repro.errors import EstimatorError
from repro.estimator.blackbox import RandomForestRegressor
from repro.graphs.profiling import GraphProfile

__all__ = ["AccuracyModel", "accuracy_features"]


def accuracy_features(
    config: TrainingConfig,
    profile: GraphProfile,
    batch_nodes: float,
    batch_edges: float,
) -> np.ndarray:
    """Eq. 11 inputs: batch degree stats vs graph degree stats, |V_i|, knobs."""
    batch_degree = batch_edges / max(batch_nodes, 1.0)
    sampler_onehot = [1.0 if config.sampler == s else 0.0 for s in SAMPLER_NAMES]
    return np.array(
        [
            batch_degree,  # Deg(G_i)
            profile.avg_degree,  # Deg(G)
            batch_degree / max(profile.avg_degree, 1e-9),
            np.log1p(batch_nodes),  # |V_i|
            batch_nodes / max(profile.num_nodes, 1),
            config.bias_rate,
            float(config.batch_size),
            float(sum(config.hop_list)),
            float(config.hidden_channels),
            config.dropout,
            float(profile.num_classes),
            getattr(profile, "homophily", 0.0),
            getattr(profile, "separability", 0.0),
            *sampler_onehot,
        ],
        dtype=np.float64,
    )


class AccuracyModel:
    """Forest over Eq. 11 features predicting final task accuracy."""

    def __init__(self, *, n_estimators: int = 20, random_state: int = 0) -> None:
        self._forest = RandomForestRegressor(
            n_estimators=n_estimators,
            max_depth=6,
            min_samples_leaf=3,
            random_state=random_state,
        )
        self._fitted = False

    def fit(self, records, sample_weight=None) -> "AccuracyModel":
        """Fit from :class:`~repro.runtime.profiler.GroundTruthRecord` list."""
        if not records:
            raise EstimatorError("no records to fit on")
        x = np.stack(
            [
                accuracy_features(
                    r.config, r.graph_profile, r.mean_batch_nodes, r.mean_batch_edges
                )
                for r in records
            ]
        )
        y = np.array([r.accuracy for r in records])
        self._forest.fit(x, y, sample_weight=sample_weight)
        self._fitted = True
        return self

    def predict(
        self,
        configs: list[TrainingConfig],
        profiles: list[GraphProfile],
        batch_nodes: np.ndarray,
        batch_edges: np.ndarray,
    ) -> np.ndarray:
        """Predict accuracy given (predicted) batch statistics."""
        if not self._fitted:
            raise EstimatorError("predict() before fit()")
        x = np.stack(
            [
                accuracy_features(c, p, v, e)
                for c, p, v, e in zip(configs, profiles, batch_nodes, batch_edges, strict=True)
            ]
        )
        return np.clip(self._forest.predict(x), 0.0, 1.0)
