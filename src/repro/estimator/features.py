"""Feature encodings shared by every estimator component.

The estimator's inputs (Fig. 4) are the candidate's reconfigurable settings
plus the pre-determined settings — graph profile and hardware.  This module
turns a ``(config, graph_profile, platform)`` triple into a flat vector with
stable column names so trees trained on one dataset transfer to another
(leave-one-dataset-out protocol of Sec. 4.1).
"""

from __future__ import annotations

import numpy as np

from repro.config.settings import TrainingConfig
from repro.graphs.profiling import GraphProfile
from repro.hardware.specs import Platform

__all__ = ["encode", "encode_names", "encode_records"]


def encode(
    config: TrainingConfig, profile: GraphProfile, platform: Platform
) -> np.ndarray:
    """Full candidate + pre-determined-settings feature vector.

    Non-finite entries (a degenerate graph can yield an infinite power-law
    exponent) are clamped so tree thresholds stay finite.
    """
    raw = np.concatenate(
        [
            config.as_features(),
            profile.as_features(),
            np.asarray(platform.as_features(), dtype=np.float64),
        ]
    )
    return np.nan_to_num(raw, nan=0.0, posinf=1e12, neginf=-1e12)


def encode_names() -> list[str]:
    """Column names aligned with :func:`encode`."""
    return (
        TrainingConfig.feature_names()
        + [
            "graph_nodes",
            "graph_edges",
            "graph_feature_dim",
            "graph_avg_degree",
            "graph_max_degree",
            "graph_degree_std",
            "graph_degree_skew",
            "graph_powerlaw_exp",
            "graph_homophily",
            "graph_separability",
        ]
        + [
            "host_cores",
            "host_sample_rate",
            "device_memory",
            "device_tflops",
            "device_bandwidth",
            "link_effective_bw",
        ]
    )


def encode_records(records) -> np.ndarray:
    """Stack :class:`~repro.runtime.profiler.GroundTruthRecord` features."""
    return np.stack([r.features() for r in records])
