"""Black-box regressors: CART decision tree and a bagged random forest.

The paper's estimator uses "black-box models based on machine learning" for
the key intermediate variables, and Fig. 5(b) names Decision Tree Regression
as the pure black-box baseline.  scikit-learn is unavailable offline, so this
module implements CART (variance-reduction splits) and bootstrap-aggregated
forests over numpy directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimatorError

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]


@dataclass
class _Node:
    """One tree node; leaves carry a prediction, splits carry children."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    x: np.ndarray,
    y: np.ndarray,
    feature_ids: np.ndarray,
    min_leaf: int,
    w: np.ndarray | None = None,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, sse) over candidate features, or None.

    Uses the classic sorted prefix-sum scan: for each candidate feature the
    children's SSE at every cut position is computed in O(n) after sorting.
    With sample weights the criterion becomes weighted SSE
    (``Σw·y² − (Σw·y)²/Σw`` per child); the ``min_leaf`` constraint stays
    count-based so weights shape the split score, not the tree's minimum
    support.  ``w=None`` takes the exact unweighted code path.
    """
    n = y.size
    best: tuple[int, float, float] | None = None
    if w is None:
        y_sum = y.sum()
        y_sq = (y**2).sum()
        parent_sse = y_sq - y_sum**2 / n
    else:
        y_sum = (w * y).sum()
        y_sq = (w * y**2).sum()
        parent_sse = y_sq - y_sum**2 / w.sum()
    for f in feature_ids:
        order = np.argsort(x[:, f], kind="stable")
        xs = x[order, f]
        ys = y[order]
        # Valid cut after position i (1-based left size i+1).
        left_n = np.arange(1, n)
        valid = (xs[1:] != xs[:-1]) & (left_n >= min_leaf) & (n - left_n >= min_leaf)
        if not np.any(valid):
            continue
        if w is None:
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            ls, lq = csum[:-1], csq[:-1]
            rs, rq = y_sum - ls, y_sq - lq
            sse = (lq - ls**2 / left_n) + (rq - rs**2 / (n - left_n))
        else:
            ws = w[order]
            cw = np.cumsum(ws)
            csum = np.cumsum(ws * ys)
            csq = np.cumsum(ws * ys**2)
            lw, ls, lq = cw[:-1], csum[:-1], csq[:-1]
            rw, rs, rq = cw[-1] - lw, y_sum - ls, y_sq - lq
            valid = valid & (lw > 0.0) & (rw > 0.0)
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                sse = (lq - ls**2 / lw) + (rq - rs**2 / rw)
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        if sse[i] < parent_sse - 1e-12 and np.isfinite(sse[i]):
            threshold = 0.5 * (xs[i] + xs[i + 1])
            if best is None or sse[i] < best[2]:
                best = (int(f), float(threshold), float(sse[i]))
    return best


class DecisionTreeRegressor:
    """CART regression tree minimising within-leaf variance."""

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        random_state: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise EstimatorError("max_depth must be at least 1")
        if min_samples_leaf < 1:
            raise EstimatorError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self._root: _Node | None = None
        self.n_features_: int | None = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != y.size:
            raise EstimatorError("x must be (n_samples, n_features) matching y")
        if y.size == 0:
            raise EstimatorError("cannot fit on an empty dataset")
        w = None
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.size != y.size:
                raise EstimatorError("sample_weight must match y")
            if not np.all(np.isfinite(w)) or np.any(w < 0.0) or w.sum() <= 0.0:
                raise EstimatorError(
                    "sample_weight must be finite, non-negative, not all zero"
                )
        self.n_features_ = x.shape[1]
        self._root = self._grow(x, y, depth=0, w=w)
        return self

    def _grow(
        self,
        x: np.ndarray,
        y: np.ndarray,
        depth: int,
        w: np.ndarray | None = None,
    ) -> _Node:
        if w is None:
            node = _Node(value=float(y.mean()))
        elif w.sum() > 0.0:
            node = _Node(value=float(np.average(y, weights=w)))
        else:  # all-zero-weight child: only the plain mean is defined
            node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        if np.allclose(y, y[0]):
            return node
        n_feat = x.shape[1]
        if self.max_features is not None and self.max_features < n_feat:
            feature_ids = self._rng.choice(n_feat, self.max_features, replace=False)
        else:
            feature_ids = np.arange(n_feat)
        split = _best_split(x, y, feature_ids, self.min_samples_leaf, w)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        # Non-finite feature values (e.g. an infinite power-law exponent on a
        # degenerate graph) can push every sample to one side; fall back to a
        # leaf rather than recurse on an empty child.
        if not np.isfinite(threshold) or mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, None if w is None else w[mask])
        node.right = self._grow(
            x[~mask], y[~mask], depth + 1, None if w is None else w[~mask]
        )
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise EstimatorError("predict() before fit()")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != self.n_features_:
            raise EstimatorError(
                f"expected {self.n_features_} features, got {x.shape[1]}"
            )
        out = np.empty(x.shape[0], dtype=np.float64)
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise EstimatorError("depth() before fit()")
        return walk(self._root)


class RandomForestRegressor:
    """Bootstrap-aggregated CART trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 30,
        *,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: float = 0.7,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise EstimatorError("need at least one tree")
        if not 0.0 < max_features <= 1.0:
            raise EstimatorError("max_features must lie in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._trees: list[DecisionTreeRegressor] = []

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != y.size:
            raise EstimatorError("x must be (n_samples, n_features) matching y")
        w = None
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.size != y.size:
                raise EstimatorError("sample_weight must match y")
        rng = np.random.default_rng(self.random_state)
        n = y.size
        k = max(1, int(round(self.max_features * x.shape[1])))
        self._trees = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=k,
                random_state=self.random_state + 1000 + t,
            )
            # The bootstrap draw consumes the rng identically either way;
            # weights just ride along with their drawn rows.
            if w is None:
                tree.fit(x[idx], y[idx])
            else:
                tree.fit(x[idx], y[idx], sample_weight=w[idx])
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise EstimatorError("predict() before fit()")
        preds = np.stack([tree.predict(x) for tree in self._trees])
        return preds.mean(axis=0)
