"""The gray-box performance estimator (paper Sec. 3.3, Fig. 4).

White box: the analytic skeleton of Eqs. 4-10 — phase times from the platform
cost model, memory from the Eq. 9 decomposition, epoch time from the Eq. 4
host/device overlap — evaluated on *predicted* intermediate variables.

Black box: small learned models for exactly the quantities the paper calls
"key intermediate variables": the mini-batch size E[|V_i|] (Eq. 12 wrapper),
the batch edge count, the cache hit rate, per-phase multiplicative residuals
(the learnable parts of ``f_sample``/``f_transfer``/``f_replace``/
``f_compute``), and the accuracy model of Eq. 11.

:class:`BlackBoxEstimator` maps raw features straight to the targets — the
baseline the ablation bench compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.settings import TrainingConfig
from repro.errors import EstimatorError
from repro.estimator.accuracy import AccuracyModel
from repro.estimator.batchsize import BlackBoxBatchSizeModel, GrayBoxBatchSizeModel
from repro.estimator.blackbox import DecisionTreeRegressor, RandomForestRegressor
from repro.estimator.features import encode
from repro.graphs.profiling import GraphProfile
from repro.hardware.costmodel import (
    batch_time,
    model_costing,
    t_compute,
    t_replace,
    t_sample,
    t_transfer,
)
from repro.hardware.memory import gamma_cache, gamma_model, gamma_runtime
from repro.hardware.specs import Platform, get_platform
from repro.nn.models import count_parameters

__all__ = ["PredictedPerf", "GrayBoxEstimator", "BlackBoxEstimator"]


@dataclass(frozen=True)
class PredictedPerf:
    """Estimator output for one candidate: ``Perf(T, Γ, Acc)``."""

    time_s: float
    memory_bytes: float
    accuracy: float

    def objective_vector(self) -> np.ndarray:
        """(T, Γ, -Acc), all minimised — mirrors PerfReport."""
        return np.array(
            [self.time_s, self.memory_bytes, -self.accuracy], dtype=np.float64
        )


def _hit_features(config: TrainingConfig, profile: GraphProfile) -> np.ndarray:
    """Inputs explaining the average cache hit rate."""
    policies = ("none", "static", "fifo", "lru")
    return np.array(
        [
            config.cache_ratio,
            config.bias_rate,
            1.0 if config.batch_order == "partition" else 0.0,
            config.batch_size / max(profile.num_nodes, 1),
            profile.degree_skew,
            profile.avg_degree,
            *[1.0 if config.cache_policy == p else 0.0 for p in policies],
            1.0 if config.sampler == "biased" else 0.0,
            1.0 if config.sampler == "saint" else 0.0,
        ],
        dtype=np.float64,
    )


class GrayBoxEstimator:
    """Analytic Eqs. 4-10 driven by learned intermediate variables."""

    _PHASES = ("sample", "transfer", "replace", "compute")

    def __init__(
        self,
        *,
        train_frac: float = 0.6,
        use_residuals: bool = True,
        random_state: int = 0,
    ) -> None:
        self.train_frac = train_frac
        self.use_residuals = use_residuals
        self._batch_model = GrayBoxBatchSizeModel(random_state=random_state)
        self._edge_model = DecisionTreeRegressor(
            max_depth=6, min_samples_leaf=3, random_state=random_state + 1
        )
        self._hit_model = DecisionTreeRegressor(
            max_depth=6, min_samples_leaf=3, random_state=random_state + 2
        )
        self._residual_models: dict[str, DecisionTreeRegressor] = {
            phase: DecisionTreeRegressor(
                max_depth=4, min_samples_leaf=4, random_state=random_state + 3 + i
            )
            for i, phase in enumerate(self._PHASES)
        }
        self._memory_residual = DecisionTreeRegressor(
            max_depth=4, min_samples_leaf=4, random_state=random_state + 9
        )
        self._acc_model = AccuracyModel(random_state=random_state + 10)
        # The estimator is fitted per architecture (records share one arch);
        # the cost/memory analytics read it when evaluating candidates.
        self._arch = "sage"
        self._fitted = False

    # -------------------------------------------------------------- analytics
    def _analytic_phases(
        self,
        config: TrainingConfig,
        profile: GraphProfile,
        platform: Platform,
        v_hat: float,
        e_hat: float,
        hit_hat: float,
    ) -> dict[str, float]:
        """White-box per-batch phase times at the predicted intermediates."""
        missed = v_hat * (1.0 - hit_hat)
        # Dynamic policies admit roughly what they miss; static admits none.
        dynamic = config.cache_policy in ("fifo", "lru")
        admitted = missed if dynamic else 0.0
        costing = model_costing(
            self._arch,
            int(v_hat),
            int(e_hat),
            in_dim=profile.feature_dim,
            hidden_dim=config.hidden_channels,
            out_dim=max(profile.num_classes, 2),
            num_layers=config.num_layers,
            heads=config.heads,
        )
        return {
            "sample": t_sample(
                max(int(v_hat) - config.batch_size, 0),
                platform,
                edges_touched=int(e_hat),
            ),
            "transfer": t_transfer(int(missed), profile.feature_dim, platform),
            "replace": t_replace(
                int(admitted), int(admitted), profile.feature_dim, platform
            ),
            "compute": t_compute(costing, platform),
        }

    def _num_iters(self, config: TrainingConfig, profile: GraphProfile) -> int:
        train_nodes = int(self.train_frac * profile.num_nodes)
        return max(1, -(-train_nodes // config.batch_size))

    # ------------------------------------------------------------------- fit
    def fit(self, records, sample_weight=None) -> "GrayBoxEstimator":
        """Fit every learned component from ground-truth records.

        ``sample_weight`` (optional, aligned with ``records``) discounts
        each record in every learned component — the transfer warm-start
        path passes the target task's records at weight 1 followed by
        similarity-decayed donor records.  ``None`` is bit-identical to
        the historical unweighted fit.
        """
        if len(records) < 8:
            raise EstimatorError("need at least 8 ground-truth records")
        w = None
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.size != len(records):
                raise EstimatorError("sample_weight must align with records")
        configs = [r.config for r in records]
        profiles = [r.graph_profile for r in records]
        self._arch = records[0].task.arch

        measured_v = np.array([r.mean_batch_nodes for r in records])
        measured_e = np.array([r.mean_batch_edges for r in records])
        measured_hit = np.array([r.hit_rate for r in records])

        self._batch_model.fit(configs, profiles, measured_v, sample_weight=w)
        # Edges per node regress on degree/config features (log-ratio).
        xe = np.stack(
            [self._edge_features(c, p) for c, p in zip(configs, profiles, strict=True)]
        )
        self._edge_model.fit(
            xe, np.log(measured_e / np.maximum(measured_v, 1.0)), sample_weight=w
        )
        self._hit_model.fit(
            np.stack([_hit_features(c, p) for c, p in zip(configs, profiles, strict=True)]),
            measured_hit,
            sample_weight=w,
        )

        if self.use_residuals:
            self._fit_residuals(records, configs, profiles, w)
        self._acc_model.fit(records, sample_weight=w)
        self._fitted = True
        return self

    @staticmethod
    def _edge_features(config: TrainingConfig, profile: GraphProfile) -> np.ndarray:
        return np.array(
            [
                profile.avg_degree,
                profile.degree_skew,
                profile.powerlaw_exponent,
                float(sum(config.hop_list)),
                float(len(config.hop_list)),
                config.bias_rate,
                config.batch_size / max(profile.num_nodes, 1),
                1.0 if config.sampler == "saint" else 0.0,
                1.0 if config.sampler == "fastgcn" else 0.0,
            ],
            dtype=np.float64,
        )

    def _fit_residuals(self, records, configs, profiles, w=None) -> None:
        """Learn log-ratio corrections measured/analytic per phase."""
        v_hat = self._batch_model.predict(configs, profiles)
        e_hat = v_hat * np.exp(
            self._edge_model.predict(
                np.stack([self._edge_features(c, p) for c, p in zip(configs, profiles, strict=True)])
            )
        )
        hit_hat = np.clip(
            self._hit_model.predict(
                np.stack([_hit_features(c, p) for c, p in zip(configs, profiles, strict=True)])
            ),
            0.0,
            1.0,
        )
        feats = np.stack(
            [
                encode(r.config, r.graph_profile, get_platform(r.task.platform))
                for r in records
            ]
        )
        measured = {
            "sample": np.array([r.t_sample for r in records]),
            "transfer": np.array([r.t_transfer for r in records]),
            "replace": np.array([r.t_replace for r in records]),
            "compute": np.array([r.t_compute for r in records]),
        }
        floor = 1e-7
        for phase, model in self._residual_models.items():
            analytic = np.array(
                [
                    self._analytic_phases(
                        c, p, get_platform(r.task.platform), v, e, h
                    )[phase]
                    for c, p, r, v, e, h in zip(
                        configs, profiles, records, v_hat, e_hat, hit_hat,
                        strict=True,
                    )
                ]
            )
            ratio = np.log(
                np.maximum(measured[phase], floor) / np.maximum(analytic, floor)
            )
            model.fit(feats, ratio, sample_weight=w)

        analytic_mem = np.array(
            [
                self._analytic_memory(c, p, v, e)
                for c, p, v, e in zip(configs, profiles, v_hat, e_hat, strict=True)
            ]
        )
        measured_mem = np.array([r.memory_bytes for r in records])
        self._memory_residual.fit(
            feats, np.log(measured_mem / analytic_mem), sample_weight=w
        )

    def _analytic_memory(
        self,
        config: TrainingConfig,
        profile: GraphProfile,
        v_hat: float,
        e_hat: float,
    ) -> float:
        params = count_parameters(
            self._arch,
            profile.feature_dim,
            max(profile.num_classes, 2),
            hidden_channels=config.hidden_channels,
            num_layers=config.num_layers,
            heads=config.heads,
        )
        capacity = int(config.cache_ratio * profile.num_nodes)
        return (
            gamma_model(params)
            + gamma_cache(capacity, profile.feature_dim)
            + gamma_runtime(
                int(v_hat),
                int(e_hat),
                n_attr=profile.feature_dim,
                hidden_dim=config.hidden_channels,
                out_dim=max(profile.num_classes, 2),
                num_layers=config.num_layers,
                heads=config.heads,
                attention=self._arch == "gat",
            )
        )

    # --------------------------------------------------------------- predict
    def predict(
        self,
        configs: list[TrainingConfig],
        profiles: list[GraphProfile],
        platform: Platform | str = "rtx4090",
    ) -> list[PredictedPerf]:
        """Estimate ``Perf(T, Γ, Acc)`` for each candidate (no execution)."""
        if not self._fitted:
            raise EstimatorError("predict() before fit()")
        if isinstance(platform, str):
            platform = get_platform(platform)
        configs = [c.canonical() for c in configs]

        v_hat = self._batch_model.predict(configs, profiles)
        e_hat = v_hat * np.exp(
            self._edge_model.predict(
                np.stack([self._edge_features(c, p) for c, p in zip(configs, profiles, strict=True)])
            )
        )
        hit_hat = np.clip(
            self._hit_model.predict(
                np.stack([_hit_features(c, p) for c, p in zip(configs, profiles, strict=True)])
            ),
            0.0,
            1.0,
        )
        acc_hat = self._acc_model.predict(configs, profiles, v_hat, e_hat)

        feats = np.stack(
            [encode(c, p, platform) for c, p in zip(configs, profiles, strict=True)]
        )
        corrections = {
            phase: (
                np.exp(model.predict(feats))
                if self.use_residuals
                else np.ones(len(configs))
            )
            for phase, model in self._residual_models.items()
        }
        mem_corr = (
            np.exp(self._memory_residual.predict(feats))
            if self.use_residuals
            else np.ones(len(configs))
        )

        out: list[PredictedPerf] = []
        for i, (config, profile) in enumerate(zip(configs, profiles, strict=True)):
            phases = self._analytic_phases(
                config, profile, platform, v_hat[i], e_hat[i], hit_hat[i]
            )
            per_batch = batch_time(
                phases["sample"] * corrections["sample"][i],
                phases["transfer"] * corrections["transfer"][i],
                phases["replace"] * corrections["replace"][i],
                phases["compute"] * corrections["compute"][i],
            )
            time_s = self._num_iters(config, profile) * per_batch
            memory = self._analytic_memory(config, profile, v_hat[i], e_hat[i])
            out.append(
                PredictedPerf(
                    time_s=float(time_s),
                    memory_bytes=float(memory * mem_corr[i]),
                    accuracy=float(acc_hat[i]),
                )
            )
        return out

    # Convenience accessors used by benches/tests.
    def predict_batch_sizes(self, configs, profiles) -> np.ndarray:
        """E[|V_i|] predictions (Fig. 5a series)."""
        return self._batch_model.predict([c.canonical() for c in configs], profiles)


class BlackBoxEstimator:
    """Feature → target forests with no analytic structure (ablation baseline)."""

    def __init__(self, *, random_state: int = 0) -> None:
        self._models = {
            "time": RandomForestRegressor(
                n_estimators=20, max_depth=7, random_state=random_state
            ),
            "memory": RandomForestRegressor(
                n_estimators=20, max_depth=7, random_state=random_state + 1
            ),
            "accuracy": RandomForestRegressor(
                n_estimators=20, max_depth=7, random_state=random_state + 2
            ),
        }
        self._batch_model: BlackBoxBatchSizeModel | None = None
        self._fitted = False

    def fit(self, records, sample_weight=None) -> "BlackBoxEstimator":
        if len(records) < 8:
            raise EstimatorError("need at least 8 ground-truth records")
        w = None
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.size != len(records):
                raise EstimatorError("sample_weight must align with records")
        feats = np.stack([r.features() for r in records])
        self._models["time"].fit(
            feats, np.log(np.array([r.time_s for r in records])), sample_weight=w
        )
        self._models["memory"].fit(
            feats, np.log(np.array([r.memory_bytes for r in records])), sample_weight=w
        )
        self._models["accuracy"].fit(
            feats, np.array([r.accuracy for r in records]), sample_weight=w
        )
        self._batch_model = BlackBoxBatchSizeModel()
        self._batch_model.fit(
            [r.config for r in records],
            [r.graph_profile for r in records],
            np.array([r.mean_batch_nodes for r in records]),
            sample_weight=w,
        )
        self._fitted = True
        return self

    def predict(
        self,
        configs: list[TrainingConfig],
        profiles: list[GraphProfile],
        platform: Platform | str = "rtx4090",
    ) -> list[PredictedPerf]:
        if not self._fitted:
            raise EstimatorError("predict() before fit()")
        if isinstance(platform, str):
            platform = get_platform(platform)
        feats = np.stack(
            [encode(c.canonical(), p, platform) for c, p in zip(configs, profiles, strict=True)]
        )
        times = np.exp(self._models["time"].predict(feats))
        mems = np.exp(self._models["memory"].predict(feats))
        accs = np.clip(self._models["accuracy"].predict(feats), 0.0, 1.0)
        return [
            PredictedPerf(time_s=float(t), memory_bytes=float(m), accuracy=float(a))
            for t, m, a in zip(times, mems, accs, strict=True)
        ]

    def predict_batch_sizes(self, configs, profiles) -> np.ndarray:
        """|V_i| from the raw black-box tree (Fig. 5b series)."""
        if self._batch_model is None:
            raise EstimatorError("predict_batch_sizes() before fit()")
        return self._batch_model.predict(
            [c.canonical() for c in configs], profiles
        )
