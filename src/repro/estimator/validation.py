"""Estimator validation: metrics and the leave-one-dataset-out protocol.

Table 2 of the paper reports R2 scores for T and Γ (quantities with clear
theoretical structure) and MSE for Acc (the black-box-ish component), with
the estimator trained on all datasets *except* the one being predicted,
augmented with random power-law graphs (Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimatorError
from repro.estimator.graybox import GrayBoxEstimator

__all__ = ["r2_score", "mse", "EstimatorValidation", "validate_leave_one_out"]


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1.0 is perfect, <=0 is useless."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise EstimatorError("shape mismatch in r2_score")
    if y_true.size < 2:
        raise EstimatorError("r2_score needs at least two samples")
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise EstimatorError("shape mismatch in mse")
    return float(np.mean((y_true - y_pred) ** 2))


@dataclass(frozen=True)
class EstimatorValidation:
    """One Table 2 column: precision of the estimator on a held-out dataset."""

    dataset: str
    r2_time: float
    r2_memory: float
    mse_accuracy: float
    num_train: int
    num_test: int


def validate_leave_one_out(
    records_by_dataset: dict[str, list],
    *,
    platform: str = "rtx4090",
    random_state: int = 0,
) -> list[EstimatorValidation]:
    """Sec. 4.1 protocol: train on every dataset but one, predict that one.

    ``records_by_dataset`` may include augmentation entries (e.g. random
    power-law graphs) whose keys start with ``"aug"``; they join every
    training fold but are never held out.
    """
    held_out = [k for k in records_by_dataset if not k.startswith("aug")]
    if len(held_out) < 2:
        raise EstimatorError("leave-one-out needs at least two real datasets")
    results: list[EstimatorValidation] = []
    for target in held_out:
        train_records = [
            r
            for key, recs in records_by_dataset.items()
            if key != target
            for r in recs
        ]
        test_records = records_by_dataset[target]
        estimator = GrayBoxEstimator(random_state=random_state)
        estimator.fit(train_records)
        preds = estimator.predict(
            [r.config for r in test_records],
            [r.graph_profile for r in test_records],
            platform,
        )
        results.append(
            EstimatorValidation(
                dataset=target,
                r2_time=r2_score(
                    np.array([r.time_s for r in test_records]),
                    np.array([p.time_s for p in preds]),
                ),
                r2_memory=r2_score(
                    np.array([r.memory_bytes for r in test_records]),
                    np.array([p.memory_bytes for p in preds]),
                ),
                mse_accuracy=mse(
                    np.array([r.accuracy for r in test_records]),
                    np.array([p.accuracy for p in preds]),
                ),
                num_train=len(train_records),
                num_test=len(test_records),
            )
        )
    return results
