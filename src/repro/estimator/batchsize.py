"""Mini-batch size estimation — Eq. 12 and the Fig. 5 comparison.

``E[|V_i|] = f_overlapping(|B0| * Π_l (1 + k_l)^τ, p(η))``: the analytic
tree-growth bound is exact for trees but overshoots on real graphs because
sampled neighbourhoods overlap.  The gray-box model therefore predicts a
*log-space correction* to the closed-form saturating expectation with a small
learned tree — theory carries the scale, learning carries the graph-specific
overlap behaviour.  The pure black-box baseline maps raw features straight to
``|V_i|``, which is exactly the model Fig. 5(b) shows scattering.
"""

from __future__ import annotations

import numpy as np

from repro.config.settings import SAMPLER_NAMES, TrainingConfig
from repro.errors import EstimatorError
from repro.estimator.blackbox import DecisionTreeRegressor
from repro.graphs.profiling import GraphProfile
from repro.sampling.expectation import saturating_expectation, tree_growth_bound

__all__ = ["GrayBoxBatchSizeModel", "BlackBoxBatchSizeModel", "analytic_batch_size"]


def _effective_fanouts(config: TrainingConfig) -> list[float]:
    """Per-hop expected fanout of the configured sampler (Eq. 2/3 view)."""
    if config.sampler == "saint":
        # Subgraph sampling = many hops, single-neighbour fanout.
        return [1.0] * (2 * len(config.hop_list))
    if config.sampler == "fastgcn":
        # Layer budget Δ_l = k_l * |B0| => effective fanout relative to the
        # previous layer per Eq. 3.
        profile: list[float] = []
        prev = float(config.batch_size)
        for k in config.hop_list:
            delta = float(k * config.batch_size)
            profile.append(delta / prev)
            prev = delta
        return profile
    return [float(k) for k in config.hop_list]


def analytic_batch_size(config: TrainingConfig, profile: GraphProfile) -> float:
    """Closed-form prior: saturating tree-growth expectation on this graph."""
    fanouts = _effective_fanouts(config)
    # Fanout beyond a vertex's degree cannot expand further; clip by the
    # graph's average degree, the dominant first-order overlap effect.
    clipped = [min(k, profile.avg_degree) for k in fanouts]
    bound = tree_growth_bound(config.batch_size, clipped)
    return float(saturating_expectation(bound, profile.num_nodes))


def _correction_features(
    config: TrainingConfig, profile: GraphProfile
) -> np.ndarray:
    """Features explaining where the analytic prior is off."""
    fanouts = _effective_fanouts(config)
    sampler_onehot = [1.0 if config.sampler == s else 0.0 for s in SAMPLER_NAMES]
    return np.array(
        [
            np.log1p(config.batch_size),
            np.log1p(sum(fanouts)),
            float(len(fanouts)),
            config.bias_rate,
            profile.avg_degree,
            profile.degree_skew,
            profile.powerlaw_exponent,
            np.log1p(profile.num_nodes),
            config.batch_size / max(profile.num_nodes, 1),
            *sampler_onehot,
        ],
        dtype=np.float64,
    )


class GrayBoxBatchSizeModel:
    """Eq. 12 with a learnable overlap penalty (the paper's f_overlapping)."""

    def __init__(self, *, max_depth: int = 6, random_state: int = 0) -> None:
        self._tree = DecisionTreeRegressor(
            max_depth=max_depth, min_samples_leaf=3, random_state=random_state
        )
        self._fitted = False

    def fit(
        self,
        configs: list[TrainingConfig],
        profiles: list[GraphProfile],
        measured: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GrayBoxBatchSizeModel":
        measured = np.asarray(measured, dtype=np.float64)
        if not (len(configs) == len(profiles) == measured.size):
            raise EstimatorError("configs, profiles and targets must align")
        x = np.stack(
            [_correction_features(c, p) for c, p in zip(configs, profiles, strict=True)]
        )
        prior = np.array(
            [analytic_batch_size(c, p) for c, p in zip(configs, profiles, strict=True)]
        )
        residual = np.log(np.maximum(measured, 1.0)) - np.log(np.maximum(prior, 1.0))
        self._tree.fit(x, residual, sample_weight=sample_weight)
        self._fitted = True
        return self

    def predict(
        self, configs: list[TrainingConfig], profiles: list[GraphProfile]
    ) -> np.ndarray:
        if not self._fitted:
            raise EstimatorError("predict() before fit()")
        x = np.stack(
            [_correction_features(c, p) for c, p in zip(configs, profiles, strict=True)]
        )
        prior = np.array(
            [analytic_batch_size(c, p) for c, p in zip(configs, profiles, strict=True)]
        )
        correction = self._tree.predict(x)
        pred = prior * np.exp(correction)
        caps = np.array([p.num_nodes for p in profiles], dtype=np.float64)
        return np.minimum(pred, caps)


class BlackBoxBatchSizeModel:
    """Pure decision-tree baseline of Fig. 5(b): features → |V_i| directly."""

    def __init__(self, *, max_depth: int = 6, random_state: int = 0) -> None:
        self._tree = DecisionTreeRegressor(
            max_depth=max_depth, min_samples_leaf=3, random_state=random_state
        )
        self._fitted = False

    @staticmethod
    def _features(config: TrainingConfig, profile: GraphProfile) -> np.ndarray:
        return np.concatenate([config.as_features(), profile.as_features()])

    def fit(
        self,
        configs: list[TrainingConfig],
        profiles: list[GraphProfile],
        measured: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "BlackBoxBatchSizeModel":
        x = np.stack([self._features(c, p) for c, p in zip(configs, profiles, strict=True)])
        self._tree.fit(
            x, np.asarray(measured, dtype=np.float64), sample_weight=sample_weight
        )
        self._fitted = True
        return self

    def predict(
        self, configs: list[TrainingConfig], profiles: list[GraphProfile]
    ) -> np.ndarray:
        if not self._fitted:
            raise EstimatorError("predict() before fit()")
        x = np.stack([self._features(c, p) for c, p in zip(configs, profiles, strict=True)])
        return self._tree.predict(x)
