"""Gray-box performance estimator: Eqs. 4-12 analytics + learned components."""

from repro.estimator.accuracy import AccuracyModel, accuracy_features
from repro.estimator.batchsize import (
    BlackBoxBatchSizeModel,
    GrayBoxBatchSizeModel,
    analytic_batch_size,
)
from repro.estimator.blackbox import DecisionTreeRegressor, RandomForestRegressor
from repro.estimator.features import encode, encode_names, encode_records
from repro.estimator.graybox import BlackBoxEstimator, GrayBoxEstimator, PredictedPerf
from repro.estimator.validation import (
    EstimatorValidation,
    mse,
    r2_score,
    validate_leave_one_out,
)

__all__ = [
    "AccuracyModel",
    "accuracy_features",
    "GrayBoxBatchSizeModel",
    "BlackBoxBatchSizeModel",
    "analytic_batch_size",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "encode",
    "encode_names",
    "encode_records",
    "GrayBoxEstimator",
    "BlackBoxEstimator",
    "PredictedPerf",
    "EstimatorValidation",
    "r2_score",
    "mse",
    "validate_leave_one_out",
]
