"""Configurations: candidate settings, system templates and the design space."""

from repro.config.settings import (
    KERNEL_NAMES,
    ORDER_NAMES,
    REORDER_NAMES,
    SAMPLER_NAMES,
    TaskSpec,
    TrainingConfig,
)
from repro.config.space import DesignSpace, default_space, reduced_space
from repro.config.templates import TEMPLATES, get_template, template_names

__all__ = [
    "TrainingConfig",
    "TaskSpec",
    "SAMPLER_NAMES",
    "REORDER_NAMES",
    "ORDER_NAMES",
    "KERNEL_NAMES",
    "DesignSpace",
    "default_space",
    "reduced_space",
    "TEMPLATES",
    "get_template",
    "template_names",
]
