"""Configuration templates reproducing existing systems (Fig. 3 right panel).

The paper's claim: "many existing works can be conveniently reproduced by
applying the configuration setting templates".  Each template below is the
knob assignment that turns the reconfigurable backend into that system:

* ``pyg`` — vanilla PyG ``NeighborLoader`` training: unbiased node-wise
  sampling, no cache.
* ``pagraph_full`` / ``pagraph_low`` — PaGraph: static degree-priority cache
  with a disabled update policy, sized generously vs. tightly (the paper's
  Pa-Full / Pa-Low resource scenarios).
* ``2pgraph`` — 2PGraph: cache-aware *biased* sampling plus locality-ordered
  batch scheduling over a dynamically refreshed cache.
* ``saint`` — GraphSAINT subgraph training, no cache.
"""

from __future__ import annotations

from repro.config.settings import TrainingConfig
from repro.errors import ConfigError

__all__ = ["TEMPLATES", "get_template", "template_names"]

# Batch sizes and fanouts are scaled together with the ~20x-scaled datasets
# (DESIGN.md): PyG's canonical NeighborLoader(25,10)@1024 maps to (10,5)@256
# so that |V_i| / |V| matches the regime the original systems operate in.
TEMPLATES: dict[str, TrainingConfig] = {
    "pyg": TrainingConfig(
        batch_size=256,
        sampler="sage",
        hop_list=(10, 5),
        cache_ratio=0.0,
        cache_policy="none",
    ),
    "pagraph_full": TrainingConfig(
        batch_size=256,
        sampler="sage",
        hop_list=(10, 5),
        cache_ratio=0.5,
        cache_policy="static",
    ),
    "pagraph_low": TrainingConfig(
        batch_size=256,
        sampler="sage",
        hop_list=(10, 5),
        cache_ratio=0.05,
        cache_policy="static",
    ),
    "2pgraph": TrainingConfig(
        batch_size=256,
        sampler="biased",
        hop_list=(10, 5),
        bias_rate=0.9,
        batch_order="partition",
        cache_ratio=0.25,
        cache_policy="lru",
    ),
    "saint": TrainingConfig(
        batch_size=256,
        sampler="saint",
        hop_list=(3, 3),
        cache_ratio=0.0,
        cache_policy="none",
    ),
}


def template_names() -> list[str]:
    """Available template identifiers."""
    return sorted(TEMPLATES)


def get_template(name: str, **overrides) -> TrainingConfig:
    """Fetch a template, optionally overriding individual knobs."""
    key = name.lower()
    if key not in TEMPLATES:
        raise ConfigError(f"unknown template {name!r}; known: {template_names()}")
    config = TEMPLATES[key]
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config
