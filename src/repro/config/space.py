"""Design space: the set of all reconfigurable-setting assignments (Sec. 3.3).

A :class:`DesignSpace` is an ordered mapping ``knob -> domain``.  The DFS
explorer walks knobs in order, assigning one domain value per level, so the
space doubles as the explorer's search tree.  Candidates are canonicalised
(see :meth:`TrainingConfig.canonical`) and deduplicated, which is how the
``bias_rate×sampler`` and ``cache_ratio×policy`` interactions prune
redundant branches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

import numpy as np

from repro.config.settings import TrainingConfig
from repro.errors import ConfigError

__all__ = ["DesignSpace", "default_space", "reduced_space"]


class DesignSpace:
    """Cartesian product of per-knob domains with canonical deduplication."""

    def __init__(self, domains: dict[str, tuple], base: TrainingConfig | None = None):
        if not domains:
            raise ConfigError("design space needs at least one dimension")
        valid = set(TrainingConfig.__dataclass_fields__)
        for name, values in domains.items():
            if name not in valid:
                raise ConfigError(f"unknown knob {name!r}")
            if not values:
                raise ConfigError(f"knob {name!r} has an empty domain")
        self.domains = {k: tuple(v) for k, v in domains.items()}
        self.base = base or TrainingConfig()

    @property
    def knobs(self) -> list[str]:
        """Dimension names in DFS order."""
        return list(self.domains)

    def raw_size(self) -> int:
        """Cartesian-product size before canonical deduplication."""
        size = 1
        for values in self.domains.values():
            size *= len(values)
        return size

    def build(self, assignment: dict[str, object]) -> TrainingConfig:
        """Materialise a (possibly partial) assignment onto the base config."""
        return replace(self.base, **assignment).canonical()

    def __iter__(self) -> Iterator[TrainingConfig]:
        """Enumerate unique canonical candidates in DFS order."""
        seen: set[TrainingConfig] = set()
        knobs = self.knobs

        def recurse(level: int, assignment: dict) -> Iterator[TrainingConfig]:
            if level == len(knobs):
                candidate = self.build(assignment)
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate
                return
            knob = knobs[level]
            for value in self.domains[knob]:
                assignment[knob] = value
                yield from recurse(level + 1, assignment)
            del assignment[knob]

        yield from recurse(0, {})

    def enumerate(self) -> list[TrainingConfig]:
        """All unique candidates as a list."""
        return list(self)

    def sample(self, count: int, *, rng: np.random.Generator) -> list[TrainingConfig]:
        """Uniformly sample ``count`` distinct canonical candidates.

        Draws assignments at random and deduplicates; falls back to full
        enumeration when the space is small enough that rejection sampling
        would stall.
        """
        if count <= 0:
            raise ConfigError("sample count must be positive")
        raw = self.raw_size()
        if raw <= 4 * count:
            candidates = self.enumerate()
            rng.shuffle(candidates)
            return candidates[:count]
        seen: set[TrainingConfig] = set()
        out: list[TrainingConfig] = []
        attempts = 0
        while len(out) < count and attempts < 50 * count:
            attempts += 1
            assignment = {
                knob: values[rng.integers(len(values))]
                for knob, values in self.domains.items()
            }
            candidate = self.build(assignment)
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
        return out

    def neighbors(self, config: TrainingConfig) -> list[TrainingConfig]:
        """Candidates differing from ``config`` in exactly one knob."""
        out: list[TrainingConfig] = []
        for knob, values in self.domains.items():
            current = getattr(config, knob)
            for value in values:
                if value == current:
                    continue
                out.append(replace(config, **{knob: value}).canonical())
        return [c for c in dict.fromkeys(out) if c != config.canonical()]


def default_space() -> DesignSpace:
    """The full design space used for estimator-guided exploration."""
    return DesignSpace(
        {
            "batch_size": (128, 256, 512),
            "sampler": ("sage", "biased", "fastgcn", "saint"),
            "hop_list": ((3, 2), (5, 3), (10, 5), (15, 10)),
            "bias_rate": (0.0, 0.5, 0.9),
            "cache_ratio": (0.0, 0.05, 0.15, 0.3, 0.5),
            "cache_policy": ("none", "static", "fifo", "lru"),
            "hidden_channels": (16, 32, 64),
            "reorder": ("none", "degree"),
        }
    )


def reduced_space() -> DesignSpace:
    """A space small enough to exhaust by real execution (Fig. 6 protocol)."""
    return DesignSpace(
        {
            "batch_size": (128, 256),
            "sampler": ("sage", "biased", "saint"),
            "hop_list": ((5, 3), (10, 5)),
            "bias_rate": (0.0, 0.9),
            "cache_ratio": (0.0, 0.15, 0.4),
            "cache_policy": ("none", "static", "lru"),
            "hidden_channels": (32,),
        }
    )
