"""Training configuration: the reconfigurable settings of Fig. 3.

A :class:`TrainingConfig` is one *candidate* in the design space.  Its fields
map one-to-one onto the blue dash-line knobs of the paper's backend figure:

========================  =====================================
Category (Fig. 3)         Fields
========================  =====================================
Cat. 1 Sampling           ``batch_size``, ``sampler``, ``hop_list``,
                          ``bias_rate``, ``batch_order``
Cat. 2 Transmission       ``cache_ratio``, ``cache_policy``
Cat. 3 Model design       ``hidden_channels``, ``num_layers``, ``heads``,
                          ``dropout``
Cat. 4 Computation        ``reorder``, ``kernel``
========================  =====================================

Pre-determined settings (dataset, architecture, platform, epochs, learning
rate) live in :class:`TaskSpec` — they come from the application, not the
explorer (Fig. 4 "Pre-determined Settings").
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "TrainingConfig",
    "TaskSpec",
    "SAMPLER_NAMES",
    "REORDER_NAMES",
    "ORDER_NAMES",
    "KERNEL_NAMES",
]

SAMPLER_NAMES = ("sage", "fastgcn", "saint", "biased", "cluster")
REORDER_NAMES = ("none", "degree", "bfs")
ORDER_NAMES = ("random", "sequential", "partition")
#: SpMM execution backends (``repro.runtime.kernels``).  Kept as a static
#: tuple because config must not import the runtime package; the test suite
#: asserts it matches the kernel registry.
KERNEL_NAMES = ("reference", "fused", "parallel", "reorder")
_CACHE_POLICIES = ("none", "static", "fifo", "lru")


def _default_kernel() -> str:
    """Process-wide kernel default, overridable via ``REPRO_KERNEL``.

    The env hook lets whole deployments (CI matrix legs, fleet executors)
    switch backends without touching every call site that builds a config.
    """
    return os.environ.get("REPRO_KERNEL", "reference")


@dataclass(frozen=True)
class TrainingConfig:
    """One design-space candidate (all reconfigurable settings)."""

    batch_size: int = 1024
    sampler: str = "sage"
    hop_list: tuple[int, ...] = (10, 5)
    bias_rate: float = 0.0
    batch_order: str = "random"
    cache_ratio: float = 0.0
    cache_policy: str = "none"
    hidden_channels: int = 64
    num_layers: int = 2
    heads: int = 4
    dropout: float = 0.5
    reorder: str = "none"
    kernel: str = field(default_factory=_default_kernel)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.sampler not in SAMPLER_NAMES:
            raise ConfigError(f"unknown sampler {self.sampler!r}; known: {SAMPLER_NAMES}")
        if not self.hop_list or any(k <= 0 for k in self.hop_list):
            raise ConfigError("hop_list must be a non-empty tuple of positive fanouts")
        if not 0.0 <= self.bias_rate <= 1.0:
            raise ConfigError("bias_rate must lie in [0, 1]")
        if self.batch_order not in ORDER_NAMES:
            raise ConfigError(f"unknown batch order {self.batch_order!r}")
        if not 0.0 <= self.cache_ratio <= 1.0:
            raise ConfigError("cache_ratio must lie in [0, 1]")
        if self.cache_policy not in _CACHE_POLICIES:
            raise ConfigError(f"unknown cache policy {self.cache_policy!r}")
        if self.hidden_channels <= 0 or self.num_layers <= 0 or self.heads <= 0:
            raise ConfigError("model dimensions must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ConfigError("dropout must lie in [0, 1)")
        if self.reorder not in REORDER_NAMES:
            raise ConfigError(f"unknown reorder strategy {self.reorder!r}")
        if self.kernel not in KERNEL_NAMES:
            raise ConfigError(f"unknown kernel {self.kernel!r}; known: {KERNEL_NAMES}")

    def canonical(self) -> "TrainingConfig":
        """Resolve knob interactions so equivalent candidates compare equal.

        ``bias_rate`` is meaningful only for the biased sampler; a zero-sized
        cache is the same as no cache (and vice versa).
        """
        cfg = self
        if cfg.sampler != "biased" and cfg.bias_rate != 0.0:
            cfg = replace(cfg, bias_rate=0.0)
        if cfg.sampler == "biased" and cfg.bias_rate == 0.0:
            cfg = replace(cfg, sampler="sage")
        if cfg.cache_policy == "none" and cfg.cache_ratio != 0.0:
            cfg = replace(cfg, cache_ratio=0.0)
        if cfg.cache_ratio == 0.0 and cfg.cache_policy != "none":
            cfg = replace(cfg, cache_policy="none")
        return cfg

    # ------------------------------------------------------------- encodings
    def as_features(self) -> np.ndarray:
        """Numeric encoding consumed by black-box estimator components.

        ``kernel`` is deliberately **not** encoded: the analytic cost model
        charges time from FLOP/byte counts that are identical under every
        kernel, so including it would only split the estimator's training
        data across feature values that carry no signal.  Keeping the
        vector stable also preserves transfer-corpus compatibility.
        """
        sampler_onehot = [1.0 if self.sampler == s else 0.0 for s in SAMPLER_NAMES]
        policy_onehot = [1.0 if self.cache_policy == p else 0.0 for p in _CACHE_POLICIES]
        fanout_product = float(np.prod([1.0 + k for k in self.hop_list]))
        return np.array(
            [
                float(self.batch_size),
                float(len(self.hop_list)),
                float(sum(self.hop_list)),
                fanout_product,
                self.bias_rate,
                self.cache_ratio,
                float(self.hidden_channels),
                float(self.num_layers),
                float(self.heads),
                self.dropout,
                1.0 if self.reorder != "none" else 0.0,
                1.0 if self.batch_order == "partition" else 0.0,
                *sampler_onehot,
                *policy_onehot,
            ],
            dtype=np.float64,
        )

    @staticmethod
    def feature_names() -> list[str]:
        """Column names matching :meth:`as_features`."""
        return [
            "batch_size",
            "num_hops",
            "fanout_sum",
            "fanout_product",
            "bias_rate",
            "cache_ratio",
            "hidden_channels",
            "num_layers",
            "heads",
            "dropout",
            "reordered",
            "partition_order",
            *[f"sampler={s}" for s in SAMPLER_NAMES],
            *[f"policy={p}" for p in _CACHE_POLICIES],
        ]

    def describe(self) -> str:
        """Compact one-line summary used in guideline reports."""
        parts = [
            f"batch={self.batch_size}",
            f"sampler={self.sampler}",
            f"hops={list(self.hop_list)}",
        ]
        if self.sampler == "biased":
            parts.append(f"bias={self.bias_rate:.2f}")
        parts.append(f"cache={self.cache_policy}@{self.cache_ratio:.2f}")
        parts.append(f"hidden={self.hidden_channels}")
        if self.reorder != "none":
            parts.append(f"reorder={self.reorder}")
        if self.kernel != "reference":
            parts.append(f"kernel={self.kernel}")
        return " ".join(parts)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly dict: guidelines can be exported and re-applied."""
        from dataclasses import asdict

        out = asdict(self)
        out["hop_list"] = list(self.hop_list)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TrainingConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown config keys: {sorted(unknown)}")
        payload = dict(data)
        if "hop_list" in payload:
            payload["hop_list"] = tuple(payload["hop_list"])
        return cls(**payload)


@dataclass(frozen=True)
class TaskSpec:
    """Pre-determined settings of one training task (application side)."""

    dataset: str
    arch: str = "sage"
    platform: str = "rtx4090"
    epochs: int = 5
    lr: float = 0.01
    seed: int = 0
    train_frac: float = 0.6
    val_frac: float = 0.2
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.arch not in ("gcn", "sage", "gat"):
            raise ConfigError(f"unknown architecture {self.arch!r}")
        if self.epochs <= 0:
            raise ConfigError("epochs must be positive")
        if self.lr <= 0:
            raise ConfigError("learning rate must be positive")
