"""Graph reordering — the "Reorder" knob of the backend's computation category.

GNNAdvisor-style runtimes renumber vertices so neighbours share cache lines,
which the paper exposes as a reconfigurable computation optimization (Fig. 3,
Cat. 4).  We provide degree-sorted and BFS (Cuthill–McKee-flavoured)
renumberings and a locality score the cost model converts into an effective
memory-bandwidth bonus.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph

__all__ = ["degree_order", "bfs_order", "apply_order", "locality_score", "reorder_graph"]


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Permutation placing high-degree vertices first (GNNAdvisor grouping)."""
    return np.argsort(graph.degrees, kind="stable")[::-1].astype(np.int64)


def bfs_order(graph: CSRGraph, *, start: int | None = None) -> np.ndarray:
    """BFS visitation order from the max-degree vertex (covers all components).

    Always returns a full permutation of ``0..n-1`` — :func:`apply_order`
    rejects anything shorter.  Components unreachable from ``start``
    (including a tail of isolated vertices) are picked up by the scan loop
    in ascending id order.
    """
    n = graph.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if start is None:
        start = int(np.argmax(graph.degrees))
    elif not 0 <= start < n:
        raise GraphError(f"start {start} out of range")
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    pending = deque([start])
    visited[start] = True
    scan = 0
    while pos < n:
        if not pending:
            # Invariant: visited count == pos + len(pending), so with the
            # queue empty and pos < n an unvisited vertex must exist — the
            # scan cannot run off the end, and truncating here (the old
            # ``return order[:pos]``) could only ever hide a real bug as a
            # bogus sub-permutation that apply_order then rejected.
            while visited[scan]:
                scan += 1
            pending.append(scan)
            visited[scan] = True
        node = pending.popleft()
        order[pos] = node
        pos += 1
        for nbr in graph.neighbors(node):
            if not visited[nbr]:
                visited[nbr] = True
                pending.append(int(nbr))
    return order


def apply_order(graph: CSRGraph, order: np.ndarray) -> CSRGraph:
    """Relabel vertices so ``order[i]`` becomes vertex ``i``."""
    n = graph.num_nodes
    order = np.asarray(order, dtype=np.int64)
    if order.shape[0] != n or np.unique(order).size != n:
        raise GraphError("order must be a permutation of all vertices")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n, dtype=np.int64)
    src, dst = graph.to_coo()
    return CSRGraph.from_edges(
        n,
        inverse[src],
        inverse[dst],
        features=None if graph.features is None else graph.features[order],
        labels=None if graph.labels is None else graph.labels[order],
        num_classes=graph.num_classes,
        name=graph.name,
        symmetrize=False,
    )


def locality_score(graph: CSRGraph) -> float:
    """Mean inverse neighbour-id distance; higher means better memory locality.

    ``score = mean(1 / (1 + |u - v| / n))`` over directed edges, in (0, 1].
    """
    src, dst = graph.to_coo()
    if src.size == 0:
        return 1.0
    gap = np.abs(src - dst).astype(np.float64) / max(graph.num_nodes, 1)
    return float(np.mean(1.0 / (1.0 + gap)))


def reorder_graph(graph: CSRGraph, strategy: str) -> CSRGraph:
    """Apply a named reordering: ``none`` | ``degree`` | ``bfs``."""
    if strategy == "none":
        return graph
    if strategy == "degree":
        return apply_order(graph, degree_order(graph))
    if strategy == "bfs":
        return apply_order(graph, bfs_order(graph))
    raise GraphError(f"unknown reorder strategy {strategy!r}")
