"""Graph substrate: CSR container, synthetic datasets, profiling, partitions."""

from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import DATASETS, DatasetSpec, load_dataset, train_val_test_split
from repro.graphs.generators import (
    community_features,
    powerlaw_community_graph,
    powerlaw_degrees,
    powerlaw_graph,
)
from repro.graphs.partition import bfs_partition, cache_priority_order, partition_locality
from repro.graphs.profiling import (
    GraphProfile,
    degree_histogram,
    edge_homophily,
    feature_separability,
    powerlaw_exponent_mle,
    profile_graph,
)
from repro.graphs.reorder import (
    apply_order,
    bfs_order,
    degree_order,
    locality_score,
    reorder_graph,
)

__all__ = [
    "CSRGraph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "train_val_test_split",
    "powerlaw_degrees",
    "powerlaw_graph",
    "powerlaw_community_graph",
    "community_features",
    "bfs_partition",
    "partition_locality",
    "cache_priority_order",
    "GraphProfile",
    "profile_graph",
    "degree_histogram",
    "powerlaw_exponent_mle",
    "edge_homophily",
    "feature_separability",
    "degree_order",
    "bfs_order",
    "apply_order",
    "locality_score",
    "reorder_graph",
]
