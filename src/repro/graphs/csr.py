"""Compressed-sparse-row graph container.

This is the ``G(V, E)`` object of the paper (Sec. 2.1).  Everything downstream
— samplers, the device cache, the runtime backend and the performance
estimator — consumes graphs through this structure, so it is deliberately
small, immutable and numpy-native.

The adjacency is stored once in CSR form (``indptr``/``indices``).  Node
features and labels are optional dense arrays; samplers only need topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph", "dedup_edges"]


def dedup_edges(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort ``(src, dst)`` pairs lexicographically and drop duplicates.

    Uses :func:`np.lexsort` on the two columns directly rather than a flat
    ``src * num_nodes + dst`` key, which overflows int64 once
    ``num_nodes**2`` exceeds ``2**63`` and then silently merges or misorders
    distinct edges.  Safe for arbitrarily large node ids.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if src.size:
        unique = np.concatenate(
            [[True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])]
        )
        src, dst = src[unique], dst[unique]
    return src, dst


@dataclass(frozen=True)
class CSRGraph:
    """An undirected (symmetrised) graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; row pointer.
    indices:
        ``int64`` array of length ``num_edges``; column indices (neighbour
        ids) sorted within each row.
    features:
        Optional ``float32`` node-feature matrix of shape
        ``(num_nodes, feature_dim)``.
    labels:
        Optional ``int64`` node-label vector of length ``num_nodes``.
    num_classes:
        Number of distinct labels; ``0`` when the graph is unlabelled.
    name:
        Human-readable dataset name used in reports.
    """

    indptr: np.ndarray
    indices: np.ndarray
    features: np.ndarray | None = None
    labels: np.ndarray | None = None
    num_classes: int = 0
    name: str = "graph"
    _degrees: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        self._validate()
        object.__setattr__(self, "_degrees", np.diff(self.indptr))

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise GraphError("indptr must be a 1-D array with at least one entry")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.size:
            raise GraphError(
                f"indptr[-1]={self.indptr[-1]} does not match "
                f"len(indices)={self.indices.size}"
            )
        n = self.num_nodes
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphError("edge endpoint out of range")
        if self.features is not None and self.features.shape[0] != n:
            raise GraphError("features row count must equal num_nodes")
        if self.labels is not None and self.labels.shape[0] != n:
            raise GraphError("labels length must equal num_nodes")

    # ------------------------------------------------------------------ views
    @property
    def num_nodes(self) -> int:
        """Number of vertices ``|V|``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edge slots ``|E|`` (twice the undirected count)."""
        return self.indices.size

    @property
    def feature_dim(self) -> int:
        """Attribute dimensionality ``n_attr`` (0 when featureless)."""
        return 0 if self.features is None else self.features.shape[1]

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex (cached)."""
        return self._degrees

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node`` as a read-only slice."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Degree of a single vertex."""
        if not 0 <= node < self.num_nodes:
            raise GraphError(f"node {node} out of range [0, {self.num_nodes})")
        return int(self._degrees[node])

    # ------------------------------------------------------------- subgraphs
    def gather_neighborhoods(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """All directed edges leaving ``nodes`` as ``(src, dst)`` arrays.

        Fully vectorised; the workhorse behind samplers and subgraph
        induction.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        starts = self.indptr[nodes]
        counts = self._degrees[nodes]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        offsets = np.zeros(nodes.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        flat = np.arange(total, dtype=np.int64)
        flat += np.repeat(starts - offsets, counts)
        return np.repeat(nodes, counts), self.indices[flat]

    def induced_subgraph(self, nodes: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (with rows relabelled ``0..len(nodes)-1`` in
        sorted-global-id order, and features/labels sliced when present) and
        the original node ids, so callers can map embeddings back.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= self.num_nodes):
            raise GraphError("subgraph node id out of range")
        lookup = np.full(self.num_nodes, -1, dtype=np.int64)
        lookup[nodes] = np.arange(nodes.size, dtype=np.int64)

        src, dst = self.gather_neighborhoods(nodes)
        keep = lookup[dst] >= 0
        src, dst = lookup[src[keep]], lookup[dst[keep]]
        counts = np.bincount(src, minlength=nodes.size)
        sub_indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=sub_indptr[1:])
        # ``src`` is sorted because ``nodes`` is iterated in ascending order,
        # and within each row ``dst`` stays sorted: every construction path
        # (from_edges, generators) emits row-sorted indices and the relabel
        # map is monotonic over the kept vertices.  No sort needed.
        sub = CSRGraph(
            indptr=sub_indptr,
            indices=dst,
            features=None if self.features is None else self.features[nodes],
            labels=None if self.labels is None else self.labels[nodes],
            num_classes=self.num_classes,
            name=f"{self.name}:sub",
        )
        return sub, nodes

    # --------------------------------------------------------------- exports
    def to_coo(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` arrays of every directed edge slot."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self._degrees)
        return src, self.indices.copy()

    def memory_bytes(self) -> int:
        """Host memory footprint of topology + features + labels."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.features is not None:
            total += self.features.nbytes
        if self.labels is not None:
            total += self.labels.nbytes
        return total

    @staticmethod
    def from_edges(
        num_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        features: np.ndarray | None = None,
        labels: np.ndarray | None = None,
        num_classes: int = 0,
        name: str = "graph",
        symmetrize: bool = True,
    ) -> "CSRGraph":
        """Build a graph from an edge list, deduplicating and symmetrising.

        Self-loops are dropped; parallel edges collapse to one.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst must have identical shapes")
        if src.size and (
            min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_nodes
        ):
            raise GraphError("edge endpoint out of range")
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if symmetrize:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        src, dst = dedup_edges(src, dst)
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(
            indptr=indptr,
            indices=dst,
            features=features,
            labels=labels,
            num_classes=num_classes,
            name=name,
        )
