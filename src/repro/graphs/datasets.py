"""Dataset zoo: scaled synthetic stand-ins for the paper's benchmarks.

The paper evaluates on Ogbn-arxiv (AR), Ogbn-products (PR), Reddit (RD) and
Reddit2 (RD2).  Offline, each is replaced by a degree-corrected power-law SBM
whose *relative* statistics (node count rank, density rank, feature width,
class count, attainable accuracy band) match the original — see DESIGN.md for
the substitution rationale.  Node counts are scaled down ~20× so the numpy
training substrate finishes each table in minutes, which rescales absolute
times but preserves every between-method comparison.

Accuracy bands targeted (paper Table 1): PR+SAGE ≈ 0.90, RD2+SAGE ≈ 0.79,
AR+GAT ≈ 0.61.  The bands are tuned through ``feature_noise`` / ``homophily``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import powerlaw_community_graph

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "train_val_test_split"]


@dataclass(frozen=True)
class DatasetSpec:
    """Generation recipe for one synthetic dataset."""

    name: str
    num_nodes: int
    num_classes: int
    feature_dim: int
    exponent: float
    min_degree: int
    max_degree: int
    homophily: float
    feature_noise: float
    seed: int
    aliases: tuple[str, ...] = ()

    def build(self) -> CSRGraph:
        """Materialise the graph for this spec."""
        return powerlaw_community_graph(
            self.num_nodes,
            num_classes=self.num_classes,
            feature_dim=self.feature_dim,
            exponent=self.exponent,
            min_degree=self.min_degree,
            max_degree=self.max_degree,
            homophily=self.homophily,
            feature_noise=self.feature_noise,
            seed=self.seed,
            name=self.name,
        )


# Ranked like the originals: products > reddit ≈ reddit2 > arxiv in node count;
# reddit denser than reddit2 (reddit2 is the sparsified re-release).
_SPECS = [
    DatasetSpec(
        name="ogbn-arxiv",
        num_nodes=6000,
        num_classes=40,
        feature_dim=128,
        exponent=2.3,
        min_degree=3,
        max_degree=100,
        homophily=0.45,
        feature_noise=6.0,
        seed=41,
        aliases=("ar", "arxiv"),
    ),
    DatasetSpec(
        name="ogbn-products",
        num_nodes=16000,
        num_classes=32,
        feature_dim=100,
        exponent=2.05,
        min_degree=4,
        max_degree=250,
        homophily=0.58,
        feature_noise=5.5,
        seed=42,
        aliases=("pr", "products"),
    ),
    DatasetSpec(
        name="reddit",
        num_nodes=10000,
        num_classes=41,
        feature_dim=96,
        exponent=1.85,
        min_degree=6,
        max_degree=400,
        homophily=0.62,
        feature_noise=4.5,
        seed=43,
        aliases=("rd",),
    ),
    DatasetSpec(
        name="reddit2",
        num_nodes=10000,
        num_classes=41,
        feature_dim=96,
        exponent=2.1,
        min_degree=4,
        max_degree=200,
        homophily=0.50,
        feature_noise=5.2,
        seed=44,
        aliases=("rd2",),
    ),
]

DATASETS: dict[str, DatasetSpec] = {}
for _spec in _SPECS:
    DATASETS[_spec.name] = _spec
    for _alias in _spec.aliases:
        DATASETS[_alias] = _spec

_CACHE: dict[str, CSRGraph] = {}


def load_dataset(name: str, *, use_cache: bool = True) -> CSRGraph:
    """Build (or fetch from the in-process cache) a dataset by name or alias."""
    key = name.lower()
    if key not in DATASETS:
        known = sorted({s.name for s in _SPECS})
        raise GraphError(f"unknown dataset {name!r}; known: {known}")
    spec = DATASETS[key]
    if use_cache and spec.name in _CACHE:
        return _CACHE[spec.name]
    graph = spec.build()
    if use_cache:
        _CACHE[spec.name] = graph
    return graph


def train_val_test_split(
    num_nodes: int,
    *,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random node split into train/val/test index arrays."""
    if not 0 < train_frac < 1 or not 0 <= val_frac < 1:
        raise GraphError("fractions must lie in (0, 1)")
    if train_frac + val_frac >= 1.0:
        raise GraphError("train_frac + val_frac must leave room for test nodes")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)
    n_train = int(train_frac * num_nodes)
    n_val = int(val_frac * num_nodes)
    return (
        np.sort(order[:n_train]),
        np.sort(order[n_train : n_train + n_val]),
        np.sort(order[n_train + n_val :]),
    )
