"""Graph profiling: the "Graph Info." inputs of Fig. 4.

The estimator and the explorer never look at raw adjacency; they consume the
:class:`GraphProfile` summary produced here (degree distribution moments,
size, density, skew).  This mirrors the paper's Step-1 "input analysis" where
dataset characteristics become pre-determined settings of the design space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "GraphProfile",
    "profile_graph",
    "degree_histogram",
    "powerlaw_exponent_mle",
    "edge_homophily",
    "feature_separability",
]


@dataclass(frozen=True)
class GraphProfile:
    """Summary statistics consumed by the estimator and explorer.

    ``homophily`` (fraction of edges joining same-label endpoints) and
    ``separability`` (between-class share of feature variance) are the
    task-difficulty anchors of the Eq. 11 accuracy model: they let accuracy
    predictions transfer across datasets in the leave-one-out protocol.
    Both are measurable on any labelled graph; they default to 0 for
    unlabelled/featureless graphs.
    """

    name: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    avg_degree: float
    max_degree: int
    degree_std: float
    degree_skew: float
    powerlaw_exponent: float
    feature_bytes: int
    homophily: float = 0.0
    separability: float = 0.0

    def as_features(self) -> np.ndarray:
        """Dense feature vector used by black-box estimator components."""
        return np.array(
            [
                float(self.num_nodes),
                float(self.num_edges),
                float(self.feature_dim),
                self.avg_degree,
                float(self.max_degree),
                self.degree_std,
                self.degree_skew,
                self.powerlaw_exponent,
                self.homophily,
                self.separability,
            ],
            dtype=np.float64,
        )


def degree_histogram(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(degree_values, counts)`` of the non-empty histogram bins."""
    counts = np.bincount(graph.degrees)
    values = np.nonzero(counts)[0]
    return values, counts[values]


def powerlaw_exponent_mle(degrees: np.ndarray, *, k_min: int = 1) -> float:
    """Continuous MLE of the power-law exponent (Clauset et al. estimator).

    ``alpha = 1 + n / sum(ln(k / k_min))`` over degrees ``>= k_min``.
    Returns ``inf`` when every degree equals ``k_min`` (degenerate sequence).
    """
    ks = degrees[degrees >= k_min].astype(np.float64)
    if ks.size == 0:
        return float("inf")
    logs = np.log(ks / (k_min - 0.5))
    total = logs.sum()
    if total <= 0:
        return float("inf")
    return 1.0 + ks.size / total


def edge_homophily(graph: CSRGraph) -> float:
    """Fraction of directed edges whose endpoints share a label."""
    if graph.labels is None or graph.num_edges == 0:
        return 0.0
    src, dst = graph.to_coo()
    return float(np.mean(graph.labels[src] == graph.labels[dst]))


def feature_separability(graph: CSRGraph) -> float:
    """Between-class share of total feature variance (Fisher-style, in [0,1]).

    High separability means class centroids are far apart relative to the
    within-class spread — i.e. the classification task is easy before any
    message passing.
    """
    if graph.features is None or graph.labels is None or graph.num_classes < 2:
        return 0.0
    feats = graph.features.astype(np.float64)
    total_var = float(feats.var(axis=0).sum())
    if total_var <= 0:
        return 0.0
    grand_mean = feats.mean(axis=0)
    between = 0.0
    for c in range(graph.num_classes):
        members = feats[graph.labels == c]
        if members.shape[0] == 0:
            continue
        weight = members.shape[0] / feats.shape[0]
        between += weight * float(((members.mean(axis=0) - grand_mean) ** 2).sum())
    return float(np.clip(between / total_var, 0.0, 1.0))


def profile_graph(graph: CSRGraph) -> GraphProfile:
    """Compute the :class:`GraphProfile` of a graph."""
    deg = graph.degrees.astype(np.float64)
    mean = float(deg.mean()) if deg.size else 0.0
    std = float(deg.std()) if deg.size else 0.0
    if std > 0:
        skew = float(((deg - mean) ** 3).mean() / std**3)
    else:
        skew = 0.0
    feature_bytes = 0 if graph.features is None else int(graph.features.nbytes)
    return GraphProfile(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        feature_dim=graph.feature_dim,
        num_classes=graph.num_classes,
        avg_degree=mean,
        max_degree=int(deg.max()) if deg.size else 0,
        degree_std=std,
        degree_skew=skew,
        powerlaw_exponent=powerlaw_exponent_mle(graph.degrees, k_min=2),
        feature_bytes=feature_bytes,
        homophily=edge_homophily(graph),
        separability=feature_separability(graph),
    )
