"""Locality partitions for cache-aware (biased) sampling.

2PGraph's speedup comes from sampling mini-batches whose vertices cluster
inside a partition that is already resident on the device.  The paper folds
this into the unified sampler abstraction by making the neighbour-selection
probability a function of data locality ``p(η)`` (Sec. 3.2).  This module
supplies the locality signal: a lightweight BFS-grown vertex partitioning
(a stand-in for METIS, which is unavailable offline) plus per-vertex partition
ids that biased samplers and the device cache share.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph

__all__ = ["bfs_partition", "partition_locality", "cache_priority_order"]


def bfs_partition(graph: CSRGraph, num_parts: int, *, seed: int = 0) -> np.ndarray:
    """Partition vertices into ``num_parts`` BFS-grown regions.

    Seeds are spread degree-descending so hubs anchor distinct regions; each
    region grows breadth-first until it reaches ``ceil(|V| / num_parts)``
    members.  Unreached vertices (isolated components) are round-robined.
    Returns an ``int64`` partition id per vertex.
    """
    if num_parts <= 0:
        raise GraphError("num_parts must be positive")
    n = graph.num_nodes
    if num_parts > n:
        raise GraphError("more partitions than vertices")
    target = -(-n // num_parts)  # ceil division
    part = np.full(n, -1, dtype=np.int64)
    sizes = np.zeros(num_parts, dtype=np.int64)

    rng = np.random.default_rng(seed)
    order = np.argsort(graph.degrees)[::-1]
    seeds = order[:num_parts]

    queues = [deque([int(s)]) for s in seeds]
    for pid, s in enumerate(seeds):
        if part[s] == -1:
            part[s] = pid
            sizes[pid] += 1

    active = True
    while active:
        active = False
        for pid, queue in enumerate(queues):
            if not queue or sizes[pid] >= target:
                continue
            active = True
            node = queue.popleft()
            for nbr in graph.neighbors(node):
                if part[nbr] == -1 and sizes[pid] < target:
                    part[nbr] = pid
                    sizes[pid] += 1
                    queue.append(int(nbr))

    unassigned = np.nonzero(part == -1)[0]
    if unassigned.size:
        fill = rng.permutation(num_parts)
        part[unassigned] = fill[np.arange(unassigned.size) % num_parts]
    return part


def partition_locality(part: np.ndarray, graph: CSRGraph) -> float:
    """Fraction of edges whose endpoints share a partition (edge locality)."""
    if part.shape[0] != graph.num_nodes:
        raise GraphError("partition vector length must equal num_nodes")
    src, dst = graph.to_coo()
    if src.size == 0:
        return 1.0
    return float(np.mean(part[src] == part[dst]))


def cache_priority_order(graph: CSRGraph) -> np.ndarray:
    """Vertices ranked by caching value (degree-descending, PaGraph policy).

    PaGraph statically caches the highest out-degree vertices because they are
    the most frequently sampled; this order also seeds our static cache.
    """
    return np.argsort(graph.degrees, kind="stable")[::-1].astype(np.int64)
