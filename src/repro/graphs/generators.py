"""Synthetic graph generators.

The paper evaluates on Ogbn-arxiv, Ogbn-products, Reddit and Reddit2, and
additionally augments its estimator training set with *randomly generated
power-law graphs* (Sec. 4.1).  Offline we cannot download OGB, so both roles
are served by the generators here:

* :func:`powerlaw_community_graph` — a degree-corrected stochastic block
  model.  Degrees follow a truncated power law (the property the estimator's
  overlap penalty of Eq. 12 keys on) while a planted community structure
  makes node classification genuinely learnable, so measured accuracy reacts
  to sampler bias and batch size the way the paper's Sec. 3.3 assumes.
* :func:`powerlaw_graph` — topology-only variant used for estimator data
  augmentation, mirroring the paper's "randomly generate some power-law
  graphs" enhancement.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph

__all__ = [
    "powerlaw_degrees",
    "powerlaw_graph",
    "powerlaw_community_graph",
    "community_features",
]


def powerlaw_degrees(
    num_nodes: int,
    *,
    exponent: float = 2.2,
    min_degree: int = 2,
    max_degree: int | None = None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a truncated discrete power-law degree sequence.

    ``P(k) ∝ k^-exponent`` on ``[min_degree, max_degree]``.  The sequence sum
    is made even so it is graphical for a configuration-model pairing.
    """
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if exponent <= 1.0:
        raise GraphError("power-law exponent must exceed 1")
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(num_nodes)))
    max_degree = min(max_degree, num_nodes - 1)
    if min_degree > max_degree:
        raise GraphError("min_degree exceeds max_degree")
    ks = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    pmf = ks**-exponent
    pmf /= pmf.sum()
    degrees = rng.choice(ks.astype(np.int64), size=num_nodes, p=pmf)
    if degrees.sum() % 2:
        degrees[rng.integers(num_nodes)] += 1
    return degrees


def _configuration_edges(
    degrees: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Configuration-model edge pairing from a degree sequence (stubs)."""
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = stubs.size // 2
    return stubs[:half], stubs[half : 2 * half]


def powerlaw_graph(
    num_nodes: int,
    *,
    exponent: float = 2.2,
    min_degree: int = 2,
    max_degree: int | None = None,
    seed: int = 0,
    name: str = "powerlaw",
) -> CSRGraph:
    """Topology-only power-law graph via the configuration model."""
    rng = np.random.default_rng(seed)
    degrees = powerlaw_degrees(
        num_nodes,
        exponent=exponent,
        min_degree=min_degree,
        max_degree=max_degree,
        rng=rng,
    )
    src, dst = _configuration_edges(degrees, rng)
    return CSRGraph.from_edges(num_nodes, src, dst, name=name)


def community_features(
    labels: np.ndarray,
    num_classes: int,
    feature_dim: int,
    *,
    noise: float = 1.0,
    rng: np.random.Generator,
) -> np.ndarray:
    """Class-centroid features: ``x_v = centroid[label_v] + noise``.

    ``noise`` controls task difficulty — larger values lower the attainable
    accuracy, which is how each synthetic dataset is tuned to land near the
    accuracy band its real counterpart reaches in the paper.
    """
    centroids = rng.normal(0.0, 1.0, size=(num_classes, feature_dim))
    feats = centroids[labels] + rng.normal(0.0, noise, size=(labels.size, feature_dim))
    return feats.astype(np.float32)


def powerlaw_community_graph(
    num_nodes: int,
    *,
    num_classes: int = 8,
    feature_dim: int = 64,
    exponent: float = 2.2,
    min_degree: int = 2,
    max_degree: int | None = None,
    homophily: float = 0.8,
    feature_noise: float = 1.0,
    seed: int = 0,
    name: str = "powerlaw-sbm",
) -> CSRGraph:
    """Degree-corrected SBM with power-law degrees and planted communities.

    Each stub connects within its own community with probability
    ``homophily``, otherwise to a uniformly random community.  Higher
    homophily makes message passing more informative (GNN accuracy rises),
    matching how real citation/co-purchase graphs behave.
    """
    if not 0.0 <= homophily <= 1.0:
        raise GraphError("homophily must lie in [0, 1]")
    if num_classes < 2:
        raise GraphError("need at least two classes for classification")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_nodes, dtype=np.int64)
    degrees = powerlaw_degrees(
        num_nodes,
        exponent=exponent,
        min_degree=min_degree,
        max_degree=max_degree,
        rng=rng,
    )

    # Pair stubs inside each community for the homophilous fraction, then pair
    # the remaining stubs globally.
    intra_mask = rng.random(int(degrees.sum())) < homophily
    stubs = np.repeat(np.arange(num_nodes, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    intra_stubs = stubs[intra_mask[: stubs.size]]
    inter_stubs = stubs[~intra_mask[: stubs.size]]

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for cls in range(num_classes):
        members = intra_stubs[labels[intra_stubs] == cls]
        half = members.size // 2
        if half:
            src_parts.append(members[:half])
            dst_parts.append(members[half : 2 * half])
    half = inter_stubs.size // 2
    if half:
        src_parts.append(inter_stubs[:half])
        dst_parts.append(inter_stubs[half : 2 * half])
    if not src_parts:
        raise GraphError("generated graph has no edges; increase degrees")
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)

    feats = community_features(
        labels, num_classes, feature_dim, noise=feature_noise, rng=rng
    )
    return CSRGraph.from_edges(
        num_nodes,
        src,
        dst,
        features=feats,
        labels=labels,
        num_classes=num_classes,
        name=name,
    )
