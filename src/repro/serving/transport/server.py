"""HTTP front-end over an in-process :class:`NavigationServer`.

:class:`NavigationHTTPServer` binds a ``ThreadingHTTPServer`` (stdlib; one
handler thread per connection) in front of an existing navigation server,
translating the wire protocol of :mod:`.protocol` into the same calls a
local :class:`~repro.serving.client.NavigationClient` would make.  The
navigation server stays the single source of truth — the transport owns no
job state beyond the idempotency replay table.

Endpoints (all under ``/v1``)::

    GET  /v1/health                     liveness + protocol version
    POST /v1/jobs                       submit one spec or a batch
    GET  /v1/jobs                       list job snapshots
    GET  /v1/jobs/<id>                  one job snapshot
    GET  /v1/jobs/<id>/result?timeout=  long-poll for the result
    GET  /v1/jobs/<id>/events?since=&timeout=  long-poll the progress stream
    POST /v1/jobs/<id>/cancel           cancel (PENDING drop / RUNNING coop)
    POST /v1/drain?timeout=             long-poll until all jobs terminal
    GET  /v1/stats                      profiling counters + store gauges
    GET  /v1/metrics                    flat MetricsRegistry scrape
    GET  /v1/fleet                      fleet census (executors, queues)
    GET  /v1/fleet/graph/<fingerprint>  graph arrays for remote executors
    POST /v1/fleet/register             join (or rejoin) the fleet
    POST /v1/fleet/heartbeat            liveness beat + lease renewal
    POST /v1/fleet/claim?               long-poll work pull (body timeout)
    POST /v1/fleet/commit               deliver finished records (idempotent)
    POST /v1/fleet/deregister           graceful fleet exit

Long-polls wait server-side up to ``min(timeout, MAX_POLL_SECONDS)`` per
round and return ``done=False`` for the client to re-arm, so a dead client
can never park a handler thread for more than one round.

Lifecycle::

    with NavigationServer(...) as nav, NavigationHTTPServer(nav) as http:
        print(http.url)        # e.g. http://127.0.0.1:43211
        ...                    # background thread serves until exit
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import (
    JobFailedError,
    ProtocolError,
    ReproError,
    ServerStoppingError,
    ServingError,
    UnknownExecutorError,
    UnknownJobError,
)
from repro.runtime.parallel import record_from_dict
from repro.serving.server import NavigationServer
from repro.serving.transport.protocol import (
    API_PREFIX,
    IDEMPOTENCY_HEADER,
    MAX_BODY_BYTES,
    MAX_POLL_SECONDS,
    PROTOCOL_VERSION,
    TENANT_HEADER,
    CancelResponse,
    DrainResponse,
    EventsResponse,
    FleetClaimRequest,
    FleetClaimResponse,
    FleetCommitRequest,
    FleetCommitResponse,
    FleetDeregisterResponse,
    FleetGraphResponse,
    FleetHeartbeatRequest,
    FleetHeartbeatResponse,
    FleetRegisterRequest,
    FleetRegisterResponse,
    FleetStatusResponse,
    HealthResponse,
    MetricsResponse,
    ResultResponse,
    StatsResponse,
    SubmitRequest,
    SubmitResponse,
    encode_error,
    error_body,
    graph_to_wire,
    parse_json,
    task_to_wire,
)
from repro.serving.types import JobStatus, NavigationRequest

__all__ = ["NavigationHTTPServer"]


def _http_status(exc: ReproError) -> int:
    """HTTP status code for a typed serving error."""
    if isinstance(exc, (UnknownJobError, UnknownExecutorError)):
        return 404
    if isinstance(exc, ProtocolError):
        return 400
    if isinstance(exc, ServerStoppingError):
        return 503
    return 400


class _Handler(BaseHTTPRequestHandler):
    """One request: route, delegate to the navigation server, reply JSON."""

    # HTTP/1.1 keeps client connections alive between long-poll rounds
    # (every response carries an explicit Content-Length).
    protocol_version = "HTTP/1.1"
    server: "_Server"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.transport.verbose:
            super().log_message(format, *args)

    def _reply(self, code: int, payload: dict, *, close: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, exc: BaseException) -> None:
        code = _http_status(exc) if isinstance(exc, ReproError) else 500
        # Error paths may reply before the request body was drained (routing
        # errors, oversize bodies); on a keep-alive connection the unread
        # bytes would be parsed as the next request line, so close instead.
        self._reply(code, error_body(exc), close=True)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    def _query_timeout(self, query: dict, default: float = 0.0) -> float:
        raw = query.get("timeout", [None])[0]
        if raw is None:
            return default
        try:
            timeout = float(raw)
        except ValueError:
            raise ProtocolError(f"invalid timeout {raw!r}") from None
        if timeout < 0:
            raise ProtocolError("timeout must be non-negative")
        return min(timeout, MAX_POLL_SECONDS)

    def _query_since(self, query: dict) -> int:
        raw = query.get("since", ["0"])[0]
        try:
            since = int(raw)
        except ValueError:
            raise ProtocolError(f"invalid since {raw!r}") from None
        if since < 0:
            raise ProtocolError("since must be non-negative")
        return since

    def _route(self) -> tuple[list[str], dict]:
        url = urlparse(self.path)
        if url.path != API_PREFIX and not url.path.startswith(API_PREFIX + "/"):
            raise UnknownJobError(
                f"unknown endpoint {url.path!r} (expected {API_PREFIX}/...)"
            )
        parts = [p for p in url.path[len(API_PREFIX) :].split("/") if p]
        return parts, parse_qs(url.query)

    # --------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler contract
        try:
            parts, query = self._route()
            nav = self.server.transport.navigation
            if parts == ["health"]:
                self._reply(
                    200,
                    HealthResponse(ok=True, jobs=len(nav.jobs())).to_wire(),
                )
            elif parts == ["stats"]:
                self._reply(200, self.server.transport._stats().to_wire())
            elif parts == ["metrics"]:
                self._reply(
                    200, MetricsResponse(nav.metrics.snapshot()).to_wire()
                )
            elif parts == ["fleet"]:
                census = nav.fleet.status()
                self._reply(
                    200,
                    FleetStatusResponse(
                        executors=census["executors"],
                        pending=census["pending"],
                        leased=census["leased"],
                    ).to_wire(),
                )
            elif len(parts) == 3 and parts[0] == "fleet" and parts[1] == "graph":
                graph = nav.fleet.graph(parts[2])
                self._reply(
                    200, FleetGraphResponse(graph_to_wire(graph)).to_wire()
                )
            elif parts == ["jobs"]:
                payload = {
                    "protocol": PROTOCOL_VERSION,
                    "jobs": [s.to_dict() for s in nav.snapshots()],
                }
                self._reply(200, payload)
            elif len(parts) == 2 and parts[0] == "jobs":
                snapshot = nav.snapshot(parts[1]).to_dict()
                snapshot["protocol"] = PROTOCOL_VERSION
                self._reply(200, snapshot)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                response = self.server.transport._poll_result(
                    parts[1], self._query_timeout(query)
                )
                self._reply(200, response.to_wire())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                batch = nav.events(
                    parts[1],
                    since=self._query_since(query),
                    timeout=self._query_timeout(query),
                )
                self._reply(
                    200,
                    EventsResponse(
                        done=batch.done,
                        next_seq=batch.next_seq,
                        gap=batch.gap,
                        events=[e.to_dict() for e in batch.events],
                    ).to_wire(),
                )
            else:
                raise UnknownJobError(f"unknown endpoint {self.path!r}")
        except Exception as exc:  # noqa: BLE001 — every reply must be JSON
            self._reply_error(exc)

    def do_POST(self) -> None:  # noqa: N802
        try:
            parts, query = self._route()
            raw = self._read_body()
            if parts == ["jobs"]:
                request = SubmitRequest.from_wire(
                    parse_json(raw),
                    header_key=self.headers.get(IDEMPOTENCY_HEADER),
                )
                response = self.server.transport._submit(
                    request, tenant_header=self.headers.get(TENANT_HEADER)
                )
                self._reply(200, response.to_wire())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                nav = self.server.transport.navigation
                cancelled = nav.cancel(parts[1])
                self._reply(200, CancelResponse(cancelled).to_wire())
            elif parts == ["drain"]:
                response = self.server.transport._drain(
                    self._query_timeout(query)
                )
                self._reply(200, response.to_wire())
            elif len(parts) == 2 and parts[0] == "fleet":
                self._fleet_post(parts[1], raw)
            else:
                raise UnknownJobError(f"unknown endpoint {self.path!r}")
        except Exception as exc:  # noqa: BLE001
            self._reply_error(exc)

    def _fleet_post(self, action: str, raw: bytes) -> None:
        """Dispatch one ``POST /v1/fleet/<action>`` to the dispatcher."""
        fleet = self.server.transport.navigation.fleet
        if action == "register":
            request = FleetRegisterRequest.from_wire(parse_json(raw))
            info = fleet.register(
                workers=request.workers, executor_id=request.executor_id
            )
            self._reply(
                200,
                FleetRegisterResponse(
                    executor_id=info.executor_id,
                    heartbeat_seconds=fleet.heartbeat_interval,
                    lease_ttl=fleet.lease_ttl,
                ).to_wire(),
            )
        elif action == "heartbeat":
            request = FleetHeartbeatRequest.from_wire(parse_json(raw))
            renewed = fleet.heartbeat(request.executor_id)
            self._reply(200, FleetHeartbeatResponse(renewed=renewed).to_wire())
        elif action == "claim":
            request = FleetClaimRequest.from_wire(parse_json(raw))
            grant = fleet.claim(
                request.executor_id,
                max_candidates=request.max_candidates,
                timeout=min(request.timeout, MAX_POLL_SECONDS),
            )
            self._reply(
                200,
                FleetClaimResponse(
                    lease_id=grant.lease_id,
                    ttl=grant.ttl,
                    task=None if grant.task is None else task_to_wire(grant.task),
                    dataset=grant.dataset,
                    fingerprint=grant.fingerprint,
                    keys=list(grant.keys),
                    configs=[config.to_dict() for config in grant.configs],
                ).to_wire(),
            )
        elif action == "commit":
            request = FleetCommitRequest.from_wire(
                parse_json(raw),
                header_key=self.headers.get(IDEMPOTENCY_HEADER),
            )
            try:
                records = [record_from_dict(r) for r in request.records]
            except (KeyError, TypeError, ValueError) as exc:
                raise ProtocolError(f"malformed record payload: {exc}") from None
            outcome = fleet.commit(
                request.executor_id,
                request.lease_id,
                request.keys,
                records,
                idempotency_key=request.idempotency_key,
            )
            self._reply(
                200,
                FleetCommitResponse(
                    accepted=outcome.accepted,
                    duplicates=outcome.duplicates,
                    replayed=outcome.replayed,
                ).to_wire(),
            )
        elif action == "deregister":
            request = FleetHeartbeatRequest.from_wire(parse_json(raw))
            existed = fleet.deregister(request.executor_id)
            self._reply(
                200, FleetDeregisterResponse(deregistered=existed).to_wire()
            )
        else:
            raise UnknownJobError(f"unknown fleet action {action!r}")


class _Server(ThreadingHTTPServer):
    daemon_threads = True  # handler threads must not outlive shutdown
    allow_reuse_address = True
    transport: "NavigationHTTPServer"


class NavigationHTTPServer:
    """Network transport wrapping one :class:`NavigationServer`.

    Parameters
    ----------
    navigation:
        The in-process server to expose.  Its lifecycle stays the caller's:
        stopping the transport does not stop the navigation server.
    host / port:
        Bind address; port ``0`` picks a free ephemeral port (tests).
    verbose:
        Log one line per request to stderr (the stdlib handler default);
        quiet by default because long-polling makes request logs noisy.
    """

    def __init__(
        self,
        navigation: NavigationServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.navigation = navigation
        self.verbose = verbose
        self._http = _Server((host, port), _Handler)
        self._http.transport = self
        self._thread: threading.Thread | None = None
        self._idempotency_lock = threading.Lock()
        #: (tenant, key) -> the SubmitResponse to replay on a retried POST.
        #: FIFO-bounded: a key only matters during its submit's retry window
        #: (seconds), so the oldest entries are safe to forget — without the
        #: cap a long-lived server would grow this dict per submit, forever.
        self._idempotency: OrderedDict[tuple[str, str], SubmitResponse] = (
            OrderedDict()
        )
        self._idempotency_cap = 4096

    # ------------------------------------------------------------ lifecycle
    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in a daemon background thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="nav-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (the CLI path)."""
        self._http.serve_forever()

    def stop(self) -> None:
        """Stop accepting connections and release the socket (idempotent)."""
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "NavigationHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- handlers
    def _submit(
        self, request: SubmitRequest, *, tenant_header: str | None
    ) -> SubmitResponse:
        """Enqueue the spec(s), replaying a known idempotency key.

        The replay table is checked and — after a successful submit —
        updated under one lock *around* the enqueue, so two racing retries
        with the same key serialize: the loser sees the winner's entry and
        replays it instead of double-enqueuing.
        """
        specs = []
        for spec in request.specs:
            if tenant_header and not spec.get("tenant"):
                spec = {**spec, "tenant": tenant_header}
            specs.append(spec)

        key = None
        if request.idempotency_key is not None:
            # Scope keys per tenant so two tenants choosing "retry-1" don't
            # collide; the first spec's lane names the scope.
            scope = specs[0].get("tenant", "") if specs else ""
            key = (scope, request.idempotency_key)

        with self._idempotency_lock:
            if key is not None:
                known = self._idempotency.get(key)
                if known is not None:
                    return SubmitResponse(
                        job_ids=known.job_ids,
                        batch=request.batch,
                        deduplicated=True,
                    )
            requests = [NavigationRequest.from_dict(spec) for spec in specs]
            job_ids = self.navigation.submit_many(requests)
            response = SubmitResponse(job_ids=job_ids, batch=request.batch)
            if key is not None:
                self._idempotency[key] = response
                while len(self._idempotency) > self._idempotency_cap:
                    self._idempotency.popitem(last=False)
            return response

    def _poll_result(self, job_id: str, timeout: float) -> ResultResponse:
        """One long-poll round: wait, then report the state it ended in."""
        nav = self.navigation
        snapshot = nav.wait(job_id, timeout)
        if not snapshot.done:
            return ResultResponse(done=False, status=snapshot.status.value)
        if snapshot.status is JobStatus.DONE:
            result = nav.job(job_id).result
            assert result is not None
            return ResultResponse(
                done=True,
                status=snapshot.status.value,
                result=result.to_dict(),
            )
        if snapshot.status is JobStatus.FAILED:
            error = encode_error(
                JobFailedError(job_id, snapshot.error or "", snapshot.traceback)
            )
        else:
            error = encode_error(ServingError(f"{job_id} was cancelled"))
        return ResultResponse(
            done=True, status=snapshot.status.value, error=error
        )

    def _drain(self, timeout: float) -> DrainResponse:
        try:
            self.navigation.drain(timeout)
            done = True
        except ServingError:
            done = False
        return DrainResponse(
            done=done,
            jobs=[s.to_dict() for s in self.navigation.snapshots()],
        )

    def _stats(self) -> StatsResponse:
        """The legacy ``/v1/stats`` shape, assembled from one registry scrape.

        Everything here is a view over :attr:`NavigationServer.metrics` —
        the registry is the single source, ``/v1/metrics`` is its raw
        scrape, and this response is the backwards-compatible projection.
        """
        nav = self.navigation
        snap = nav.metrics.snapshot()
        census = {
            "pending": int(snap.get("jobs_pending", 0)),
            "running": int(snap.get("jobs_running", 0)),
            "done": int(snap.get("jobs_done", 0)),
            "failed": int(snap.get("jobs_failed", 0)),
            "cancelled": int(snap.get("jobs_cancelled", 0)),
        }
        return StatsResponse(
            profiling={
                name: int(snap.get(f"profiling_{name}", 0))
                for name in (
                    "executed",
                    "cache_hits",
                    "deduplicated",
                    "shared_inflight",
                    "evictions",
                )
            },
            store={
                "entries": int(snap.get("store_entries", 0)),
                "bytes": int(snap.get("store_bytes", 0)),
                "pinned": int(snap.get("store_pinned", 0)),
                "persistent": nav.store is not None,
            },
            jobs={
                "total": int(snap.get("jobs_submitted", 0)),
                **{k: v for k, v in census.items() if v},
            },
        )
