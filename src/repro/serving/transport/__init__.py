"""Network transport for the navigation serving layer.

Splits the in-process :class:`~repro.serving.server.NavigationServer` /
:class:`~repro.serving.client.NavigationClient` pair across a socket:

* :mod:`.protocol` — the versioned wire format (request/response
  dataclasses, typed error envelopes, tenant + idempotency headers);
* :mod:`.server` — :class:`NavigationHTTPServer`, a stdlib
  ``ThreadingHTTPServer`` front-end over an existing navigation server;
* :mod:`.client` — :class:`RemoteNavigationClient` /
  :class:`RemoteJobHandle`, the in-process client surface re-implemented
  over HTTP long-polling, raising the same typed errors.

Callers are transport-agnostic by construction: both clients expose the
same methods with the same semantics, so a tenant moves between
``NavigationClient(server)`` and ``RemoteNavigationClient(url)`` by
swapping one constructor.
"""

from repro.serving.transport.client import (
    RemoteJobHandle,
    RemoteNavigationClient,
)
from repro.serving.transport.protocol import (
    API_PREFIX,
    IDEMPOTENCY_HEADER,
    PROTOCOL_VERSION,
    TENANT_HEADER,
)
from repro.serving.transport.server import NavigationHTTPServer

__all__ = [
    "API_PREFIX",
    "IDEMPOTENCY_HEADER",
    "PROTOCOL_VERSION",
    "TENANT_HEADER",
    "NavigationHTTPServer",
    "RemoteJobHandle",
    "RemoteNavigationClient",
]
