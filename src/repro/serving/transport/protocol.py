"""Versioned wire protocol of the navigation serving transport.

Everything that crosses the socket is defined here — request/response
dataclasses with ``to_wire``/``from_wire`` JSON mappings, the typed error
envelope that carries :mod:`repro.errors` across processes, and the two
transport headers — so :mod:`.server` and :mod:`.client` can only disagree
with each other by disagreeing with this module.

Versioning
----------
``PROTOCOL_VERSION`` names the wire format; the URL namespace embeds it
(``/v1/...``) and every response echoes it.  A server receiving a body whose
``protocol`` field names a different version rejects it with a
:class:`~repro.errors.ProtocolError` envelope instead of guessing.

Error envelope
--------------
Failures travel as ``{"error": {"kind", "message", ...}}`` where ``kind`` is
the :mod:`repro.errors` class name.  :func:`decode_error` reconstructs the
typed exception client-side, so ``except ServingError`` / ``except
JobFailedError`` behaves identically against a local and a remote server —
including :class:`JobFailedError`'s server-side traceback text.

Idempotent submission
---------------------
A client retrying a submit POST (connection dropped after the server read
the body but before the response landed) sends the same
``X-Repro-Idempotency-Key``; the server remembers ``(tenant, key) -> job
id`` and replays the original response instead of double-enqueuing.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.config.settings import TaskSpec
from repro.errors import (
    ConfigError,
    ExplorationError,
    GraphError,
    JobCancelled,
    JobFailedError,
    ProtocolError,
    ReproError,
    ServerStoppingError,
    ServingError,
    UnknownExecutorError,
    UnknownJobError,
)
from repro.graphs.csr import CSRGraph

__all__ = [
    "PROTOCOL_VERSION",
    "API_PREFIX",
    "TENANT_HEADER",
    "IDEMPOTENCY_HEADER",
    "MAX_POLL_SECONDS",
    "MAX_BODY_BYTES",
    "encode_error",
    "error_body",
    "decode_error",
    "parse_json",
    "check_protocol",
    "task_to_wire",
    "task_from_wire",
    "graph_to_wire",
    "graph_from_wire",
    "SubmitRequest",
    "SubmitResponse",
    "ResultResponse",
    "CancelResponse",
    "DrainResponse",
    "EventsResponse",
    "MetricsResponse",
    "StatsResponse",
    "FleetRegisterRequest",
    "FleetRegisterResponse",
    "FleetHeartbeatRequest",
    "FleetHeartbeatResponse",
    "FleetClaimRequest",
    "FleetClaimResponse",
    "FleetCommitRequest",
    "FleetCommitResponse",
    "FleetGraphResponse",
    "FleetStatusResponse",
    "FleetDeregisterResponse",
    "HealthResponse",
]

#: wire-format version; embedded in the URL namespace (``/v1``) and echoed
#: in every response body.  Bump on any incompatible payload change.
PROTOCOL_VERSION = 1

#: URL prefix every endpoint lives under.
API_PREFIX = f"/v{PROTOCOL_VERSION}"

#: names the fair-share lane of a request that does not carry its own
#: ``tenant`` field (the request body wins when both are present).
TENANT_HEADER = "X-Repro-Tenant"

#: submit-retry dedup key; scoped per tenant server-side.
IDEMPOTENCY_HEADER = "X-Repro-Idempotency-Key"

#: ceiling on one long-poll round's server-side wait.  Clients wanting a
#: longer overall timeout chain rounds; keeping each round short bounds how
#: long a dead client can park a handler thread.
MAX_POLL_SECONDS = 30.0

#: request bodies past this are rejected before parsing (a navigation spec
#: is a few hundred bytes; anything near this limit is not a spec).
MAX_BODY_BYTES = 4 * 2**20


# ------------------------------------------------------------ error envelope
#: exception types allowed to cross the wire, by envelope ``kind``.  Anything
#: else degrades to its nearest listed ancestor (ultimately ``ReproError``),
#: so an envelope can never instantiate an arbitrary class.
WIRE_ERRORS: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        GraphError,
        ConfigError,
        ExplorationError,
        ServingError,
        ServerStoppingError,
        UnknownJobError,
        UnknownExecutorError,
        JobCancelled,
        JobFailedError,
        ProtocolError,
    )
}


def encode_error(exc: BaseException) -> dict:
    """Error envelope payload for one exception.

    Non-``ReproError`` exceptions (handler bugs) are wrapped as plain
    ``ServingError`` envelopes — the client gets a typed failure either way
    and the server's internals stay server-side.
    """
    kind = type(exc).__name__
    if kind not in WIRE_ERRORS:
        for ancestor in type(exc).__mro__:
            if ancestor.__name__ in WIRE_ERRORS:
                kind = ancestor.__name__
                break
        else:
            kind = "ServingError"
    envelope: dict = {"kind": kind, "message": str(exc)}
    if isinstance(exc, JobFailedError):
        envelope["job_id"] = exc.job_id
        envelope["message"] = exc.message
        envelope["traceback"] = exc.traceback
    return envelope


def error_body(exc: BaseException) -> dict:
    """Full HTTP error response body wrapping :func:`encode_error`."""
    return {"error": encode_error(exc), "protocol": PROTOCOL_VERSION}


def decode_error(envelope: dict) -> ReproError:
    """Typed exception for one error envelope (the ``"error"`` value)."""
    kind = WIRE_ERRORS.get(envelope.get("kind", ""), ServingError)
    message = envelope.get("message", "remote serving error")
    if kind is JobFailedError:
        return JobFailedError(
            envelope.get("job_id", "<unknown job>"),
            message,
            envelope.get("traceback"),
        )
    return kind(message)


# ---------------------------------------------------------------- primitives
def parse_json(raw: bytes) -> dict:
    """Decode one JSON object body; :class:`ProtocolError` on anything else."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def check_protocol(payload: dict) -> None:
    """Reject bodies from a different protocol version (missing = current)."""
    version = payload.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: server speaks {PROTOCOL_VERSION}, "
            f"request carries {version!r}"
        )


# ------------------------------------------------------- fleet wire payloads
#: the comparable TaskSpec fields — exactly the set ``candidate_key`` hashes,
#: so a task that round-trips the wire lands on the same candidate keys.
_TASK_WIRE_FIELDS = tuple(
    f.name for f in dataclasses.fields(TaskSpec) if f.compare
)


def task_to_wire(task: TaskSpec) -> dict:
    """JSON-friendly encoding of a :class:`TaskSpec` (comparable fields)."""
    return {name: getattr(task, name) for name in _TASK_WIRE_FIELDS}


def task_from_wire(data: dict) -> TaskSpec:
    """Inverse of :func:`task_to_wire`; :class:`ProtocolError` on bad shape."""
    if not isinstance(data, dict):
        raise ProtocolError("task payload must be a JSON object")
    try:
        return TaskSpec(**{name: data[name] for name in _TASK_WIRE_FIELDS})
    except KeyError as exc:
        raise ProtocolError(f"task payload missing field {exc}") from None
    except TypeError as exc:
        raise ProtocolError(f"malformed task payload: {exc}") from None


#: the CSRGraph arrays that cross the wire (same set graph_fingerprint hashes).
_GRAPH_ARRAYS = ("indptr", "indices", "features", "labels")


def graph_to_wire(graph: CSRGraph) -> dict:
    """Base64-array encoding of a graph for ``GET /v1/fleet/graph/<fp>``.

    Each array travels with its dtype and shape tags; optional arrays
    (features, labels) encode as ``null``.  Feeds ``tobytes`` per array —
    graph fetches are a cold path that happens once per (executor, graph).
    """
    arrays: dict = {}
    for tag in _GRAPH_ARRAYS:
        arr = getattr(graph, tag)
        if arr is None:
            arrays[tag] = None
            continue
        arrays[tag] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "data": base64.b64encode(
                np.ascontiguousarray(arr).tobytes()
            ).decode("ascii"),
        }
    return {
        "name": graph.name,
        "num_classes": int(graph.num_classes),
        "arrays": arrays,
    }


def graph_from_wire(data: dict) -> CSRGraph:
    """Inverse of :func:`graph_to_wire`; :class:`ProtocolError` on bad shape."""
    if not isinstance(data, dict) or not isinstance(data.get("arrays"), dict):
        raise ProtocolError("graph payload must carry an 'arrays' object")
    arrays: dict = {}
    for tag in _GRAPH_ARRAYS:
        spec = data["arrays"].get(tag)
        if spec is None:
            arrays[tag] = None
            continue
        try:
            raw = base64.b64decode(spec["data"])
            # .copy(): frombuffer views are read-only; CSRGraph validation
            # and training both expect ordinary writable arrays.
            arrays[tag] = (
                np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
                .reshape(spec["shape"])
                .copy()
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed graph array {tag!r}: {exc}"
            ) from None
    if arrays["indptr"] is None or arrays["indices"] is None:
        raise ProtocolError("graph payload missing indptr/indices arrays")
    return CSRGraph(
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        features=arrays["features"],
        labels=arrays["labels"],
        num_classes=int(data.get("num_classes", 0)),
        name=str(data.get("name", "graph")),
    )


# --------------------------------------------------------- request dataclasses
@dataclass(frozen=True)
class SubmitRequest:
    """``POST /v1/jobs`` body: one or more request specs to enqueue.

    ``specs`` are :meth:`NavigationRequest.to_dict` payloads (the job-file
    format).  ``idempotency_key`` may also arrive via the header; the body
    field wins.  A single-spec submit and a batch share one shape — the
    response mirrors whichever arity was sent.
    """

    specs: list[dict]
    idempotency_key: str | None = None
    batch: bool = False

    def to_wire(self) -> dict:
        out: dict = {"protocol": PROTOCOL_VERSION}
        if self.batch:
            out["requests"] = self.specs
        else:
            out["request"] = self.specs[0]
        if self.idempotency_key is not None:
            out["idempotency_key"] = self.idempotency_key
        return out

    @classmethod
    def from_wire(cls, payload: dict, *, header_key: str | None = None):
        check_protocol(payload)
        if "request" in payload:
            specs, batch = [payload["request"]], False
        elif "requests" in payload:
            specs, batch = payload["requests"], True
            if not isinstance(specs, list):
                raise ProtocolError("'requests' must be a JSON list")
        else:
            raise ProtocolError(
                "submit body needs a 'request' object or a 'requests' list"
            )
        for spec in specs:
            if not isinstance(spec, dict):
                raise ProtocolError("every request spec must be a JSON object")
        key = payload.get("idempotency_key", header_key)
        if key is not None and not isinstance(key, str):
            raise ProtocolError("idempotency_key must be a string")
        return cls(specs=specs, idempotency_key=key, batch=batch)


# -------------------------------------------------------- response dataclasses
@dataclass(frozen=True)
class SubmitResponse:
    """Submit outcome: the accepted job id(s).

    ``deduplicated`` is ``True`` when an idempotency key matched a previous
    submit and the original ids were replayed (nothing was enqueued).
    """

    job_ids: list[str]
    batch: bool = False
    deduplicated: bool = False

    def to_wire(self) -> dict:
        out: dict = {
            "protocol": PROTOCOL_VERSION,
            "deduplicated": self.deduplicated,
        }
        if self.batch:
            out["job_ids"] = self.job_ids
        else:
            out["job_id"] = self.job_ids[0]
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "SubmitResponse":
        check_protocol(payload)
        if "job_ids" in payload:
            return cls(
                job_ids=list(payload["job_ids"]),
                batch=True,
                deduplicated=payload.get("deduplicated", False),
            )
        if "job_id" not in payload:
            raise ProtocolError("submit response carries no job id")
        return cls(
            job_ids=[payload["job_id"]],
            deduplicated=payload.get("deduplicated", False),
        )


@dataclass(frozen=True)
class ResultResponse:
    """Long-poll result round: terminal payload or a keep-polling status.

    ``done=False`` means the wait timed out server-side with the job still
    live (``status`` says where it is) — the client simply opens the next
    round.  ``done=True`` carries exactly one of ``result`` (a
    :meth:`JobResult.to_dict` payload) or ``error`` (an error envelope for
    FAILED/CANCELLED jobs, decoded client-side into the same exception the
    in-process path raises).
    """

    done: bool
    status: str
    result: dict | None = None
    error: dict | None = None

    def to_wire(self) -> dict:
        out: dict = {
            "protocol": PROTOCOL_VERSION,
            "done": self.done,
            "status": self.status,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "ResultResponse":
        check_protocol(payload)
        if "done" not in payload or "status" not in payload:
            raise ProtocolError("result response needs 'done' and 'status'")
        return cls(
            done=payload["done"],
            status=payload["status"],
            result=payload.get("result"),
            error=payload.get("error"),
        )


@dataclass(frozen=True)
class CancelResponse:
    """``POST /v1/jobs/<id>/cancel`` outcome (mirrors ``server.cancel``)."""

    cancelled: bool

    def to_wire(self) -> dict:
        return {"protocol": PROTOCOL_VERSION, "cancelled": self.cancelled}

    @classmethod
    def from_wire(cls, payload: dict) -> "CancelResponse":
        check_protocol(payload)
        return cls(cancelled=bool(payload.get("cancelled")))


@dataclass(frozen=True)
class DrainResponse:
    """One drain round: every job's snapshot plus whether all are terminal."""

    done: bool
    jobs: list[dict] = field(default_factory=list)

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "done": self.done,
            "jobs": self.jobs,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "DrainResponse":
        check_protocol(payload)
        return cls(
            done=bool(payload.get("done")), jobs=list(payload.get("jobs", []))
        )


@dataclass(frozen=True)
class EventsResponse:
    """``GET /v1/jobs/<id>/events``: one long-poll round of the job's
    progress-event stream.

    ``events`` are :meth:`JobProgressEvent.to_dict` payloads in sequence
    order; ``next_seq`` is the ``since=`` of the next round (resumption
    across client disconnects rides this number); ``gap`` counts events
    the server's ring buffer dropped before the first one returned; and
    ``done`` means the stream has ended — the job is terminal and its
    terminal event is in (or before) this batch, so the client stops
    re-arming.
    """

    done: bool
    next_seq: int
    gap: int = 0
    events: list[dict] = field(default_factory=list)

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "done": self.done,
            "next_seq": self.next_seq,
            "gap": self.gap,
            "events": self.events,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "EventsResponse":
        check_protocol(payload)
        if "done" not in payload or "next_seq" not in payload:
            raise ProtocolError("events response needs 'done' and 'next_seq'")
        return cls(
            done=bool(payload["done"]),
            next_seq=int(payload["next_seq"]),
            gap=int(payload.get("gap", 0)),
            events=list(payload.get("events", [])),
        )


@dataclass(frozen=True)
class MetricsResponse:
    """``GET /v1/metrics``: one flat name -> value scrape of the server's
    :class:`~repro.serving.metrics.MetricsRegistry` (counters and gauges
    share the namespace; gauges are evaluated at scrape time)."""

    metrics: dict

    def to_wire(self) -> dict:
        return {"protocol": PROTOCOL_VERSION, "metrics": self.metrics}

    @classmethod
    def from_wire(cls, payload: dict) -> "MetricsResponse":
        check_protocol(payload)
        if "metrics" not in payload:
            raise ProtocolError("metrics response carries no 'metrics'")
        return cls(metrics=dict(payload["metrics"]))


@dataclass(frozen=True)
class StatsResponse:
    """``GET /v1/stats``: profiling counters, store gauges, job census."""

    profiling: dict
    store: dict
    jobs: dict

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "profiling": self.profiling,
            "store": self.store,
            "jobs": self.jobs,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "StatsResponse":
        check_protocol(payload)
        try:
            return cls(
                profiling=payload["profiling"],
                store=payload["store"],
                jobs=payload["jobs"],
            )
        except KeyError as exc:
            raise ProtocolError(f"stats response missing {exc}") from None


# --------------------------------------------------------- fleet dataclasses
@dataclass(frozen=True)
class FleetRegisterRequest:
    """``POST /v1/fleet/register`` body: join (or rejoin) the fleet.

    ``executor_id`` is ``None`` on first contact (the server assigns one)
    and carries the previously-assigned id on re-registration after a
    server restart or heartbeat gap, so the executor keeps its ring arcs.
    """

    workers: int = 1
    executor_id: str | None = None

    def to_wire(self) -> dict:
        out: dict = {"protocol": PROTOCOL_VERSION, "workers": self.workers}
        if self.executor_id is not None:
            out["executor_id"] = self.executor_id
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetRegisterRequest":
        check_protocol(payload)
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise ProtocolError("workers must be a positive integer")
        executor_id = payload.get("executor_id")
        if executor_id is not None and not isinstance(executor_id, str):
            raise ProtocolError("executor_id must be a string")
        return cls(workers=workers, executor_id=executor_id)


@dataclass(frozen=True)
class FleetRegisterResponse:
    """Registration grant: the executor's id and its timing contract."""

    executor_id: str
    heartbeat_seconds: float
    lease_ttl: float

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "executor_id": self.executor_id,
            "heartbeat_seconds": self.heartbeat_seconds,
            "lease_ttl": self.lease_ttl,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetRegisterResponse":
        check_protocol(payload)
        try:
            return cls(
                executor_id=payload["executor_id"],
                heartbeat_seconds=float(payload["heartbeat_seconds"]),
                lease_ttl=float(payload["lease_ttl"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed register response: {exc}"
            ) from None


@dataclass(frozen=True)
class FleetHeartbeatRequest:
    """``POST /v1/fleet/heartbeat`` body: liveness + lease renewal."""

    executor_id: str

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "executor_id": self.executor_id,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetHeartbeatRequest":
        check_protocol(payload)
        executor_id = payload.get("executor_id")
        if not isinstance(executor_id, str):
            raise ProtocolError("heartbeat needs a string executor_id")
        return cls(executor_id=executor_id)


@dataclass(frozen=True)
class FleetHeartbeatResponse:
    """Heartbeat ack: how many of the executor's leases were renewed."""

    renewed: int

    def to_wire(self) -> dict:
        return {"protocol": PROTOCOL_VERSION, "renewed": self.renewed}

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetHeartbeatResponse":
        check_protocol(payload)
        return cls(renewed=int(payload.get("renewed", 0)))


@dataclass(frozen=True)
class FleetClaimRequest:
    """``POST /v1/fleet/claim`` body: one work-pull long-poll round."""

    executor_id: str
    max_candidates: int | None = None
    timeout: float = 0.0

    def to_wire(self) -> dict:
        out: dict = {
            "protocol": PROTOCOL_VERSION,
            "executor_id": self.executor_id,
            "timeout": self.timeout,
        }
        if self.max_candidates is not None:
            out["max_candidates"] = self.max_candidates
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetClaimRequest":
        check_protocol(payload)
        executor_id = payload.get("executor_id")
        if not isinstance(executor_id, str):
            raise ProtocolError("claim needs a string executor_id")
        max_candidates = payload.get("max_candidates")
        if max_candidates is not None and (
            not isinstance(max_candidates, int) or max_candidates < 1
        ):
            raise ProtocolError("max_candidates must be a positive integer")
        try:
            timeout = float(payload.get("timeout", 0.0))
        except (TypeError, ValueError):
            raise ProtocolError("timeout must be a number") from None
        return cls(
            executor_id=executor_id,
            max_candidates=max_candidates,
            timeout=timeout,
        )


@dataclass(frozen=True)
class FleetClaimResponse:
    """One claim outcome: a leased batch, or empty (``lease_id`` null).

    ``task`` is a :func:`task_to_wire` payload and ``configs`` are
    :meth:`TrainingConfig.to_dict` payloads, key-aligned with ``keys``.
    ``fingerprint`` names the graph: executors resolve it locally by
    dataset name when the fingerprints match, else fetch it from
    ``/v1/fleet/graph/<fingerprint>``.
    """

    lease_id: str | None
    ttl: float
    task: dict | None = None
    dataset: str | None = None
    fingerprint: str | None = None
    keys: list = field(default_factory=list)
    configs: list = field(default_factory=list)

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "lease_id": self.lease_id,
            "ttl": self.ttl,
            "task": self.task,
            "dataset": self.dataset,
            "fingerprint": self.fingerprint,
            "keys": list(self.keys),
            "configs": list(self.configs),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetClaimResponse":
        check_protocol(payload)
        if "lease_id" not in payload or "ttl" not in payload:
            raise ProtocolError("claim response needs 'lease_id' and 'ttl'")
        keys = list(payload.get("keys", []))
        configs = list(payload.get("configs", []))
        if len(keys) != len(configs):
            raise ProtocolError(
                "claim response keys/configs are not the same length"
            )
        return cls(
            lease_id=payload["lease_id"],
            ttl=float(payload["ttl"]),
            task=payload.get("task"),
            dataset=payload.get("dataset"),
            fingerprint=payload.get("fingerprint"),
            keys=keys,
            configs=configs,
        )

    @property
    def empty(self) -> bool:
        return self.lease_id is None


@dataclass(frozen=True)
class FleetCommitRequest:
    """``POST /v1/fleet/commit`` body: finished records coming home.

    ``records`` are ``record_to_dict`` payloads, key-aligned with ``keys``.
    ``idempotency_key`` (body field wins over the shared
    ``X-Repro-Idempotency-Key`` header) lets a retried commit replay its
    original outcome instead of double-counting; executors use the lease id.
    """

    executor_id: str
    lease_id: str | None
    keys: list
    records: list
    idempotency_key: str | None = None

    def to_wire(self) -> dict:
        out: dict = {
            "protocol": PROTOCOL_VERSION,
            "executor_id": self.executor_id,
            "lease_id": self.lease_id,
            "keys": list(self.keys),
            "records": list(self.records),
        }
        if self.idempotency_key is not None:
            out["idempotency_key"] = self.idempotency_key
        return out

    @classmethod
    def from_wire(
        cls, payload: dict, *, header_key: str | None = None
    ) -> "FleetCommitRequest":
        check_protocol(payload)
        executor_id = payload.get("executor_id")
        if not isinstance(executor_id, str):
            raise ProtocolError("commit needs a string executor_id")
        keys = payload.get("keys")
        records = payload.get("records")
        if not isinstance(keys, list) or not isinstance(records, list):
            raise ProtocolError("commit needs 'keys' and 'records' lists")
        if len(keys) != len(records):
            raise ProtocolError(
                f"commit carries {len(keys)} keys but {len(records)} records"
            )
        for record in records:
            if not isinstance(record, dict):
                raise ProtocolError("every record must be a JSON object")
        key = payload.get("idempotency_key", header_key)
        if key is not None and not isinstance(key, str):
            raise ProtocolError("idempotency_key must be a string")
        return cls(
            executor_id=executor_id,
            lease_id=payload.get("lease_id"),
            keys=keys,
            records=records,
            idempotency_key=key,
        )


@dataclass(frozen=True)
class FleetCommitResponse:
    """Commit outcome: accepted vs duplicate counts, and whether this
    response was replayed from the idempotency table."""

    accepted: int
    duplicates: int
    replayed: bool = False

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "replayed": self.replayed,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetCommitResponse":
        check_protocol(payload)
        if "accepted" not in payload:
            raise ProtocolError("commit response carries no 'accepted'")
        return cls(
            accepted=int(payload["accepted"]),
            duplicates=int(payload.get("duplicates", 0)),
            replayed=bool(payload.get("replayed", False)),
        )


@dataclass(frozen=True)
class FleetGraphResponse:
    """``GET /v1/fleet/graph/<fp>``: one :func:`graph_to_wire` payload."""

    graph: dict

    def to_wire(self) -> dict:
        return {"protocol": PROTOCOL_VERSION, "graph": self.graph}

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetGraphResponse":
        check_protocol(payload)
        if "graph" not in payload:
            raise ProtocolError("graph response carries no 'graph'")
        return cls(graph=dict(payload["graph"]))


@dataclass(frozen=True)
class FleetStatusResponse:
    """``GET /v1/fleet``: the dispatcher's census (executor rows plus
    pending/leased queue depths)."""

    executors: list
    pending: int
    leased: int

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "executors": list(self.executors),
            "pending": self.pending,
            "leased": self.leased,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetStatusResponse":
        check_protocol(payload)
        if "executors" not in payload:
            raise ProtocolError("fleet status carries no 'executors'")
        return cls(
            executors=list(payload["executors"]),
            pending=int(payload.get("pending", 0)),
            leased=int(payload.get("leased", 0)),
        )


@dataclass(frozen=True)
class FleetDeregisterResponse:
    """``POST /v1/fleet/deregister``: whether the executor was known."""

    deregistered: bool

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "deregistered": self.deregistered,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "FleetDeregisterResponse":
        check_protocol(payload)
        return cls(deregistered=bool(payload.get("deregistered")))


@dataclass(frozen=True)
class HealthResponse:
    """``GET /v1/health``: liveness plus the resident job count."""

    ok: bool
    jobs: int

    def to_wire(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "ok": self.ok,
            "jobs": self.jobs,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "HealthResponse":
        check_protocol(payload)
        return cls(
            ok=bool(payload.get("ok")), jobs=int(payload.get("jobs", 0))
        )
