"""Remote tenant handle: the :class:`NavigationClient` surface over HTTP.

:class:`RemoteNavigationClient` speaks the :mod:`.protocol` wire format to a
:class:`~repro.serving.transport.server.NavigationHTTPServer` using only the
stdlib (``urllib``).  It mirrors the in-process client call for call —
``submit`` / ``submit_many`` / ``navigate`` / ``navigate_many`` return
:class:`RemoteJobHandle`\\ s with the same ``status`` / ``done`` /
``result`` / ``cancel`` surface as :class:`~repro.serving.client.JobHandle`
— so callers are transport-agnostic: swap the constructor, keep the code.

Error behaviour matches too: the server ships typed error envelopes and the
client re-raises the same :mod:`repro.errors` types the in-process path
raises, including :class:`~repro.errors.JobFailedError` with the
server-side traceback.

Reliability: ``result`` long-polls in bounded rounds (the server never
holds a request longer than ``MAX_POLL_SECONDS``), and ``submit`` attaches
an idempotency key and retries connection-level failures with the *same*
key, so a POST whose response was lost re-lands on the original job instead
of enqueuing a duplicate.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Iterator

from repro.config.settings import TaskSpec
from repro.errors import ProtocolError, ServingError
from repro.serving.events import (
    EventBatch,
    JobProgressEvent,
    watch_events,
)
from repro.serving.transport.protocol import (
    API_PREFIX,
    IDEMPOTENCY_HEADER,
    MAX_POLL_SECONDS,
    PROTOCOL_VERSION,
    TENANT_HEADER,
    CancelResponse,
    DrainResponse,
    EventsResponse,
    HealthResponse,
    MetricsResponse,
    ResultResponse,
    StatsResponse,
    SubmitRequest,
    SubmitResponse,
    decode_error,
)
from repro.serving.types import (
    JobResult,
    JobSnapshot,
    JobStatus,
    NavigationRequest,
)

__all__ = ["RemoteJobHandle", "RemoteNavigationClient"]


class RemoteJobHandle:
    """One remotely-submitted job; mirrors the in-process ``JobHandle``."""

    def __init__(self, client: "RemoteNavigationClient", job_id: str) -> None:
        self.client = client
        self.job_id = job_id

    def snapshot(self) -> JobSnapshot:
        """Consistent point-in-time view of the job's observable state."""
        return self.client.snapshot(self.job_id)

    @property
    def status(self) -> JobStatus:
        return self.snapshot().status

    @property
    def done(self) -> bool:
        return self.snapshot().done

    def result(self, timeout: float | None = None) -> JobResult:
        """Long-poll for the result; raises
        :class:`~repro.errors.JobFailedError` on FAILED jobs."""
        return self.client.result(self.job_id, timeout)

    def events(
        self, since: int = 0, timeout: float | None = None
    ) -> EventBatch:
        """One bounded read of the job's progress events (resume with the
        returned ``next_seq``); same surface as the in-process handle."""
        return self.client.events(self.job_id, since=since, timeout=timeout)

    def watch(self, since: int = 0) -> Iterator[JobProgressEvent]:
        """Stream progress events until the job's stream ends; survives
        disconnects by resuming from the last delivered sequence number."""
        return self.client.watch(self.job_id, since=since)

    def cancel(self) -> bool:
        return self.client.cancel(self.job_id)

    def __repr__(self) -> str:
        # No status here: repr must stay cheap and non-raising, and status
        # is a network round trip on this side of the transport.
        return f"RemoteJobHandle({self.job_id} @ {self.client.url})"


class RemoteNavigationClient:
    """A named tenant submitting navigation requests over the network.

    Parameters
    ----------
    url:
        Server base URL, e.g. ``http://127.0.0.1:8765`` (the ``/v1``
        namespace is appended here).
    tenant:
        Fair-share lane every request from this client rides (sent as the
        ``X-Repro-Tenant`` header; a request's own ``tenant`` field wins).
    request_timeout:
        Socket-level timeout for one HTTP round trip.  Long-poll rounds add
        their poll window on top, so a slow result never trips it.
    retries:
        Connection-level retries (server unreachable, response lost) for
        idempotent calls — GETs, and submits keyed for replay.
    """

    def __init__(
        self,
        url: str,
        *,
        tenant: str = "",
        request_timeout: float = 30.0,
        retries: int = 2,
    ) -> None:
        if retries < 0:
            raise ServingError("retries must be non-negative")
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.request_timeout = request_timeout
        self.retries = retries

    # -------------------------------------------------------------- plumbing
    def _call(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
        retry: bool = False,
        extra_timeout: float = 0.0,
    ) -> dict:
        """One HTTP round trip; returns the parsed JSON response body.

        Server-reported failures arrive as typed error envelopes and are
        re-raised as the corresponding :mod:`repro.errors` exception.
        Connection-level failures raise :class:`ServingError` after
        ``retries`` attempts (only when ``retry`` — the call must be
        idempotent).
        """
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}{API_PREFIX}{path}", data=data, method=method
        )
        request.add_header("Content-Type", "application/json")
        if self.tenant:
            request.add_header(TENANT_HEADER, self.tenant)
        for name, value in (headers or {}).items():
            request.add_header(name, value)

        attempts = (self.retries if retry else 0) + 1
        last_exc: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(min(0.05 * 2**attempt, 1.0))
            try:
                with urllib.request.urlopen(
                    request, timeout=self.request_timeout + extra_timeout
                ) as response:
                    payload = json.loads(response.read().decode("utf-8"))
                break
            except urllib.error.HTTPError as exc:
                # The server replied: decode its typed envelope (no retry —
                # the request was received and rejected).
                try:
                    envelope = json.loads(exc.read().decode("utf-8"))
                except ValueError:
                    raise ProtocolError(
                        f"non-protocol error response (HTTP {exc.code})"
                    ) from None
                raise decode_error(envelope.get("error", {})) from None
            except (urllib.error.URLError, OSError, ValueError) as exc:
                last_exc = exc
        else:
            raise ServingError(
                f"cannot reach navigation server at {self.url}: {last_exc}"
            ) from last_exc
        version = payload.get("protocol")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client speaks "
                f"{PROTOCOL_VERSION}, server replied {version!r}"
            )
        return payload

    def _build(
        self, task: TaskSpec | NavigationRequest, **kwargs
    ) -> NavigationRequest:
        if isinstance(task, NavigationRequest):
            return task
        kwargs.setdefault("tag", self.tenant)
        kwargs.setdefault("tenant", self.tenant)
        return NavigationRequest(task=task, **kwargs)

    def _submit_specs(self, specs: list[dict], *, batch: bool) -> list[str]:
        request = SubmitRequest(
            specs=specs, idempotency_key=str(uuid.uuid4()), batch=batch
        )
        payload = self._call(
            "POST",
            "/jobs",
            body=request.to_wire(),
            headers={IDEMPOTENCY_HEADER: request.idempotency_key},
            retry=True,  # safe: retries replay the same idempotency key
        )
        return SubmitResponse.from_wire(payload).job_ids

    # ------------------------------------------------------------------ API
    def health(self) -> dict:
        """Liveness probe; raises :class:`ServingError` when unreachable."""
        payload = self._call("GET", "/health", retry=True)
        HealthResponse.from_wire(payload)  # validate the wire shape
        return payload

    def submit(
        self, task: TaskSpec | NavigationRequest, **kwargs
    ) -> RemoteJobHandle:
        """Submit one request (a :class:`TaskSpec` plus request kwargs, or a
        ready-made :class:`NavigationRequest`)."""
        request = self._build(task, **kwargs)
        job_ids = self._submit_specs([request.to_dict()], batch=False)
        return RemoteJobHandle(self, job_ids[0])

    def submit_many(
        self, tasks: list[TaskSpec | NavigationRequest], **kwargs
    ) -> list[RemoteJobHandle]:
        """Submit a batch; one handle per task, in order.  The batch rides
        one POST (and one idempotency key), so a retried batch can never
        partially double-enqueue."""
        specs = [self._build(task, **kwargs).to_dict() for task in tasks]
        return [
            RemoteJobHandle(self, job_id)
            for job_id in self._submit_specs(specs, batch=True)
        ]

    def navigate(
        self,
        task: TaskSpec | NavigationRequest,
        *,
        timeout: float | None = None,
        **kwargs,
    ) -> JobResult:
        """Submit and block for the result (the one-call convenience)."""
        return self.submit(task, **kwargs).result(timeout)

    def navigate_many(
        self,
        tasks: list[TaskSpec | NavigationRequest],
        *,
        timeout: float | None = None,
        **kwargs,
    ) -> list[JobResult]:
        """Submit a batch and block for every result, in submission order."""
        handles = self.submit_many(tasks, **kwargs)
        return [handle.result(timeout) for handle in handles]

    def snapshot(self, job_id: str) -> JobSnapshot:
        """One consistent view of a job's observable state."""
        payload = self._call("GET", f"/jobs/{job_id}", retry=True)
        payload.pop("protocol", None)
        return JobSnapshot.from_dict(payload)

    def status(self, job_id: str) -> JobStatus:
        """Current lifecycle state of a job."""
        return self.snapshot(job_id).status

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its result.

        Implemented as chained long-poll rounds: the server holds each GET
        up to ``MAX_POLL_SECONDS``, replies "not done yet", and the client
        re-arms until the job lands or ``timeout`` elapses.  Outcomes match
        the in-process path: :class:`~repro.errors.JobFailedError` on
        FAILED, :class:`ServingError` on cancellation or timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # Poll before checking the deadline: timeout=0 is the
            # non-blocking "return it if it's ready" probe, same as the
            # in-process Condition.wait_for(pred, 0) checking once.
            window = (
                MAX_POLL_SECONDS
                if deadline is None
                else max(
                    0.0, min(deadline - time.monotonic(), MAX_POLL_SECONDS)
                )
            )
            payload = self._call(
                "GET",
                f"/jobs/{job_id}/result?timeout={window:.3f}",
                retry=True,
                extra_timeout=window,
            )
            response = ResultResponse.from_wire(payload)
            if not response.done:
                if deadline is not None and time.monotonic() >= deadline:
                    raise ServingError(f"timed out waiting for {job_id}")
                continue
            if response.error is not None:
                raise decode_error(response.error)
            if response.result is None:
                raise ProtocolError(
                    f"terminal result response for {job_id} carries "
                    "neither result nor error"
                )
            return JobResult.from_dict(response.result)

    def events(
        self, job_id: str, since: int = 0, timeout: float | None = None
    ) -> EventBatch:
        """One long-poll round of a job's progress-event stream.

        Mirrors ``NavigationServer.events`` exactly: events with
        ``seq >= since`` (waiting up to ``timeout`` for the first new one,
        capped server-side at ``MAX_POLL_SECONDS``), the ``next_seq`` to
        resume from, the ring-drop ``gap``, and ``done`` once the stream
        has ended.  Safe to retry: reading is idempotent.
        """
        if since < 0:
            raise ServingError("since must be non-negative")
        window = MAX_POLL_SECONDS if timeout is None else timeout
        window = max(0.0, min(window, MAX_POLL_SECONDS))
        payload = self._call(
            "GET",
            f"/jobs/{job_id}/events?since={since}&timeout={window:.3f}",
            retry=True,
            extra_timeout=window,
        )
        response = EventsResponse.from_wire(payload)
        return EventBatch(
            events=[JobProgressEvent.from_dict(e) for e in response.events],
            next_seq=response.next_seq,
            gap=response.gap,
            done=response.done,
        )

    def watch(self, job_id: str, since: int = 0) -> Iterator[JobProgressEvent]:
        """Stream a job's progress events until its stream ends.

        Chained ``events`` rounds: each round resumes at the previous
        ``next_seq``, so a dropped connection (the round retries) or a
        recreated client loses nothing the server's ring still holds —
        and anything the ring did drop surfaces as an explicit gap-marker
        event rather than a silent skip.
        """
        return watch_events(
            lambda since, timeout: self.events(job_id, since=since, timeout=timeout),
            job_id,
            since=since,
        )

    def cancel(self, job_id: str) -> bool:
        """Cancel a job (PENDING drop / cooperative RUNNING cancel)."""
        payload = self._call("POST", f"/jobs/{job_id}/cancel")
        return CancelResponse.from_wire(payload).cancelled

    def drain(self, timeout: float | None = None) -> list[JobSnapshot]:
        """Block until every accepted job is terminal; returns snapshots.

        Raises :class:`ServingError` on timeout, like the in-process
        ``server.drain``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # As in result(): always poll once, so timeout=0 still drains an
            # already-idle server instead of raising unconditionally.
            window = (
                MAX_POLL_SECONDS
                if deadline is None
                else max(
                    0.0, min(deadline - time.monotonic(), MAX_POLL_SECONDS)
                )
            )
            payload = self._call(
                "POST",
                f"/drain?timeout={window:.3f}",
                retry=True,
                extra_timeout=window,
            )
            response = DrainResponse.from_wire(payload)
            if response.done:
                return [JobSnapshot.from_dict(job) for job in response.jobs]
            if deadline is not None and time.monotonic() >= deadline:
                raise ServingError("timed out draining the server")

    def stats(self) -> StatsResponse:
        """Server-side profiling counters, store gauges and job census."""
        return StatsResponse.from_wire(self._call("GET", "/stats", retry=True))

    def metrics(self) -> dict:
        """One flat scrape of the server's metrics registry."""
        payload = self._call("GET", "/metrics", retry=True)
        return MetricsResponse.from_wire(payload).metrics

    def jobs(self) -> list[JobSnapshot]:
        """Every accepted job's snapshot, in submission order."""
        payload = self._call("GET", "/jobs", retry=True)
        return [JobSnapshot.from_dict(job) for job in payload["jobs"]]
