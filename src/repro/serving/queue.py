"""Thread-safe priority queue of job ids with lazy cancellation.

The server pushes job ids tagged with a client priority; worker threads pop
the highest-priority id, FIFO within a priority level.  Cancellation is
*lazy*: :meth:`PriorityJobQueue.discard` marks the id and the heap entry is
dropped when it surfaces, so cancel is O(1) instead of an O(n) heap rebuild.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.errors import ServingError

__all__ = ["PriorityJobQueue"]


class PriorityJobQueue:
    """Max-priority / FIFO-within-priority queue of job ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # heapq is a min-heap: negate priority so larger runs first; the
        # monotonic sequence breaks ties in submission order.
        self._heap: list[tuple[int, int, str]] = []
        self._discarded: set[str] = set()
        self._seq = itertools.count()
        self._closed = False

    def push(self, job_id: str, priority: int = 0) -> None:
        """Enqueue a job id; larger ``priority`` pops first."""
        with self._not_empty:
            if self._closed:
                raise ServingError("queue is closed")
            heapq.heappush(self._heap, (-priority, next(self._seq), job_id))
            self._not_empty.notify()

    def pop(self, timeout: float | None = None) -> str | None:
        """Dequeue the most urgent live job id.

        Blocks up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout or once the queue is closed and drained.
        """
        with self._not_empty:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    if job_id in self._discarded:
                        self._discarded.remove(job_id)
                        continue
                    return job_id
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    def discard(self, job_id: str) -> None:
        """Mark a queued id so :meth:`pop` skips it (idempotent)."""
        with self._lock:
            if any(jid == job_id for _, _, jid in self._heap):
                self._discarded.add(job_id)

    def close(self) -> None:
        """Stop accepting pushes and wake every blocked :meth:`pop`."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap) - len(self._discarded)
