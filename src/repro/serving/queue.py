"""Thread-safe tenant-aware priority queue of job ids with lazy cancellation.

The server pushes job ids tagged with a client priority and a tenant name;
worker threads pop the next id to run.  Two scheduling policies share one
structure — a heap *lane* per tenant, max-priority / FIFO-within-priority
inside each lane:

* **priority** (default): pop the globally most urgent entry across all
  lanes — identical to a single priority heap, one chatty tenant can front-
  run everyone;
* **fair-share** (``fairness=True``): weighted round-robin *across* lanes
  via stride scheduling (each pop advances the chosen tenant's virtual pass
  by ``1/weight``; the lane with the smallest pass runs next), priority
  still ordering candidates *within* a tenant's lane.  A tenant that burst-
  submits can no longer starve the queue: every other tenant gets its turn
  each cycle, in proportion to its weight.

Per-tenant ``max_inflight`` quotas bound how many of a tenant's jobs run
concurrently in either mode: :meth:`pop` skips lanes at quota and
:meth:`task_done` reopens them.  Once the queue is :meth:`close`-d, quotas
stop gating pops so shutdown always drains.

Cancellation is *lazy*: :meth:`discard` marks the id — unconditionally, in
O(1) — and the heap entry is dropped when it surfaces in :meth:`pop`, so
cancel never pays an O(n) heap rebuild.  Discarding an id that is not
queued leaves a stale mark that a later push of the same id clears;
re-pushing an id that is *still queued* (discarded or not) is rejected, so
one id can never dispatch twice.  Job ids are never reused, so in practice
stale marks are inert.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.errors import ServingError

__all__ = ["PriorityJobQueue"]


class PriorityJobQueue:
    """Max-priority / FIFO-within-priority queue of job ids, tenant-aware.

    Parameters
    ----------
    fairness:
        ``True`` schedules lanes by weighted round-robin instead of global
        priority order (see module docstring).
    weights:
        Fair-share weights by tenant name (default 1 each): a tenant with
        weight ``w`` receives ``w`` pops per round-robin cycle.
    quotas:
        Per-tenant ``max_inflight`` overrides (tenant name -> cap).
    max_inflight:
        Default in-flight cap applied to every tenant without an explicit
        quota; ``None`` = unlimited.
    """

    def __init__(
        self,
        *,
        fairness: bool = False,
        weights: dict[str, int] | None = None,
        quotas: dict[str, int] | None = None,
        max_inflight: int | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ServingError("max_inflight must be at least 1")
        for name, table in (("weights", weights), ("quotas", quotas)):
            for tenant, value in (table or {}).items():
                if value < 1:
                    raise ServingError(
                        f"{name}[{tenant!r}] must be at least 1, got {value}"
                    )
        self.fairness = fairness
        self._weights = dict(weights or {})
        self._quotas = dict(quotas or {})
        self._max_inflight = max_inflight
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # heapq is a min-heap: negate priority so larger runs first; the
        # monotonic sequence breaks ties in submission order (globally, so
        # priority mode is bit-identical to the old single-heap queue).
        self._lanes: dict[str, list[tuple[int, int, str]]] = {}  # guarded-by: _lock
        self._tenant_of: dict[str, str] = {}  # lane by queued id; guarded-by: _lock
        self._discarded: set[str] = set()  # guarded-by: _lock
        self._inflight: dict[str, int] = {}  # guarded-by: _lock
        self._passes: dict[str, float] = {}  # stride virtual time; guarded-by: _lock
        self._vtime = 0.0  # pass of the most recent fair pop; guarded-by: _lock
        self._size = 0  # live (queued, not discarded) entries; guarded-by: _lock
        self._seq = itertools.count()  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    # -------------------------------------------------------------- plumbing
    def _weight(self, tenant: str) -> int:
        return max(1, self._weights.get(tenant, 1))

    def _quota(self, tenant: str) -> int | None:
        return self._quotas.get(tenant, self._max_inflight)

    def _has_capacity(self, tenant: str) -> bool:  # holds: _lock
        quota = self._quota(tenant)
        return quota is None or self._inflight.get(tenant, 0) < quota

    def _live_head(self, tenant: str) -> tuple[int, int, str] | None:  # holds: _lock
        """Top live entry of one lane, dropping discarded entries (lock held)."""
        heap = self._lanes[tenant]
        while heap and heap[0][2] in self._discarded:
            _, _, dead = heapq.heappop(heap)
            self._discarded.remove(dead)
            self._tenant_of.pop(dead, None)
        return heap[0] if heap else None

    def _select(self) -> str | None:  # holds: _lock
        """Pop and return the next runnable job id, or ``None`` (lock held)."""
        lanes: list[tuple[str, tuple[int, int, str]]] = []
        for tenant in list(self._lanes):
            head = self._live_head(tenant)
            if head is None:
                del self._lanes[tenant]
                continue
            # A closed queue is draining into CANCELLED markers, not real
            # work — quota gating would deadlock shutdown, so skip it.
            if not self._closed and not self._has_capacity(tenant):
                continue
            lanes.append((tenant, head))
        if not lanes:
            return None
        if self.fairness:
            tenant = min(
                lanes, key=lambda th: (self._passes.get(th[0], 0.0), th[0])
            )[0]
            here = self._passes.get(tenant, 0.0)
            self._vtime = max(self._vtime, here)
            self._passes[tenant] = here + 1.0 / self._weight(tenant)
        else:
            tenant = min(lanes, key=lambda th: th[1][:2])[0]
        _, _, job_id = heapq.heappop(self._lanes[tenant])
        if not self._lanes[tenant]:
            del self._lanes[tenant]
        self._tenant_of.pop(job_id, None)
        self._size -= 1
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        return job_id

    # ------------------------------------------------------------------- API
    def push(self, job_id: str, priority: int = 0, tenant: str = "") -> None:
        """Enqueue a job id; larger ``priority`` pops first within a lane."""
        with self._not_empty:
            if self._closed:
                raise ServingError("queue is closed")
            if job_id in self._tenant_of:
                # A second live entry for one id would dispatch twice (and
                # silently corrupt the size/discard accounting).
                raise ServingError(f"job id {job_id!r} is already queued")
            # A push supersedes any stale discard mark for the same id.
            self._discarded.discard(job_id)
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = self._lanes[tenant] = []
                # A (re)joining lane starts at the current virtual time so a
                # tenant idle for a while cannot bank turns and then burst.
                self._passes[tenant] = max(
                    self._passes.get(tenant, 0.0), self._vtime
                )
            heapq.heappush(lane, (-priority, next(self._seq), job_id))
            self._tenant_of[job_id] = tenant
            self._size += 1
            self._not_empty.notify()

    def pop(self, timeout: float | None = None) -> str | None:
        """Dequeue the next live job id under the scheduling policy.

        Blocks up to ``timeout`` seconds (forever when ``None``) while the
        queue is empty *or* every non-empty lane is at its in-flight quota;
        returns ``None`` on timeout or once the queue is closed and drained.
        """
        # One deadline for the whole call: task_done's notify_all makes
        # spurious wakeups routine, and restarting the wait each time would
        # let a busy server block a finite-timeout pop indefinitely.
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                job_id = self._select()
                if job_id is not None:
                    return job_id
                if self._closed and not self._tenant_of:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                # A ``timeout=None`` pop waits unbounded by contract; it can
                # never wedge shutdown because close() flips _closed and
                # notify_all()s every waiter awake.
                if not self._not_empty.wait(remaining):
                    return None

    def task_done(self, tenant: str = "") -> None:
        """Mark one popped job of ``tenant`` finished, freeing its quota slot."""
        with self._not_empty:
            count = self._inflight.get(tenant, 0)
            if count > 0:
                self._inflight[tenant] = count - 1
            self._not_empty.notify_all()

    def discard(self, job_id: str) -> None:
        """Mark an id so :meth:`pop` skips it (O(1), idempotent).

        The mark is set unconditionally; ids not currently queued simply
        leave a stale mark (cleared if the id is ever pushed).
        """
        with self._lock:
            if job_id in self._discarded:
                return
            self._discarded.add(job_id)
            if job_id in self._tenant_of:
                self._size -= 1

    def close(self) -> None:
        """Stop accepting pushes and wake every blocked :meth:`pop`."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return max(0, self._size)
