"""Multi-tenant navigation serving: queue, scheduler, server, client.

Turns the single-user :class:`~repro.explorer.navigator.GNNavigator` into a
service.  Many clients submit :class:`NavigationRequest`s; a priority job
queue and a bounded worker pool multiplex them; one shared, in-flight-
deduplicating profiling scheduler plus a persistent
:class:`~repro.runtime.parallel.ResultStore` make every ground-truth
measurement a one-time cost across all tenants.
"""

from repro.serving.client import JobHandle, NavigationClient
from repro.serving.queue import PriorityJobQueue
from repro.serving.scheduler import SharedProfilingService
from repro.serving.server import NavigationServer
from repro.serving.types import (
    Job,
    JobResult,
    JobStatus,
    NavigationRequest,
)

__all__ = [
    "Job",
    "JobHandle",
    "JobResult",
    "JobStatus",
    "NavigationClient",
    "NavigationRequest",
    "NavigationServer",
    "PriorityJobQueue",
    "SharedProfilingService",
]
