"""Multi-tenant navigation serving: queue, scheduler, server, client.

Turns the single-user :class:`~repro.explorer.navigator.GNNavigator` into a
service.  Many clients submit :class:`NavigationRequest`s; a priority job
queue and a bounded worker pool multiplex them; one shared, in-flight-
deduplicating profiling scheduler plus a persistent
:class:`~repro.runtime.parallel.ResultStore` make every ground-truth
measurement a one-time cost across all tenants.
"""

from repro.serving.client import JobHandle, NavigationClient
from repro.serving.events import EventBatch, EventBuffer, JobProgressEvent
from repro.serving.metrics import MetricsRegistry
from repro.serving.queue import PriorityJobQueue
from repro.serving.scheduler import SharedProfilingService
from repro.serving.server import NavigationServer
from repro.serving.types import (
    Job,
    JobResult,
    JobSnapshot,
    JobStatus,
    NavigationRequest,
)

__all__ = [
    "EventBatch",
    "EventBuffer",
    "Job",
    "JobHandle",
    "JobProgressEvent",
    "JobResult",
    "JobSnapshot",
    "JobStatus",
    "MetricsRegistry",
    "NavigationClient",
    "NavigationRequest",
    "NavigationServer",
    "PriorityJobQueue",
    "SharedProfilingService",
]

# The network transport (repro.serving.transport) is imported lazily by its
# users — keeping it out of this namespace keeps `import repro.serving`
# socket-free for the in-process path.
