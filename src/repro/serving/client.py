"""Client-side view of a :class:`NavigationServer`.

A :class:`NavigationClient` is a tenant's handle on a shared server: it
builds requests from plain keyword arguments, tags them with the tenant
name, and wraps submitted job ids in :class:`JobHandle`s that poll, block,
and cancel without the caller touching server internals.  Batch helpers
(:meth:`submit_many`, :meth:`navigate_many`) mirror the server's batch API.
"""

from __future__ import annotations

from typing import Iterator

from repro.config.settings import TaskSpec
from repro.serving.events import EventBatch, JobProgressEvent, watch_events
from repro.serving.server import NavigationServer
from repro.serving.types import (
    JobResult,
    JobSnapshot,
    JobStatus,
    NavigationRequest,
)

__all__ = ["JobHandle", "NavigationClient"]


class JobHandle:
    """One submitted job: poll ``status``, block on ``result``, ``cancel``.

    ``status`` and ``done`` both derive from one :meth:`snapshot` call — a
    single consistent registry read under the server lock — instead of
    separate lookups that could interleave with the job's own terminal
    transition.
    """

    def __init__(self, server: NavigationServer, job_id: str) -> None:
        self.server = server
        self.job_id = job_id

    def snapshot(self) -> JobSnapshot:
        """Consistent point-in-time view of the job's observable state."""
        return self.server.snapshot(self.job_id)

    @property
    def status(self) -> JobStatus:
        return self.snapshot().status

    @property
    def done(self) -> bool:
        return self.snapshot().done

    def result(self, timeout: float | None = None) -> JobResult:
        """Block for the result; raises
        :class:`~repro.errors.JobFailedError` on FAILED jobs."""
        return self.server.result(self.job_id, timeout)

    def events(
        self, since: int = 0, timeout: float | None = None
    ) -> EventBatch:
        """One bounded read of the job's progress events (resume with the
        returned ``next_seq``); same surface as ``RemoteJobHandle.events``."""
        return self.server.events(self.job_id, since=since, timeout=timeout)

    def watch(self, since: int = 0) -> Iterator[JobProgressEvent]:
        """Stream progress events until the job's stream ends.

        Ring-dropped stretches surface as an explicit gap-marker event;
        iteration stops after the terminal event is delivered.
        """
        return watch_events(self.events, self.job_id, since=since)

    def cancel(self) -> bool:
        return self.server.cancel(self.job_id)

    def __repr__(self) -> str:
        return f"JobHandle({self.job_id}, {self.status.value})"


class NavigationClient:
    """A named tenant submitting navigation requests to a shared server."""

    def __init__(self, server: NavigationServer, *, tenant: str = "") -> None:
        self.server = server
        self.tenant = tenant

    def _build(self, task: TaskSpec | NavigationRequest, **kwargs) -> NavigationRequest:
        if isinstance(task, NavigationRequest):
            return task
        # tenant routes fair-share scheduling and quotas; tag mirrors it for
        # human-readable job listings (callers may override either).
        kwargs.setdefault("tag", self.tenant)
        kwargs.setdefault("tenant", self.tenant)
        return NavigationRequest(task=task, **kwargs)

    def submit(
        self, task: TaskSpec | NavigationRequest, **kwargs
    ) -> JobHandle:
        """Submit one request (a :class:`TaskSpec` plus request kwargs, or a
        ready-made :class:`NavigationRequest`)."""
        request = self._build(task, **kwargs)
        return JobHandle(self.server, self.server.submit(request))

    def submit_many(
        self, tasks: list[TaskSpec | NavigationRequest], **kwargs
    ) -> list[JobHandle]:
        """Submit a batch; one handle per task, in order."""
        requests = [self._build(task, **kwargs) for task in tasks]
        return [
            JobHandle(self.server, job_id)
            for job_id in self.server.submit_many(requests)
        ]

    def navigate(
        self,
        task: TaskSpec | NavigationRequest,
        *,
        timeout: float | None = None,
        **kwargs,
    ) -> JobResult:
        """Submit and block for the result (the one-call convenience)."""
        return self.submit(task, **kwargs).result(timeout)

    def navigate_many(
        self,
        tasks: list[TaskSpec | NavigationRequest],
        *,
        timeout: float | None = None,
        **kwargs,
    ) -> list[JobResult]:
        """Submit a batch and block for every result, in submission order."""
        handles = self.submit_many(tasks, **kwargs)
        return [handle.result(timeout) for handle in handles]
