"""Server metrics: named counters and gauges behind one registry.

The serving stack used to assemble its observability surface ad hoc — the
transport's ``/v1/stats`` handler reached into ``ProfilingStats`` fields,
the store, and a hand-rolled job census dict.  :class:`MetricsRegistry`
replaces that: the server registers *counters* (monotonic, bumped at the
moment the thing happens) and *gauges* (callables read at scrape time, so
they are always current and cost nothing between scrapes), and every
consumer — ``/v1/metrics``, ``/v1/stats``, the CLI — reads one
:meth:`snapshot`.

Counters and gauges share a flat namespace; registering a gauge under an
existing counter name (or vice versa) is a programming error and raises.
Per-entity series (one counter per fleet executor, say) use
:func:`labeled` names — ``fleet_claims{executor="ex-0000"}`` — which sort
next to their base family in a snapshot and can be dropped again with
:meth:`MetricsRegistry.remove` when the entity goes away.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["MetricsRegistry", "labeled"]


def labeled(name: str, **labels: str) -> str:
    """Prometheus-style labeled metric name: ``name{k="v",...}``, key-sorted.

    Purely a naming convention over the flat registry — the registry itself
    treats the result as an opaque name — but a stable, sorted rendering
    means the same (family, labels) pair always lands on the same series.
    """
    if not labels:
        return name
    rendered = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Thread-safe flat registry of counters and gauges.

    Counters are created on first :meth:`inc` (so emission sites never need
    a registration phase) and only ever grow.  Gauges are registered once
    with a zero-argument callable; a gauge that raises at scrape time
    reports ``0`` rather than poisoning the whole snapshot — metrics must
    never take the server down.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}  # guarded-by: _lock
        self._gauges: dict[str, Callable[[], float]] = {}  # guarded-by: _lock

    # ---------------------------------------------------------------- counters
    def inc(self, name: str, n: int = 1) -> int:
        """Add ``n`` to counter ``name`` (created at 0); returns the total."""
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            if name in self._gauges:
                raise ValueError(f"{name!r} is already a gauge")
            total = self._counters.get(name, 0) + n
            self._counters[name] = total
            return total

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------ gauges
    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register gauge ``name`` as a zero-argument read callable."""
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            self._gauges[name] = fn

    # ---------------------------------------------------------------- removal
    def remove(self, name: str) -> bool:
        """Forget one metric (either kind); ``True`` if it existed.

        Exists for labeled per-entity series — a deregistered fleet
        executor must not haunt every later snapshot — and is deliberately
        quiet about unknown names so teardown paths can sweep candidates.
        """
        with self._lock:
            dropped = self._counters.pop(name, None) is not None
            return (self._gauges.pop(name, None) is not None) or dropped

    # ---------------------------------------------------------------- scraping
    def value(self, name: str) -> float:
        """One metric by name — counter value or evaluated gauge."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            fn = self._gauges.get(name)
        if fn is None:
            raise KeyError(name)
        return self._read(fn)

    def snapshot(self) -> dict[str, float]:
        """Every metric, name-sorted: counters as-is, gauges evaluated now.

        Gauge callables run *outside* the registry lock — they may take
        other locks (the store's, the server's) and must not serialize
        against concurrent ``inc`` calls on the hot path.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        out: dict[str, float] = dict(counters)
        for name, fn in gauges.items():
            out[name] = self._read(fn)
        return dict(sorted(out.items()))

    @staticmethod
    def _read(fn: Callable[[], float]) -> float:
        try:
            value = fn()
        except Exception:
            return 0
        return value if isinstance(value, (int, float)) else 0
