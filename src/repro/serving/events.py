"""Per-job progress events: the serving layer's live-introspection spine.

A served navigation job is minutes of Step-2 profiling behind a DONE/FAILED
poll — a black box.  This module makes the box transparent without making
it chatty: the server threads one *emit* callback alongside the job's
:class:`~repro.runtime.parallel.CancellationToken` (server →
``GNNavigator`` → ``SharedProfilingService`` → ``ProfilingService``), every
phase transition and profiling-batch completion lands as a typed
:class:`JobProgressEvent` in the job's bounded :class:`EventBuffer`, and
subscribers — local handles, the HTTP transport's long-poll endpoint, the
``repro watch`` CLI — read the buffer by monotonic sequence number.

Design rules:

* **Emission never blocks on consumers.**  The buffer is a ring: a slow (or
  absent) subscriber costs the producer one deque append, nothing more.
* **Sequence numbers are the resumption contract.**  Every event carries a
  per-job monotonic ``seq``; a reader that disconnects resumes with
  ``since=next_seq`` and misses nothing the ring still holds.  When the
  ring *has* dropped past ``since``, the read reports the gap size instead
  of silently skipping — :func:`gap_event` turns it into a visible marker.
* **Terminal events are ordered before terminal status.**  The server
  appends a job's terminal event *before* flipping ``job.status``, so a
  batch reporting ``done=True`` always already delivered the terminal
  event — watchers can stop on ``done`` without losing the ending.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Iterator

__all__ = [
    "DEFAULT_POLL_SECONDS",
    "GAP_PHASE",
    "TERMINAL_PHASES",
    "EventBatch",
    "EventBuffer",
    "JobProgressEvent",
    "gap_event",
    "watch_events",
]

#: phase name of the synthetic marker injected where the ring dropped events.
GAP_PHASE = "gap"

#: how long one ``events(..., timeout=None)`` read waits for a new event.
#: Matches the transport's ``MAX_POLL_SECONDS`` so ``timeout=None`` means
#: "one polite long-poll round" on *both* handles — without it the
#: in-process default would be a non-blocking probe and a naive local
#: poll loop would busy-spin where the remote one parks.
DEFAULT_POLL_SECONDS = 30.0

#: event statuses after which a job emits nothing further.
TERMINAL_PHASES = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class JobProgressEvent:
    """One observable step of a served job's life.

    ``seq`` is assigned by the job's :class:`EventBuffer` (per-job,
    monotonic from 0).  ``phase`` names what happened (``queued``,
    ``started``, ``profiling``, ``explored``, ``training``, a terminal
    status name, or :data:`GAP_PHASE`); ``status`` is the job's lifecycle
    state at emission time.  The profiling counters are cumulative within
    the job's Step-2 profiling call: ``runs_done`` of ``runs_total`` unique
    candidates resolved so far, ``cache_hits`` of them served without a
    training run.  ``elapsed_s`` is measured from submission on the
    server's monotonic clock.
    """

    job_id: str
    phase: str
    status: str
    seq: int = 0
    batch_index: int | None = None
    runs_done: int = 0
    runs_total: int = 0
    cache_hits: int = 0
    best_objective: float | None = None
    elapsed_s: float = 0.0
    message: str = ""

    @property
    def terminal(self) -> bool:
        """Whether this event ends the stream (a watcher may stop here)."""
        return self.status in TERMINAL_PHASES

    def describe(self) -> str:
        """One human-readable progress line (the ``repro watch`` format)."""
        line = f"{self.job_id} [{self.status}] {self.phase}"
        if self.runs_total:
            line += f" {self.runs_done}/{self.runs_total} runs"
            if self.cache_hits:
                line += f" ({self.cache_hits} cached)"
        if self.best_objective is not None:
            line += f" best={self.best_objective:.4g}"
        line += f" +{self.elapsed_s:.1f}s"
        if self.message:
            line += f" — {self.message}"
        return line

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly wire form (``None`` fields included, order fixed)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "JobProgressEvent":
        return cls(**data)


@dataclass(frozen=True)
class EventBatch:
    """One read of a job's event stream: what both transports return.

    ``events`` are in sequence order; ``next_seq`` is the ``since`` of the
    follow-up read; ``gap`` counts events the ring dropped between the
    requested ``since`` and the first event returned (0 = lossless);
    ``done`` means the job is terminal *and* everything it ever emitted has
    been delivered — a watcher stops, a poller stops re-arming.
    """

    events: list[JobProgressEvent]
    next_seq: int
    gap: int = 0
    done: bool = False

    def to_dict(self) -> dict:
        return {
            "events": [event.to_dict() for event in self.events],
            "next_seq": self.next_seq,
            "gap": self.gap,
            "done": self.done,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventBatch":
        return cls(
            events=[JobProgressEvent.from_dict(e) for e in data["events"]],
            next_seq=data["next_seq"],
            gap=data.get("gap", 0),
            done=data.get("done", False),
        )


class EventBuffer:
    """Bounded per-job ring of events with monotonic sequence numbers.

    Appends assign ``seq`` and never block; once ``capacity`` is reached the
    oldest event is dropped (``dropped`` counts them, ``on_drop`` notifies
    the owner's metrics).  Readers poll :meth:`read`, which can wait on the
    internal condition until something lands past their ``since`` — the
    long-poll primitive both transports build on.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        on_drop: Callable[[int], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("event buffer capacity must be at least 1")
        self.capacity = capacity
        self._on_drop = on_drop
        self._events: deque[JobProgressEvent] = deque()  # guarded-by: _cond
        self._cond = threading.Condition()
        self._next_seq = 0  # guarded-by: _cond

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended event will carry."""
        with self._cond:
            return self._next_seq

    @property
    def start_seq(self) -> int:
        """Sequence number of the oldest event still retained."""
        with self._cond:
            return self._start_locked()

    @property
    def dropped(self) -> int:
        """Total events the ring has evicted to stay within capacity."""
        with self._cond:
            return self._start_locked()

    def _start_locked(self) -> int:  # holds: _cond
        return self._next_seq - len(self._events)

    def append(self, event: JobProgressEvent) -> JobProgressEvent:
        """Stamp ``event`` with the next seq, retain it, wake readers."""
        dropped = 0
        with self._cond:
            stamped = dataclasses.replace(event, seq=self._next_seq)
            self._next_seq += 1
            self._events.append(stamped)
            if len(self._events) > self.capacity:
                self._events.popleft()
                dropped = 1
            self._cond.notify_all()
        if dropped and self._on_drop is not None:
            # outside the lock: the drop hook (metrics) must not be able to
            # deadlock or slow the emission path under the buffer lock.
            self._on_drop(dropped)
        return stamped

    def read(
        self,
        since: int = 0,
        timeout: float | None = None,
        *,
        done: Callable[[], bool] | None = None,
    ) -> tuple[list[JobProgressEvent], int, int]:
        """Events with ``seq >= since``; ``(events, next_seq, gap)``.

        Blocks up to ``timeout`` seconds for the first new event (or for
        ``done()`` to flip, so a reader of a finished stream returns
        immediately instead of burning its whole window).  ``gap`` counts
        dropped events between ``since`` and the first one returned —
        including a ``since`` past the retention horizon entirely.
        """
        if since < 0:
            raise ValueError("since must be non-negative")
        with self._cond:
            if timeout is not None and timeout > 0:
                self._cond.wait_for(
                    lambda: self._next_seq > since
                    or (done is not None and done()),
                    timeout,
                )
            start = self._start_locked()
            gap = max(0, min(start, self._next_seq) - since)
            events = [e for e in self._events if e.seq >= since]
            return events, self._next_seq, gap


def gap_event(job_id: str, status: str, since: int, gap: int) -> JobProgressEvent:
    """The visible marker a watcher yields where the ring dropped events."""
    return JobProgressEvent(
        job_id=job_id,
        phase=GAP_PHASE,
        status=status,
        seq=since,
        message=f"{gap} events dropped (slow consumer); resuming at {since + gap}",
    )


def watch_events(
    fetch: Callable[..., EventBatch],
    job_id: str,
    *,
    since: int = 0,
    poll: float = 15.0,
) -> Iterator[JobProgressEvent]:
    """Stream a job's events until its stream ends, marking any gaps.

    ``fetch(since=, timeout=)`` is one bounded read — ``server.events`` via
    a local handle or ``GET /v1/jobs/<id>/events`` via the remote client —
    so the *same* generator drives both transports (and the CLI), and a
    dropped connection resumes losslessly from the last delivered seq.
    """
    seq = since
    while True:
        batch = fetch(since=seq, timeout=poll)
        if batch.gap:
            status = batch.events[0].status if batch.events else "running"
            yield gap_event(job_id, status, seq, batch.gap)
        yield from batch.events
        seq = batch.next_seq
        if batch.done:
            return
