"""Fleet dispatcher: the server-side half of the batch handout seam.

:class:`FleetDispatcher` plugs into
:attr:`~repro.runtime.parallel.ProfilingService.runner` and takes over
pending-candidate execution whenever at least one live executor is
registered.  The flow per batch:

1. :meth:`run_batch` (called from ``ProfilingService._execute`` on the job
   worker thread) enqueues the batch's keys as pending work items and
   blocks until every key has a committed record.
2. Executors long-poll :meth:`claim`, which hands out same-graph batches
   under a :class:`~repro.serving.fleet.leases.Lease` — preferring keys the
   consistent-hash ring routes to the claimer (dedup affinity), stealing
   from the head of the queue when it owns nothing pending (work never
   stalls on affinity).
3. :meth:`commit` publishes finished records through the *same*
   ``service.commit`` path the local pool uses, so memory/store/budget
   invariants cannot diverge.  Commits are idempotent twice over: a
   retried POST replays its recorded outcome via the idempotency key, and
   a key that already landed (an expired lease's zombie finishing late) is
   counted as a duplicate and not double-published.
4. Missed heartbeats expire leases (:meth:`_sweep_locked`): the keys go
   back to pending and someone else claims them — a killed executor costs
   wall-clock, never runs.  When the *whole* fleet goes silent,
   ``run_batch`` withdraws the remainder and falls back to the local pool,
   so a server never deadlocks on a dead fleet.

Lock order: ``FleetDispatcher._lock`` may be held while taking the
registry, lease-table or metrics locks (all leaves); store I/O and
training execution always happen outside it.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.config.settings import TaskSpec, TrainingConfig
from repro.errors import ServingError, UnknownExecutorError
from repro.graphs.csr import CSRGraph
from repro.runtime.parallel import predicted_cost
from repro.serving.fleet.leases import LeaseTable
from repro.serving.fleet.registry import ExecutorInfo, ExecutorRegistry
from repro.serving.metrics import MetricsRegistry, labeled

__all__ = ["ClaimGrant", "CommitOutcome", "FleetDispatcher"]

#: ceiling on one claim long-poll's server-side wait (mirrors the
#: transport's MAX_POLL_SECONDS without importing the wire layer).
_MAX_CLAIM_POLL = 30.0

#: per-executor metric families created by the dispatcher; removed again
#: when the executor deregisters or is pruned.
_EXECUTOR_METRICS = (
    "fleet_claims",
    "fleet_commits",
    "fleet_lease_expiries",
    "fleet_heartbeat_age_seconds",
)


@dataclass(frozen=True)
class ClaimGrant:
    """One claim round's outcome: a leased batch, or nothing pending."""

    lease_id: str | None
    ttl: float
    task: TaskSpec | None
    dataset: str | None
    fingerprint: str | None
    keys: tuple[str, ...]
    configs: tuple[TrainingConfig, ...]

    @property
    def empty(self) -> bool:
        return self.lease_id is None

    @classmethod
    def none(cls, ttl: float) -> "ClaimGrant":
        return cls(
            lease_id=None,
            ttl=ttl,
            task=None,
            dataset=None,
            fingerprint=None,
            keys=(),
            configs=(),
        )


@dataclass(frozen=True)
class CommitOutcome:
    """What one commit did: fresh records accepted, duplicates folded, and
    whether this response was replayed from the idempotency table."""

    accepted: int
    duplicates: int
    replayed: bool = False


class _BatchGroup:
    """The (task, graph) context shared by one run_batch's work items —
    claims batch items only within a single group, so an executor always
    receives one task and one graph per lease."""

    __slots__ = ("task", "graph", "fingerprint")

    def __init__(
        self, task: TaskSpec, graph: CSRGraph, fingerprint: str
    ) -> None:
        self.task = task
        self.graph = graph
        self.fingerprint = fingerprint


class _WorkItem:
    """One pending candidate: its canonical config, lease state and result."""

    __slots__ = ("key", "config", "group", "lease_id", "record", "local", "waiters")

    def __init__(self, key: str, config: TrainingConfig, group: _BatchGroup) -> None:
        self.key = key
        self.config = config
        self.group = group
        self.lease_id: str | None = None
        self.record = None
        self.local = False  # True: a local fallback took this key over
        self.waiters = 0


class FleetDispatcher:
    """Work-pull dispatcher between profiling batches and remote executors.

    Parameters
    ----------
    service:
        The :class:`~repro.runtime.parallel.ProfilingService` whose batches
        this dispatcher takes over; attaching sets ``service.runner``.
    lease_ttl:
        Seconds a claimed batch stays leased without a heartbeat.  Also
        derives the heartbeat interval executors are told to use
        (``ttl / 3``), the liveness horizon (``ttl``) and the registry
        prune horizon (``5 * ttl``).
    max_batch:
        Most candidates handed out per claim.  Small batches bound how
        much work one executor death re-queues; large ones amortize HTTP
        round trips.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry` for the
        fleet counters (global and per-executor labeled).
    """

    def __init__(
        self,
        service,
        *,
        lease_ttl: float = 10.0,
        max_batch: int = 8,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ServingError("lease_ttl must be positive")
        if max_batch < 1:
            raise ServingError("max_batch must be at least 1")
        self.service = service
        self.lease_ttl = float(lease_ttl)
        self.max_batch = max_batch
        self.metrics = metrics
        self.registry = ExecutorRegistry()
        self.leases = LeaseTable()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._items: dict[str, _WorkItem] = {}  # guarded-by: _lock
        self._pending: list[str] = []  # guarded-by: _lock
        #: graphs by fingerprint for /v1/fleet/graph/<fp> fetches; one entry
        #: per distinct graph a server ever profiles on, so no eviction.
        self._graphs: dict[str, CSRGraph] = {}  # guarded-by: _lock
        #: keys whose record already landed via a fleet commit — the dedup
        #: that keeps an expired lease's zombie commit from double-counting.
        self._done: OrderedDict[str, bool] = OrderedDict()  # guarded-by: _lock
        self._done_cap = 65536
        #: (executor, idempotency key) -> outcome, replayed on retried POSTs.
        self._replays: OrderedDict[tuple[str, str], CommitOutcome] = (
            OrderedDict()
        )  # guarded-by: _lock
        self._replay_cap = 4096
        #: background lease sweeper; started lazily on first register() so
        #: fleets that never form pay nothing.  Created/read under _lock.
        self._sweeper: threading.Thread | None = None  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        service.runner = self

    # ----------------------------------------------------------- membership
    @property
    def heartbeat_interval(self) -> float:
        """How often executors are told to heartbeat (3 beats per TTL)."""
        return self.lease_ttl / 3.0

    def register(
        self, *, workers: int = 1, executor_id: str | None = None
    ) -> ExecutorInfo:
        """Admit (or refresh) an executor and bind its labeled gauges."""
        info = self.registry.register(workers=workers, executor_id=executor_id)
        if self.metrics is not None:
            self.metrics.gauge(
                labeled(
                    "fleet_heartbeat_age_seconds", executor=info.executor_id
                ),
                info.age,
            )
        with self._cond:
            self._ensure_sweeper_locked()
            self._cond.notify_all()  # run_batch loops re-check accepts()
        return info

    def heartbeat(self, executor_id: str) -> int:
        """Refresh liveness and renew the executor's leases; returns how
        many leases were renewed.  Raises :class:`UnknownExecutorError` for
        executors the registry forgot (they must re-register)."""
        self.registry.touch(executor_id)
        return self.leases.renew_owner(executor_id, self.lease_ttl)

    def deregister(self, executor_id: str) -> bool:
        """Graceful exit: drop the executor and re-queue anything it holds."""
        existed = self.registry.deregister(executor_id)
        with self._cond:
            for lease in self.leases.active():
                if lease.executor_id == executor_id:
                    self.leases.release(lease.lease_id)
                    self._requeue_locked(lease.lease_id, lease.keys)
            self._cond.notify_all()
        if existed:
            self._drop_executor_metrics(executor_id)
        return existed

    # ------------------------------------------------------------ job side
    def accepts(self, task, configs, graph) -> bool:
        """Whether the fleet should take this batch: any live executor."""
        return bool(self.registry.live(self.lease_ttl))

    def run_batch(
        self,
        service,
        task: TaskSpec,
        configs: list[TrainingConfig],
        graph: CSRGraph,
        *,
        keys: list,
        cancel=None,
        on_run=None,
    ):
        """Execute one pending batch through the fleet; blocks until done.

        Same contract as ``ProfilingService._execute_local``: records come
        back in input order, each is committed the moment it lands,
        ``cancel`` is honoured at poll boundaries, and ``on_run(done)``
        fires with this call's cumulative finished count.  If every
        executor dies mid-batch the remainder is withdrawn and run on the
        local pool — the job completes either way.
        """
        if cancel is not None:
            cancel.raise_if_cancelled()
        fingerprint = service._fingerprint(graph)
        group = _BatchGroup(task, graph, fingerprint)
        mine: dict[str, _WorkItem] = {}
        with self._cond:
            self._graphs[fingerprint] = graph
            for key, config in zip(keys, configs, strict=True):
                item = self._items.get(key)
                if item is None:
                    item = _WorkItem(key, config.canonical(), group)
                    self._items[key] = item
                    self._pending.append(key)
                item.waiters += 1
                mine[key] = item
            self._cond.notify_all()  # wake claim long-polls

        poll = max(0.05, min(self.lease_ttl / 4.0, 0.5))
        reported = 0
        try:
            while True:
                with self._cond:
                    self._sweep_locked()
                    unresolved = [
                        key
                        for key, item in mine.items()
                        if self._resolved_locked(item) is None
                    ]
                    finished = len(mine) - len(unresolved)
                    alive = bool(self.registry.live(self.lease_ttl))
                    if unresolved and not alive:
                        # Freeze the remainder before leaving the lock: out
                        # of pending (no claim can grab it) and marked local
                        # (a later lease expiry must not re-queue it).
                        for key in unresolved:
                            mine[key].local = True
                            if key in self._pending:
                                self._pending.remove(key)
                if on_run is not None and finished > reported:
                    reported = finished
                    on_run(finished)
                if cancel is not None:
                    cancel.raise_if_cancelled()
                if not unresolved:
                    return self._collect(service, keys, mine)
                if not alive:
                    break
                with self._cond:
                    # Bounded by ``poll`` (a fraction of the lease TTL): the
                    # loop must wake even if every executor dies silently
                    # between commits, so the dead-fleet fallback below can
                    # take over; commits notify_all() to end the wait early.
                    self._cond.wait(poll)

            # Dead-fleet fallback: run what's left on the local pool.  The
            # records commit through the same service path, so waiters and
            # the store see no difference from a fleet commit.
            if self.metrics is not None:
                self.metrics.inc("fleet_local_fallbacks")
            service._execute_local(
                task,
                [mine[key].config for key in unresolved],
                graph,
                cancel=cancel,
                keys=unresolved,
                on_run=(
                    None
                    if on_run is None
                    else lambda done: on_run(reported + done)
                ),
            )
            return self._collect(service, keys, mine)
        finally:
            self._withdraw(mine)

    def _collect(self, service, keys: list, mine: dict):
        """Records for ``keys`` in input order, from items or the service
        memory (local-fallback and shared-item commits land there)."""
        records = []
        with self._lock:
            for key in keys:
                item = mine[key]
                record = (
                    item.record
                    if item.record is not None
                    else service._memory.get(key)
                )
                if record is None:  # pragma: no cover — loop invariant
                    raise ServingError(
                        f"fleet batch finished without a record for {key!r}"
                    )
                records.append(record)
        return records

    def _withdraw(self, mine: dict) -> None:
        """Drop this call's interest in its items (refcounted — shared items
        survive until their last waiter leaves)."""
        with self._cond:
            for key, item in mine.items():
                item.waiters -= 1
                if item.waiters <= 0:
                    self._items.pop(key, None)
                    if key in self._pending:
                        self._pending.remove(key)

    def _resolved_locked(self, item: _WorkItem):  # holds: _lock
        if item.record is not None:
            return item.record
        return self.service._memory.get(item.key)

    # ------------------------------------------------------- executor side
    def claim(
        self,
        executor_id: str,
        *,
        max_candidates: int | None = None,
        timeout: float = 0.0,
    ) -> ClaimGrant:
        """Long-poll for a batch; empty grant when nothing lands in time.

        Prefers pending keys the hash ring routes to this executor; when it
        owns none, it steals from the queue head so capacity is never idle
        while work waits.  All keys in one grant share a task and a graph.
        """
        limit = self.max_batch
        if max_candidates is not None:
            limit = max(1, min(max_candidates, self.max_batch))
        deadline = time.monotonic() + max(0.0, min(timeout, _MAX_CLAIM_POLL))
        poll = max(0.05, min(self.lease_ttl / 4.0, 0.5))
        while True:
            # touch() every wake: raises UnknownExecutorError (re-register)
            # if the registry forgot us mid-poll, and keeps a long-polling
            # but otherwise idle executor alive.
            info = self.registry.touch(executor_id)
            with self._cond:
                self._sweep_locked()
                selected = self._select_locked(executor_id, limit)
                if selected:
                    lease = self.leases.issue(
                        executor_id,
                        [item.key for item in selected],
                        self.lease_ttl,
                    )
                    for item in selected:
                        item.lease_id = lease.lease_id
                    info.claims += 1
                    group = selected[0].group
                    grant = ClaimGrant(
                        lease_id=lease.lease_id,
                        ttl=self.lease_ttl,
                        task=group.task,
                        dataset=group.task.dataset,
                        fingerprint=group.fingerprint,
                        keys=tuple(item.key for item in selected),
                        configs=tuple(item.config for item in selected),
                    )
                else:
                    grant = None
                    remaining = deadline - time.monotonic()
                    if remaining > 0:
                        # Bounded by the long-poll deadline and by ``poll``
                        # so every wake re-runs the sweep (expired leases
                        # re-queue keys this claim may then grab) and
                        # re-touches the registry before sleeping again.
                        self._cond.wait(min(poll, remaining))
            if grant is not None:
                if self.metrics is not None:
                    # Fleet counters are kept as an unlabeled total plus a
                    # per-executor labeled breakdown on purpose: the total
                    # survives executor churn (labeled series are removed
                    # on deregister/prune), so dashboards never lose
                    # history.  METRIC002 flags the mixed label sets.
                    self.metrics.inc("fleet_claims")  # lint: disable=METRIC002
                    self.metrics.inc(
                        labeled("fleet_claims", executor=executor_id)
                    )
                return grant
            if time.monotonic() >= deadline:
                return ClaimGrant.none(self.lease_ttl)

    def _select_locked(self, executor_id, limit):  # holds: _lock
        if not self._pending:
            return []
        owned = [
            key
            for key in self._pending
            if self.registry.route(key) == executor_id
        ]
        pool = owned if owned else self._pending
        group = self._items[pool[0]].group
        chosen = [
            key for key in pool if self._items[key].group is group
        ][:limit]
        # Longest-first within the claim batch: the executor runs its lease
        # in grant order, so fronting the expensive candidates shortens the
        # tail when a lease expires mid-batch (the cheap remainder re-queues
        # and backfills elsewhere).  Pure arithmetic on already-loaded
        # objects, so fine under the lock; the sort is stable, keeping the
        # arrival order among cost ties deterministic.
        chosen.sort(
            key=lambda k: -predicted_cost(
                group.task, self._items[k].config, group.graph
            )
        )
        for key in chosen:
            self._pending.remove(key)
        return [self._items[key] for key in chosen]

    def commit(
        self,
        executor_id: str,
        lease_id: str | None,
        keys: list,
        records: list,
        *,
        idempotency_key: str | None = None,
    ) -> CommitOutcome:
        """Publish finished records; idempotent against retries and zombies.

        A retried POST (same executor + idempotency key) replays the
        recorded outcome without touching anything.  A key that already
        landed — its lease expired and someone else committed it first —
        counts as a duplicate: no store write, no ``executed`` bump.  The
        runs themselves are deterministic functions of (task, config,
        graph), so whichever commit wins, the bytes are identical.

        Commits from executors the registry forgot are still accepted: the
        work is done and correct, refusing it would only re-run it.
        """
        if len(keys) != len(records):
            raise ServingError(
                f"commit carries {len(keys)} keys but {len(records)} records"
            )
        try:
            info = self.registry.touch(executor_id)
        except UnknownExecutorError:
            info = None
        replay_key = (
            None
            if idempotency_key is None
            else (executor_id, idempotency_key)
        )
        fresh: list = []
        duplicates = 0
        with self._cond:
            if replay_key is not None:
                known = self._replays.get(replay_key)
                if known is not None:
                    return dataclasses.replace(known, replayed=True)
            for key, record in zip(keys, records, strict=True):
                if key in self._done:
                    duplicates += 1
                    continue
                self._done[key] = True
                while len(self._done) > self._done_cap:
                    self._done.popitem(last=False)
                fresh.append((key, record))

        # Store I/O outside the dispatcher lock: a slow disk must not block
        # claims and heartbeats.  Each publish bumps ``executed`` — the run
        # really happened, just on another machine.
        published = 0
        try:
            for key, record in fresh:
                self.service.commit(key, record)
                self.service.stats.bump("executed")
                published += 1
        except BaseException:
            with self._cond:
                # Un-reserve what never landed so re-claims can re-run it.
                for key, _ in fresh[published:]:
                    self._done.pop(key, None)
                self._cond.notify_all()
            raise

        outcome = CommitOutcome(accepted=len(fresh), duplicates=duplicates)
        with self._cond:
            for key, record in fresh:
                item = self._items.get(key)
                if item is not None:
                    item.record = record
                    item.lease_id = None
                    if key in self._pending:
                        self._pending.remove(key)
            if lease_id is not None:
                self.leases.release(lease_id)
            if info is not None:
                info.commits += 1
            if replay_key is not None:
                self._replays[replay_key] = outcome
                while len(self._replays) > self._replay_cap:
                    self._replays.popitem(last=False)
            self._cond.notify_all()
        if self.metrics is not None:
            # Total + per-executor breakdown, as for fleet_claims above.
            self.metrics.inc("fleet_commits")  # lint: disable=METRIC002
            if duplicates:
                self.metrics.inc("fleet_commit_duplicates", duplicates)
            if info is not None:
                self.metrics.inc(
                    labeled("fleet_commits", executor=executor_id)
                )
        return outcome

    def graph(self, fingerprint: str) -> CSRGraph:
        """The graph behind one fingerprint (``/v1/fleet/graph/<fp>``)."""
        with self._lock:
            graph = self._graphs.get(fingerprint)
        if graph is None:
            raise ServingError(f"unknown graph fingerprint {fingerprint!r}")
        return graph

    # ------------------------------------------------------------- plumbing
    def _requeue_locked(self, lease_id, lease_keys):  # holds: _lock
        """Put a dead lease's unfinished keys back on the pending queue."""
        requeued = 0
        for key in lease_keys:
            item = self._items.get(key)
            if item is None or item.record is not None or item.local:
                continue
            if key in self._done:
                continue
            if item.lease_id != lease_id:
                continue  # already re-claimed under a newer lease
            item.lease_id = None
            if key not in self._pending:
                self._pending.append(key)
            requeued += 1
        return requeued

    def _ensure_sweeper_locked(self) -> None:  # holds: _lock
        """Start the background lease sweeper on first fleet membership.

        Claim long-polls sweep inline, but a fleet whose every executor
        died (or stopped polling) would otherwise never expire its leases
        or prune its registry; the sweeper guarantees progress regardless.
        """
        if self._sweeper is not None or self._closed:
            return
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="fleet-sweep", daemon=True
        )
        self._sweeper.start()

    def _sweep_loop(self) -> None:
        poll = max(0.05, self.lease_ttl / 4.0)
        while True:
            with self._cond:
                if self._closed:
                    return
                self._sweep_locked()
                # Bounded by ``poll`` (a fraction of the lease TTL) so
                # expiry/prune latency is bounded even when no claim is
                # polling; close() flips _closed and notify_all()s, so
                # shutdown never waits a full poll interval.
                self._cond.wait(poll)

    def close(self) -> None:
        """Stop the sweeper (idempotent).  Registered executors stay
        registered — the dispatcher can keep serving inline sweeps — but
        no background thread survives this call."""
        with self._cond:
            self._closed = True
            sweeper = self._sweeper
            self._cond.notify_all()
        if sweeper is not None:
            sweeper.join(timeout=5.0)  # outside the lock: the loop needs it

    def _sweep_locked(self) -> None:  # holds: _lock
        """Expire overdue leases (re-queue their keys) and prune executors
        silent past the horizon (their metrics go with them)."""
        for lease in self.leases.expired():
            requeued = self._requeue_locked(lease.lease_id, lease.keys)
            info = self.registry.get(lease.executor_id)
            if info is not None:
                info.lease_expiries += 1
            if self.metrics is not None:
                # Total + per-executor breakdown, as for fleet_claims above.
                self.metrics.inc(  # lint: disable=METRIC002
                    "fleet_lease_expiries"
                )
                self.metrics.inc(
                    labeled(
                        "fleet_lease_expiries", executor=lease.executor_id
                    )
                )
            if requeued:
                self._cond.notify_all()
        for info in self.registry.prune(self.lease_ttl * 5.0):
            self._drop_executor_metrics(info.executor_id)

    def _drop_executor_metrics(self, executor_id: str) -> None:
        if self.metrics is None:
            return
        for name in _EXECUTOR_METRICS:
            self.metrics.remove(labeled(name, executor=executor_id))

    # -------------------------------------------------------------- status
    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def leased_count(self) -> int:
        with self._lock:
            return sum(
                1
                for item in self._items.values()
                if item.lease_id is not None and item.record is None
            )

    def status(self) -> dict:
        """Fleet census for ``GET /v1/fleet`` and ``repro fleet status``."""
        held: dict[str, int] = {}
        for lease in self.leases.active():
            held[lease.executor_id] = held.get(lease.executor_id, 0) + len(
                lease.keys
            )
        executors = [
            {
                "executor_id": info.executor_id,
                "workers": info.workers,
                "age_seconds": round(info.age(), 3),
                "claims": info.claims,
                "commits": info.commits,
                "lease_expiries": info.lease_expiries,
                "leased_keys": held.get(info.executor_id, 0),
            }
            for info in self.registry.all()
        ]
        return {
            "executors": executors,
            "pending": self.pending_count,
            "leased": self.leased_count,
        }
