"""Lease table: every claimed batch carries a deadline.

PR 3's owner-death re-claim (a cancelled job's in-flight keys are released
for waiters) generalizes here to process death: a claim hands the executor
a :class:`Lease` over its keys with a TTL, heartbeats renew it, and a lease
whose deadline passes without a commit is *expired* — the dispatcher puts
the keys back on the pending queue for someone else.  A killed executor
therefore loses wall-clock time, never runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["Lease", "LeaseTable"]


@dataclass(frozen=True)
class Lease:
    """One executor's time-bounded hold over a batch of candidate keys."""

    lease_id: str
    executor_id: str
    keys: tuple[str, ...]
    issued_at: float
    deadline: float

    def expired(self, now: float | None = None) -> bool:
        return (time.monotonic() if now is None else now) > self.deadline


class LeaseTable:
    """Thread-safe table of outstanding leases.

    The table only tracks time: which keys a lease covers and when it dies.
    What expiry *means* (re-queue the keys, count the loss) is the
    dispatcher's business — keeping the table policy-free keeps it
    trivially correct.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._leases: dict[str, Lease] = {}  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock

    def issue(
        self, executor_id: str, keys: list[str], ttl: float
    ) -> Lease:
        """Grant one lease over ``keys`` expiring ``ttl`` seconds from now."""
        now = time.monotonic()
        with self._lock:
            lease = Lease(
                lease_id=f"lease-{self._next_id:06d}",
                executor_id=executor_id,
                keys=tuple(keys),
                issued_at=now,
                deadline=now + ttl,
            )
            self._next_id += 1
            self._leases[lease.lease_id] = lease
            return lease

    def renew_owner(self, executor_id: str, ttl: float) -> int:
        """Push every lease held by ``executor_id`` out to ``now + ttl``
        (the heartbeat path); returns how many were renewed."""
        deadline = time.monotonic() + ttl
        renewed = 0
        with self._lock:
            for lease_id, lease in list(self._leases.items()):
                if lease.executor_id != executor_id:
                    continue
                if lease.deadline < deadline:
                    self._leases[lease_id] = Lease(
                        lease_id=lease.lease_id,
                        executor_id=lease.executor_id,
                        keys=lease.keys,
                        issued_at=lease.issued_at,
                        deadline=deadline,
                    )
                renewed += 1
        return renewed

    def release(self, lease_id: str) -> Lease | None:
        """Drop one lease (commit landed); returns it, or ``None``."""
        with self._lock:
            return self._leases.pop(lease_id, None)

    def get(self, lease_id: str) -> Lease | None:
        with self._lock:
            return self._leases.get(lease_id)

    def expired(self) -> list[Lease]:
        """Pop and return every lease past its deadline (oldest first)."""
        now = time.monotonic()
        with self._lock:
            dead = sorted(
                (
                    lease
                    for lease in self._leases.values()
                    if lease.expired(now)
                ),
                key=lambda lease: lease.deadline,
            )
            for lease in dead:
                del self._leases[lease.lease_id]
            return dead

    def active(self) -> list[Lease]:
        """Every outstanding lease (point-in-time copy, id-sorted)."""
        with self._lock:
            return sorted(
                self._leases.values(), key=lambda lease: lease.lease_id
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)
