"""Remote profiling executor: the client-side half of the fleet.

:class:`ProfilingExecutor` is the process behind ``repro executor``.  It
registers with a navigation server over the ``/v1`` transport, then loops:
claim a leased batch, resolve the graph, run the candidates on its own
local :class:`~repro.runtime.parallel.ProfilingService` (the same
process-pool runner the server uses), and commit the records back —
idempotently, keyed by the lease id, so a retried POST can never
double-count.

Graph resolution is fingerprint-first: the claim names the dataset and the
graph's content hash, the executor tries to load the dataset locally and
only falls back to fetching the arrays over ``/v1/fleet/graph/<fp>`` when
the local load is missing or hashes differently.  Either way the hash is
verified, so an executor can never profile against the wrong graph.

Failure behaviour is deliberately dumb: on any server hiccup the loop
retries; on :class:`~repro.errors.UnknownExecutorError` it re-registers
under its old id (server restarted or pruned us) and carries on.  If the
executor itself dies, its heartbeats stop, its leases expire, and the
server re-issues the work — correctness never depends on an executor
surviving.
"""

from __future__ import annotations

import os
import threading

from repro.config.settings import TrainingConfig
from repro.errors import ServingError, UnknownExecutorError
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset
from repro.runtime.parallel import (
    ProfilingService,
    graph_fingerprint,
    record_to_dict,
)
from repro.serving.transport.client import RemoteNavigationClient
from repro.serving.transport.protocol import (
    IDEMPOTENCY_HEADER,
    FleetClaimRequest,
    FleetClaimResponse,
    FleetCommitRequest,
    FleetCommitResponse,
    FleetDeregisterResponse,
    FleetGraphResponse,
    FleetHeartbeatRequest,
    FleetHeartbeatResponse,
    FleetRegisterRequest,
    FleetRegisterResponse,
    FleetStatusResponse,
    graph_from_wire,
    task_from_wire,
)

__all__ = ["FleetClient", "ProfilingExecutor"]


class FleetClient(RemoteNavigationClient):
    """Typed client for the ``/v1/fleet/*`` endpoints.

    Extends :class:`RemoteNavigationClient` (same ``_call`` plumbing, typed
    error envelopes, retries) with the executor-facing fleet calls plus the
    observer-facing :meth:`fleet_status` that ``repro fleet status`` uses.
    """

    def register(
        self, *, workers: int = 1, executor_id: str | None = None
    ) -> FleetRegisterResponse:
        """Join (or rejoin) the fleet; safe to retry — registration under a
        known id is idempotent and a duplicate fresh id just gets pruned."""
        request = FleetRegisterRequest(workers=workers, executor_id=executor_id)
        payload = self._call(
            "POST", "/fleet/register", body=request.to_wire(), retry=True
        )
        return FleetRegisterResponse.from_wire(payload)

    def heartbeat(self, executor_id: str) -> FleetHeartbeatResponse:
        """One liveness beat (no retry — the next beat is due shortly)."""
        request = FleetHeartbeatRequest(executor_id=executor_id)
        payload = self._call(
            "POST", "/fleet/heartbeat", body=request.to_wire()
        )
        return FleetHeartbeatResponse.from_wire(payload)

    def claim(
        self,
        executor_id: str,
        *,
        max_candidates: int | None = None,
        timeout: float = 0.0,
    ) -> FleetClaimResponse:
        """One work-pull long-poll round (no retry — an unanswered claim's
        lease simply expires; the loop just opens the next round)."""
        request = FleetClaimRequest(
            executor_id=executor_id,
            max_candidates=max_candidates,
            timeout=timeout,
        )
        payload = self._call(
            "POST",
            "/fleet/claim",
            body=request.to_wire(),
            extra_timeout=timeout,
        )
        return FleetClaimResponse.from_wire(payload)

    def commit(
        self,
        executor_id: str,
        lease_id: str | None,
        keys: list,
        records: list,
        *,
        idempotency_key: str | None = None,
    ) -> FleetCommitResponse:
        """Deliver finished records; retried with the *same* idempotency
        key, so a dropped response replays instead of double-counting."""
        request = FleetCommitRequest(
            executor_id=executor_id,
            lease_id=lease_id,
            keys=keys,
            records=records,
            idempotency_key=idempotency_key,
        )
        headers = (
            {IDEMPOTENCY_HEADER: idempotency_key}
            if idempotency_key is not None
            else None
        )
        payload = self._call(
            "POST",
            "/fleet/commit",
            body=request.to_wire(),
            headers=headers,
            retry=True,
        )
        return FleetCommitResponse.from_wire(payload)

    def deregister(self, executor_id: str) -> bool:
        """Graceful exit; ``True`` if the server still knew the executor."""
        request = FleetHeartbeatRequest(executor_id=executor_id)
        payload = self._call(
            "POST", "/fleet/deregister", body=request.to_wire()
        )
        return FleetDeregisterResponse.from_wire(payload).deregistered

    def fleet_status(self) -> FleetStatusResponse:
        """The server's fleet census (``repro fleet status``)."""
        payload = self._call("GET", "/fleet", retry=True)
        return FleetStatusResponse.from_wire(payload)

    def fetch_graph(self, fingerprint: str) -> CSRGraph:
        """Pull one graph's arrays by content hash."""
        payload = self._call(
            "GET", f"/fleet/graph/{fingerprint}", retry=True
        )
        return graph_from_wire(FleetGraphResponse.from_wire(payload).graph)


class ProfilingExecutor:
    """One remote member of the profiling fleet.

    Parameters
    ----------
    server_url:
        Base URL of the navigation server (``http://host:port``).
    workers:
        Local process-pool width for running claimed candidates
        (``None``: CPU count, like the server's own pool).
    executor_id:
        Rejoin under a previously-assigned id; ``None`` asks the server
        for a fresh one.
    max_candidates:
        Cap per claim (``None``: take the server's batch limit).
    claim_timeout:
        Long-poll window of one claim round; short enough that ``stop()``
        is responsive, long enough that an idle executor is cheap.
    """

    def __init__(
        self,
        server_url: str,
        *,
        workers: int | None = None,
        executor_id: str | None = None,
        max_candidates: int | None = None,
        claim_timeout: float = 2.0,
        request_timeout: float = 30.0,
    ) -> None:
        if claim_timeout < 0:
            raise ServingError("claim_timeout must be non-negative")
        self.client = FleetClient(
            server_url, request_timeout=request_timeout
        )
        self.workers = workers
        self.executor_id = executor_id
        self.max_candidates = max_candidates
        self.claim_timeout = claim_timeout
        self.service = ProfilingService(max_workers=workers)
        self.heartbeat_seconds: float | None = None
        self.claimed = 0  # batches claimed (granted, non-empty)
        self.committed = 0  # records accepted by the server
        #: optional chaos/test hook: called with the grant after a claim
        #: lands and before any training runs.
        self.before_run = None
        self._graphs: dict[str, CSRGraph] = {}  # fingerprint -> graph
        self._stop = threading.Event()
        self._killed = False
        self._threads: list[threading.Thread] = []

    @property
    def runs(self) -> int:
        """Training runs actually executed on this executor."""
        return self.service.stats.executed

    # ------------------------------------------------------------ lifecycle
    def register(self) -> FleetRegisterResponse:
        """Join the fleet (idempotent; used for initial join and rejoin)."""
        response = self.client.register(
            workers=self.workers or os.cpu_count() or 1,
            executor_id=self.executor_id,
        )
        self.executor_id = response.executor_id
        self.heartbeat_seconds = response.heartbeat_seconds
        return response

    def start(self) -> None:
        """Register and run the heartbeat + work loops on daemon threads."""
        self.register()
        for name, target in (
            ("fleet-heartbeat", self._heartbeat_loop),
            ("fleet-work", self._work_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def run(self) -> None:
        """Register and work on the calling thread (the CLI foreground
        mode); heartbeats still ride a daemon thread."""
        self.register()
        thread = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        try:
            self._work_loop()
        finally:
            self._stop.set()
            self._deregister_quietly()

    def stop(self) -> None:
        """Graceful shutdown: finish the in-flight batch, deregister."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads.clear()
        if not self._killed:
            self._deregister_quietly()

    def kill(self) -> None:
        """Chaos shutdown: vanish without deregistering or committing.

        The in-flight batch (if any) is dropped before its commit — from
        the server's side this is indistinguishable from SIGKILL, so tests
        can exercise lease expiry in-process.
        """
        self._killed = True
        self._stop.set()

    def _deregister_quietly(self) -> None:
        if self.executor_id is None:
            return
        try:
            self.client.deregister(self.executor_id)
        except ServingError:
            pass  # server gone or restarted; pruning will clean us up

    # ---------------------------------------------------------------- loops
    def _heartbeat_loop(self) -> None:
        interval = self.heartbeat_seconds or 1.0
        while not self._stop.wait(interval):
            if self._killed:
                return
            try:
                self.client.heartbeat(self.executor_id)
            except UnknownExecutorError:
                try:
                    self.register()
                except ServingError:
                    pass
            except ServingError:
                pass  # transient; the next beat retries

    def _work_loop(self) -> None:
        while not self._stop.is_set():
            try:
                grant = self.client.claim(
                    self.executor_id,
                    max_candidates=self.max_candidates,
                    timeout=self.claim_timeout,
                )
            except UnknownExecutorError:
                try:
                    self.register()
                except ServingError:
                    self._stop.wait(0.2)
                continue
            except ServingError:
                self._stop.wait(0.2)
                continue
            if grant.empty:
                continue
            self.claimed += 1
            if self.before_run is not None:
                self.before_run(grant)
            if self._stop.is_set() and self._killed:
                return  # killed mid-claim: drop the batch uncommitted
            try:
                self._run_grant(grant)
            except ServingError:
                # Commit failed or the batch is unrunnable: drop it — the
                # lease expires server-side and someone else takes over.
                continue

    def _run_grant(self, grant: FleetClaimResponse) -> None:
        task = task_from_wire(grant.task)
        configs = [TrainingConfig.from_dict(c) for c in grant.configs]
        graph = self._resolve_graph(grant.dataset, grant.fingerprint)
        # The local service dedups and caches by content key exactly like
        # the server's, so ring affinity turns into warm re-claims: a
        # candidate this executor measured before costs nothing here.
        records = self.service.profile(task, configs, graph=graph)
        if self._killed:
            return  # chaos: the work happened, the commit never does
        outcome = self.client.commit(
            self.executor_id,
            grant.lease_id,
            list(grant.keys),
            [record_to_dict(record) for record in records],
            idempotency_key=grant.lease_id,
        )
        self.committed += outcome.accepted

    def _resolve_graph(
        self, dataset: str | None, fingerprint: str | None
    ) -> CSRGraph:
        if fingerprint is None:
            raise ServingError("claim grant carries no graph fingerprint")
        graph = self._graphs.get(fingerprint)
        if graph is not None:
            return graph
        if dataset:
            try:
                local = load_dataset(dataset)
            except Exception:
                local = None  # not a named dataset here; fetch instead
            if local is not None and graph_fingerprint(local) == fingerprint:
                self._graphs[fingerprint] = local
                return local
        fetched = self.client.fetch_graph(fingerprint)
        if graph_fingerprint(fetched) != fingerprint:
            raise ServingError(
                f"fetched graph hashes to {graph_fingerprint(fetched)!r}, "
                f"claim names {fingerprint!r}"
            )
        self._graphs[fingerprint] = fetched
        return fetched
