"""Executor registry: who is in the fleet and which keys they own.

The registry is the dispatcher's membership view — executors register over
``/v1/fleet/register``, refresh themselves with every heartbeat/claim/commit
(:meth:`ExecutorRegistry.touch`), and fall out either explicitly
(:meth:`deregister`) or by going silent past the prune horizon.

Routing rides a consistent-hash ring over the same ``candidate_key``
content hashes the result store uses: each executor owns a stable arc of
the key space, so the same candidate is preferentially claimed by the same
executor across jobs — dedup affinity for the executor's in-memory record
cache — while adding or losing an executor only remaps the arcs adjacent
to it, not the whole space.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import dataclass

from repro.errors import UnknownExecutorError

__all__ = ["ExecutorInfo", "ExecutorRegistry", "HashRing"]


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping candidate keys to executor ids.

    Each node is placed at ``replicas`` pseudo-random points (virtual
    nodes), which evens out arc sizes with few real nodes; a key routes to
    the first node clockwise from its own hash.  Not thread-safe — the
    owning registry serializes access under its lock.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, str] = {}

    def add(self, node: str) -> None:
        """Place one node on the ring (idempotent)."""
        for i in range(self.replicas):
            point = _ring_hash(f"{node}#{i}")
            if self._owners.get(point) == node:
                continue
            # first-writer-wins on the (astronomically unlikely) collision
            if point in self._owners:
                continue
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Take one node off the ring (idempotent)."""
        for i in range(self.replicas):
            point = _ring_hash(f"{node}#{i}")
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def route(self, key: str) -> str | None:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        point = _ring_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def __len__(self) -> int:
        return len(set(self._owners.values()))


@dataclass
class ExecutorInfo:
    """One registered executor's bookkeeping row (registry-owned)."""

    executor_id: str
    workers: int
    registered_at: float
    last_seen: float
    claims: int = 0
    commits: int = 0
    lease_expiries: int = 0
    generation: int = 0  # bumped on every re-registration of the same id

    def age(self, now: float | None = None) -> float:
        """Seconds since this executor was last heard from."""
        return (time.monotonic() if now is None else now) - self.last_seen


class ExecutorRegistry:
    """Thread-safe membership table + consistent-hash routing for the fleet.

    ``touch`` is the liveness primitive: every fleet RPC from an executor
    refreshes its ``last_seen``, and :meth:`live`/:meth:`prune` interpret
    silence against the caller-supplied horizons (the dispatcher derives
    both from its lease TTL).
    """

    def __init__(self, *, replicas: int = 64) -> None:
        self._lock = threading.Lock()
        self._executors: dict[str, ExecutorInfo] = {}  # guarded-by: _lock
        self._ring = HashRing(replicas)  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock

    def register(
        self, *, workers: int = 1, executor_id: str | None = None
    ) -> ExecutorInfo:
        """Admit an executor; re-registering a known id refreshes it.

        Re-registration is the recovery path after a server restart or a
        heartbeat gap (:class:`UnknownExecutorError` tells the executor to
        come back through here), so it must be idempotent: the same id
        keeps its ring arcs and its counters, only liveness resets.
        """
        now = time.monotonic()
        with self._lock:
            if executor_id is None:
                executor_id = f"ex-{self._next_id:04d}"
                self._next_id += 1
            info = self._executors.get(executor_id)
            if info is None:
                info = ExecutorInfo(
                    executor_id=executor_id,
                    workers=max(1, workers),
                    registered_at=now,
                    last_seen=now,
                )
                self._executors[executor_id] = info
                self._ring.add(executor_id)
            else:
                info.workers = max(1, workers)
                info.last_seen = now
                info.generation += 1
            return info

    def touch(self, executor_id: str) -> ExecutorInfo:
        """Refresh liveness; raises :class:`UnknownExecutorError` so an
        unregistered (restarted-server, pruned) executor re-registers."""
        with self._lock:
            info = self._executors.get(executor_id)
            if info is None:
                raise UnknownExecutorError(
                    f"unknown executor {executor_id!r}; re-register"
                )
            info.last_seen = time.monotonic()
            return info

    def get(self, executor_id: str) -> ExecutorInfo | None:
        with self._lock:
            return self._executors.get(executor_id)

    def deregister(self, executor_id: str) -> bool:
        """Remove an executor (graceful shutdown); ``True`` if it existed."""
        with self._lock:
            info = self._executors.pop(executor_id, None)
            if info is None:
                return False
            self._ring.remove(executor_id)
            return True

    def live(self, horizon: float) -> list[ExecutorInfo]:
        """Executors heard from within ``horizon`` seconds, id-sorted."""
        now = time.monotonic()
        with self._lock:
            return sorted(
                (
                    info
                    for info in self._executors.values()
                    if now - info.last_seen <= horizon
                ),
                key=lambda info: info.executor_id,
            )

    def prune(self, horizon: float) -> list[ExecutorInfo]:
        """Drop executors silent past ``horizon``; returns what was removed."""
        now = time.monotonic()
        removed = []
        with self._lock:
            for executor_id in list(self._executors):
                info = self._executors[executor_id]
                if now - info.last_seen > horizon:
                    removed.append(self._executors.pop(executor_id))
                    self._ring.remove(executor_id)
        return removed

    def route(self, key: str) -> str | None:
        """Preferred owner of one candidate key (``None``: empty fleet)."""
        with self._lock:
            return self._ring.route(key)

    def all(self) -> list[ExecutorInfo]:
        """Every registered executor, id-sorted (point-in-time copy)."""
        with self._lock:
            return sorted(
                self._executors.values(), key=lambda info: info.executor_id
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._executors)
