"""Distributed profiling fleet: remote executors with lease-based work pull.

The fleet generalizes the server's process pool across machines.  The
server side (:class:`FleetDispatcher` + :class:`ExecutorRegistry` +
:class:`LeaseTable`) plugs into the profiling service's batch handout seam
and hands leased candidate batches to whoever claims them; the client side
(:class:`ProfilingExecutor` over :class:`FleetClient`) pulls, runs and
commits.  With zero executors registered, none of this is on any code
path — a local-only server behaves exactly as before.

Importing this package does not import the HTTP transport; the dispatcher
is socket-free (it only ever sees Python calls), which is what keeps the
in-process tests and the local serving path free of network machinery.
:class:`ProfilingExecutor` is re-exported lazily for the same reason —
pulling it in drags ``urllib`` along, and only actual executors need it.
"""

from repro.serving.fleet.dispatcher import (
    ClaimGrant,
    CommitOutcome,
    FleetDispatcher,
)
from repro.serving.fleet.leases import Lease, LeaseTable
from repro.serving.fleet.registry import ExecutorInfo, ExecutorRegistry, HashRing

__all__ = [
    "ClaimGrant",
    "CommitOutcome",
    "ExecutorInfo",
    "ExecutorRegistry",
    "FleetClient",
    "FleetDispatcher",
    "HashRing",
    "Lease",
    "LeaseTable",
    "ProfilingExecutor",
]


def __getattr__(name: str):
    # Lazy: the executor half imports the HTTP client stack, which a
    # dispatch-only server process never needs.
    if name in ("ProfilingExecutor", "FleetClient"):
        from repro.serving.fleet import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
