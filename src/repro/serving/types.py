"""Request/job vocabulary of the navigation serving layer.

A :class:`NavigationRequest` is what a client hands the server: the
pre-determined task, the exploration objectives, the Step-2 profiling budget,
a queue priority and the tenant it belongs to (the fair-share scheduling
lane).  The server wraps each accepted request in a :class:`Job` that walks
the lifecycle

    PENDING -> RUNNING -> DONE | FAILED
    PENDING -> CANCELLED            (dropped from the queue, never ran)
    RUNNING -> CANCELLED            (cooperative, at a profiling-batch
                                     boundary via the job's token)

and, on success, carries a :class:`JobResult` (the chosen guidelines plus
the exploration report, and the measured training run when the request asked
for one).  Requests round-trip through plain dicts so job files and stdin
specs feed ``repro serve`` directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.config.settings import TaskSpec
from repro.errors import ServingError
from repro.explorer.constraints import RuntimeConstraint
from repro.explorer.decision import Guideline
from repro.explorer.navigator import NavigatorReport
from repro.explorer.objectives import PRIORITY_PRESETS
from repro.runtime.parallel import CancellationToken
from repro.runtime.report import PerfReport

__all__ = ["JobStatus", "NavigationRequest", "JobResult", "Job", "TERMINAL_STATES"]


class JobStatus(str, enum.Enum):
    """Lifecycle states of a served navigation job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job can never leave.
TERMINAL_STATES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
)


@dataclass(frozen=True)
class NavigationRequest:
    """One client's ask: navigate ``task`` for the given objectives.

    ``priority`` orders the server queue (higher runs first);
    ``priorities`` are the exploration objectives (paper Table 1 modes).
    ``tenant`` names the fair-share scheduling lane the request rides (and
    the quota bucket it counts against); the empty string is the shared
    anonymous lane.  ``train`` additionally executes the chosen guideline
    on the backend (Step 3) and attaches the measured :class:`PerfReport`.
    """

    task: TaskSpec
    priorities: tuple[str, ...] = ("balance",)
    budget: int = 16
    profile_epochs: int = 2
    seed: int = 0
    priority: int = 0
    constraint: RuntimeConstraint | None = None
    train: bool = False
    tag: str = ""
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.budget < 8:
            raise ServingError("budget must be at least 8 (estimator minimum)")
        if not self.priorities:
            raise ServingError("at least one exploration priority is required")
        unknown = [p for p in self.priorities if p not in PRIORITY_PRESETS]
        if unknown:
            raise ServingError(
                f"unknown exploration priorities {unknown}; "
                f"known: {sorted(PRIORITY_PRESETS)}"
            )

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly spec (the ``repro serve`` job-file format)."""
        out = {
            "dataset": self.task.dataset,
            "arch": self.task.arch,
            "platform": self.task.platform,
            "epochs": self.task.epochs,
            "lr": self.task.lr,
            "task_seed": self.task.seed,
            "priorities": list(self.priorities),
            "budget": self.budget,
            "profile_epochs": self.profile_epochs,
            "seed": self.seed,
            "priority": self.priority,
            "train": self.train,
            "tag": self.tag,
            "tenant": self.tenant,
        }
        if self.constraint is not None:
            if self.constraint.max_time_s is not None:
                out["max_time_ms"] = self.constraint.max_time_s * 1e3
            if self.constraint.max_memory_bytes is not None:
                out["max_memory_mib"] = self.constraint.max_memory_bytes / 2**20
            if self.constraint.min_accuracy is not None:
                out["min_accuracy"] = self.constraint.min_accuracy
        return out

    @classmethod
    def from_dict(cls, spec: dict) -> "NavigationRequest":
        """Inverse of :meth:`to_dict`; unknown keys are rejected early so a
        typo in a job file fails at submit, not after hours in the queue."""
        known = {
            "dataset",
            "arch",
            "platform",
            "epochs",
            "lr",
            "task_seed",
            "priorities",
            "budget",
            "profile_epochs",
            "seed",
            "priority",
            "train",
            "tag",
            "tenant",
            "max_time_ms",
            "max_memory_mib",
            "min_accuracy",
        }
        unknown = set(spec) - known
        if unknown:
            raise ServingError(f"unknown request keys: {sorted(unknown)}")
        if "dataset" not in spec:
            raise ServingError("request spec needs at least a 'dataset'")
        task_kwargs = {"dataset": spec["dataset"]}
        for key in ("arch", "platform", "epochs", "lr"):
            if key in spec:
                task_kwargs[key] = spec[key]
        if "task_seed" in spec:
            task_kwargs["seed"] = spec["task_seed"]
        constraint = None
        if {"max_time_ms", "max_memory_mib", "min_accuracy"} & set(spec):
            constraint = RuntimeConstraint(
                max_time_s=(
                    None
                    if spec.get("max_time_ms") is None
                    else spec["max_time_ms"] / 1e3
                ),
                max_memory_bytes=(
                    None
                    if spec.get("max_memory_mib") is None
                    else spec["max_memory_mib"] * 2**20
                ),
                min_accuracy=spec.get("min_accuracy"),
            )
        return cls(
            task=TaskSpec(**task_kwargs),
            priorities=tuple(spec.get("priorities", ("balance",))),
            budget=spec.get("budget", 16),
            profile_epochs=spec.get("profile_epochs", 2),
            seed=spec.get("seed", 0),
            priority=spec.get("priority", 0),
            constraint=constraint,
            train=spec.get("train", False),
            tag=spec.get("tag", ""),
            tenant=spec.get("tenant", ""),
        )


@dataclass
class JobResult:
    """What a DONE job produced."""

    guidelines: dict[str, Guideline]
    report: NavigatorReport
    perf: PerfReport | None = None

    def best(self) -> Guideline:
        """The guideline for the request's first (primary) objective."""
        return next(iter(self.guidelines.values()))


@dataclass
class Job:
    """Server-side bookkeeping of one accepted request."""

    job_id: str
    request: NavigationRequest
    status: JobStatus = JobStatus.PENDING
    result: JobResult | None = None
    error: str | None = None
    submitted_seq: int = 0  # monotonic submission order (FIFO tiebreak)
    started_seq: int | None = None  # monotonic start order (None = never ran)
    #: cooperative cancellation flag; ``cancel()`` on a RUNNING job flips it
    #: and the job observes it at the next profiling-batch boundary.
    cancel_token: CancellationToken = field(
        default_factory=CancellationToken, repr=False, compare=False
    )
    # monotonic-clock timestamps (None until the event happens): completion
    # latency is finished_at - submitted_at, service time is
    # finished_at - started_at.  The fairness bench reads these.
    submitted_at: float | None = field(default=None, compare=False)
    started_at: float | None = field(default=None, compare=False)
    finished_at: float | None = field(default=None, compare=False)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    def describe(self) -> str:
        req = self.request
        what = f"{req.task.dataset}+{req.task.arch} {'/'.join(req.priorities)}"
        line = f"{self.job_id} [{self.status.value}] {what}"
        if self.status is JobStatus.DONE and self.result is not None:
            line += f" -> {self.result.best().describe()}"
        elif self.status is JobStatus.FAILED:
            line += f" -> {self.error}"
        return line
