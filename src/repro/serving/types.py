"""Request/job vocabulary of the navigation serving layer.

A :class:`NavigationRequest` is what a client hands the server: the
pre-determined task, the exploration objectives, the Step-2 profiling budget,
a queue priority and the tenant it belongs to (the fair-share scheduling
lane).  The server wraps each accepted request in a :class:`Job` that walks
the lifecycle

    PENDING -> RUNNING -> DONE | FAILED
    PENDING -> CANCELLED            (dropped from the queue, never ran)
    RUNNING -> CANCELLED            (cooperative, at a profiling-batch
                                     boundary via the job's token)

and, on success, carries a :class:`JobResult` (the chosen guidelines plus
the exploration report, and the measured training run when the request asked
for one).  Requests round-trip through plain dicts so job files and stdin
specs feed ``repro serve`` directly.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from repro.config.settings import TaskSpec, TrainingConfig
from repro.errors import ServingError
from repro.estimator.graybox import PredictedPerf
from repro.explorer.constraints import RuntimeConstraint
from repro.explorer.decision import Guideline
from repro.explorer.dfs import ExplorationResult
from repro.explorer.navigator import NavigatorReport
from repro.explorer.objectives import PRIORITY_PRESETS
from repro.graphs.profiling import GraphProfile
from repro.hardware.memory import MemoryBreakdown
from repro.runtime.parallel import CancellationToken
from repro.runtime.report import EpochStats, PerfReport
from repro.serving.events import EventBuffer
from repro.transfer.policy import TransferPolicy

__all__ = [
    "JobStatus",
    "JobSnapshot",
    "NavigationRequest",
    "JobResult",
    "Job",
    "TERMINAL_STATES",
]


class JobStatus(str, enum.Enum):
    """Lifecycle states of a served navigation job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job can never leave.
TERMINAL_STATES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
)


@dataclass(frozen=True)
class NavigationRequest:
    """One client's ask: navigate ``task`` for the given objectives.

    ``priority`` orders the server queue (higher runs first);
    ``priorities`` are the exploration objectives (paper Table 1 modes).
    ``tenant`` names the fair-share scheduling lane the request rides (and
    the quota bucket it counts against); the empty string is the shared
    anonymous lane.  ``train`` additionally executes the chosen guideline
    on the backend (Step 3) and attaches the measured :class:`PerfReport`.
    ``transfer_policy`` overrides the server's default cross-task transfer
    behaviour for this request (``enabled=False`` forces a cold run); the
    default ``None`` inherits whatever the server is configured with.
    """

    task: TaskSpec
    priorities: tuple[str, ...] = ("balance",)
    budget: int = 16
    profile_epochs: int = 2
    seed: int = 0
    priority: int = 0
    constraint: RuntimeConstraint | None = None
    train: bool = False
    tag: str = ""
    tenant: str = ""
    transfer_policy: TransferPolicy | None = None

    def __post_init__(self) -> None:
        if self.budget < 8:
            raise ServingError("budget must be at least 8 (estimator minimum)")
        if not self.priorities:
            raise ServingError("at least one exploration priority is required")
        unknown = [p for p in self.priorities if p not in PRIORITY_PRESETS]
        if unknown:
            raise ServingError(
                f"unknown exploration priorities {unknown}; "
                f"known: {sorted(PRIORITY_PRESETS)}"
            )

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly spec (the ``repro serve`` job-file format)."""
        out = {
            "dataset": self.task.dataset,
            "arch": self.task.arch,
            "platform": self.task.platform,
            "epochs": self.task.epochs,
            "lr": self.task.lr,
            "task_seed": self.task.seed,
            "train_frac": self.task.train_frac,
            "val_frac": self.task.val_frac,
            "priorities": list(self.priorities),
            "budget": self.budget,
            "profile_epochs": self.profile_epochs,
            "seed": self.seed,
            "priority": self.priority,
            "train": self.train,
            "tag": self.tag,
            "tenant": self.tenant,
        }
        if self.constraint is not None:
            if self.constraint.max_time_s is not None:
                out["max_time_ms"] = self.constraint.max_time_s * 1e3
            if self.constraint.max_memory_bytes is not None:
                out["max_memory_mib"] = self.constraint.max_memory_bytes / 2**20
            if self.constraint.min_accuracy is not None:
                out["min_accuracy"] = self.constraint.min_accuracy
        if self.transfer_policy is not None:
            out["transfer_policy"] = self.transfer_policy.to_dict()
        return out

    @classmethod
    def from_dict(cls, spec: dict) -> "NavigationRequest":
        """Inverse of :meth:`to_dict`; unknown keys are rejected early so a
        typo in a job file fails at submit, not after hours in the queue."""
        known = {
            "dataset",
            "arch",
            "platform",
            "epochs",
            "lr",
            "task_seed",
            "train_frac",
            "val_frac",
            "priorities",
            "budget",
            "profile_epochs",
            "seed",
            "priority",
            "train",
            "tag",
            "tenant",
            "max_time_ms",
            "max_memory_mib",
            "min_accuracy",
            "transfer_policy",
        }
        unknown = set(spec) - known
        if unknown:
            raise ServingError(f"unknown request keys: {sorted(unknown)}")
        if "dataset" not in spec:
            raise ServingError("request spec needs at least a 'dataset'")
        task_kwargs = {"dataset": spec["dataset"]}
        for key in ("arch", "platform", "epochs", "lr", "train_frac", "val_frac"):
            if key in spec:
                task_kwargs[key] = spec[key]
        if "task_seed" in spec:
            task_kwargs["seed"] = spec["task_seed"]
        constraint = None
        if {"max_time_ms", "max_memory_mib", "min_accuracy"} & set(spec):
            constraint = RuntimeConstraint(
                max_time_s=(
                    None
                    if spec.get("max_time_ms") is None
                    else spec["max_time_ms"] / 1e3
                ),
                max_memory_bytes=(
                    None
                    if spec.get("max_memory_mib") is None
                    else spec["max_memory_mib"] * 2**20
                ),
                min_accuracy=spec.get("min_accuracy"),
            )
        return cls(
            task=TaskSpec(**task_kwargs),
            priorities=tuple(spec.get("priorities", ("balance",))),
            budget=spec.get("budget", 16),
            profile_epochs=spec.get("profile_epochs", 2),
            seed=spec.get("seed", 0),
            priority=spec.get("priority", 0),
            constraint=constraint,
            train=spec.get("train", False),
            tag=spec.get("tag", ""),
            tenant=spec.get("tenant", ""),
            transfer_policy=(
                None
                if spec.get("transfer_policy") is None
                else TransferPolicy.from_dict(spec["transfer_policy"])
            ),
        )


# ------------------------------------------------- result wire serialization
def _task_to_dict(task: TaskSpec) -> dict:
    # compare-excluded ``extra`` stays out: it may hold non-JSON payloads
    # and does not determine the task (mirrors the profiling-cache key).
    return {
        f.name: getattr(task, f.name)
        for f in dataclasses.fields(TaskSpec)
        if f.compare
    }


def _guideline_to_dict(guideline: Guideline) -> dict:
    return {
        "priority": guideline.priority,
        "config": guideline.config.to_dict(),
        "predicted": dataclasses.asdict(guideline.predicted),
        "score": guideline.score,
        "front_size": guideline.front_size,
    }


def _guideline_from_dict(data: dict) -> Guideline:
    return Guideline(
        priority=data["priority"],
        config=TrainingConfig.from_dict(data["config"]),
        predicted=PredictedPerf(**data["predicted"]),
        score=data["score"],
        front_size=data["front_size"],
    )


def _perf_to_dict(perf: PerfReport) -> dict:
    """Wire form of a measured training run.

    Per-batch records are deliberately *not* shipped: a remote caller gets
    the epoch-level statistics and the ``Perf(T, Γ, Acc)`` summary, not the
    thousands of :class:`BatchRecord` rows backing them.
    """
    return {
        "time_s": perf.time_s,
        "memory": {
            "model": perf.memory.model,
            "cache": perf.memory.cache,
            "runtime": perf.memory.runtime,
        },
        "accuracy": perf.accuracy,
        "epochs": [dataclasses.asdict(e) for e in perf.epochs],
        "config_summary": perf.config_summary,
        "task_summary": perf.task_summary,
    }


def _perf_from_dict(data: dict) -> PerfReport:
    return PerfReport(
        time_s=data["time_s"],
        memory=MemoryBreakdown(**data["memory"]),
        accuracy=data["accuracy"],
        epochs=[EpochStats(**e) for e in data["epochs"]],
        config_summary=data["config_summary"],
        task_summary=data["task_summary"],
    )


def _report_to_dict(report: NavigatorReport) -> dict:
    exploration = report.exploration
    return {
        "task": _task_to_dict(report.task),
        "guidelines": {
            name: _guideline_to_dict(g)
            for name, g in report.guidelines.items()
        },
        "exploration": {
            "candidates": [c.to_dict() for c in exploration.candidates],
            "predictions": [
                dataclasses.asdict(p) for p in exploration.predictions
            ],
            "visited_leaves": exploration.visited_leaves,
            "pruned_subtrees": exploration.pruned_subtrees,
            "evaluated": exploration.evaluated,
            "stats": exploration.stats,
        },
        "num_ground_truth": report.num_ground_truth,
        "profile": (
            None if report.profile is None else dataclasses.asdict(report.profile)
        ),
        "extras": report.extras,
    }


def _report_from_dict(data: dict) -> NavigatorReport:
    exploration = data["exploration"]
    return NavigatorReport(
        task=TaskSpec(**data["task"]),
        guidelines={
            name: _guideline_from_dict(g)
            for name, g in data["guidelines"].items()
        },
        exploration=ExplorationResult(
            candidates=[
                TrainingConfig.from_dict(c) for c in exploration["candidates"]
            ],
            predictions=[
                PredictedPerf(**p) for p in exploration["predictions"]
            ],
            visited_leaves=exploration["visited_leaves"],
            pruned_subtrees=exploration["pruned_subtrees"],
            evaluated=exploration["evaluated"],
            stats=exploration["stats"],
        ),
        num_ground_truth=data["num_ground_truth"],
        profile=(
            None if data["profile"] is None else GraphProfile(**data["profile"])
        ),
        extras=data.get("extras", {}),
    )


@dataclass
class JobResult:
    """What a DONE job produced."""

    guidelines: dict[str, Guideline]
    report: NavigatorReport
    perf: PerfReport | None = None

    def best(self) -> Guideline:
        """The guideline for the request's first (primary) objective."""
        return next(iter(self.guidelines.values()))

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly encoding — the transport's result payload.

        Round-trips everything a client consumes (guidelines, the full
        exploration report, epoch-level training stats) except the raw
        per-batch profiling rows, which stay server-side.
        """
        return {
            "guidelines": {
                name: _guideline_to_dict(g)
                for name, g in self.guidelines.items()
            },
            "report": _report_to_dict(self.report),
            "perf": None if self.perf is None else _perf_to_dict(self.perf),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        """Inverse of :meth:`to_dict` (modulo the dropped batch rows)."""
        return cls(
            guidelines={
                name: _guideline_from_dict(g)
                for name, g in data["guidelines"].items()
            },
            report=_report_from_dict(data["report"]),
            perf=None if data["perf"] is None else _perf_from_dict(data["perf"]),
        )


@dataclass(frozen=True)
class JobSnapshot:
    """One consistent, immutable view of a job's observable state.

    Taken under the server lock (:meth:`NavigationServer.snapshot`), so
    ``status``, ``error`` and the timestamps all belong to the *same*
    moment — unlike issuing separate ``status()``/``job()`` calls, which can
    interleave with a worker's terminal transition.  This is also the wire
    form job listings and status polls ship over the transport.

    The timestamps are the *server's* ``time.monotonic()`` readings: only
    differences between them are meaningful (queueing delay, service time),
    never comparisons against wall clock or a remote client's own clocks.
    """

    job_id: str
    status: JobStatus
    error: str | None = None
    traceback: str | None = None
    tag: str = ""
    tenant: str = ""
    priority: int = 0
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["status"] = self.status.value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JobSnapshot":
        payload = dict(data)
        payload["status"] = JobStatus(payload["status"])
        return cls(**payload)


@dataclass
class Job:
    """Server-side bookkeeping of one accepted request."""

    job_id: str
    request: NavigationRequest
    status: JobStatus = JobStatus.PENDING
    result: JobResult | None = None
    error: str | None = None
    #: server-side traceback text of a FAILED job (feeds JobFailedError).
    traceback: str | None = None
    submitted_seq: int = 0  # monotonic submission order (FIFO tiebreak)
    started_seq: int | None = None  # monotonic start order (None = never ran)
    #: cooperative cancellation flag; ``cancel()`` on a RUNNING job flips it
    #: and the job observes it at the next profiling-batch boundary.
    cancel_token: CancellationToken = field(
        default_factory=CancellationToken, repr=False, compare=False
    )
    #: bounded ring of this job's progress events (the server emits into
    #: it; subscribers read by sequence number via ``server.events``).
    events: EventBuffer = field(
        default_factory=EventBuffer, repr=False, compare=False
    )
    # monotonic-clock timestamps (None until the event happens): completion
    # latency is finished_at - submitted_at, service time is
    # finished_at - started_at.  The fairness bench reads these.
    submitted_at: float | None = field(default=None, compare=False)
    started_at: float | None = field(default=None, compare=False)
    finished_at: float | None = field(default=None, compare=False)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATES

    def snapshot(self) -> JobSnapshot:
        """Immutable copy of the observable state (call under the server
        lock for a consistent view — :meth:`NavigationServer.snapshot`)."""
        return JobSnapshot(
            job_id=self.job_id,
            status=self.status,
            error=self.error,
            traceback=self.traceback,
            tag=self.request.tag,
            tenant=self.request.tenant,
            priority=self.request.priority,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
        )

    def describe(self) -> str:
        req = self.request
        what = f"{req.task.dataset}+{req.task.arch} {'/'.join(req.priorities)}"
        line = f"{self.job_id} [{self.status.value}] {what}"
        if self.status is JobStatus.DONE and self.result is not None:
            line += f" -> {self.result.best().describe()}"
        elif self.status is JobStatus.FAILED:
            line += f" -> {self.error}"
        return line
