"""Multi-tenant navigation server.

:class:`NavigationServer` turns the single-user :class:`GNNavigator` facade
into a service: many clients submit :class:`NavigationRequest`s, a bounded
pool of worker threads drains a priority queue, and every job's Step-2
profiling is delegated to one :class:`SharedProfilingService` so the
dominant cost — ground-truth training runs — is paid once per unique
``(task, config, graph)`` across *all* tenants, in flight or in the
persistent store.

The server is in-process by design (the profiling service underneath fans
out to worker *processes*; job threads spend their time waiting on it), so
"client" and "server" share memory and polling is cheap.  Lifecycle::

    with NavigationServer(cache_dir=...) as server:
        job_id = server.submit(NavigationRequest(task=task))
        result = server.result(job_id)         # blocks until DONE
        jobs = server.drain()                  # or: wait for everything
"""

from __future__ import annotations

import threading
import time
import traceback as traceback_mod

from repro.errors import (
    JobCancelled,
    JobFailedError,
    ServerStoppingError,
    ServingError,
    UnknownJobError,
)
from repro.config.settings import KERNEL_NAMES
from repro.explorer.navigator import GNNavigator
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset
from repro.runtime.kernels import kernel_counters
from repro.runtime.parallel import ProfilingService, ProfilingStats, ResultStore
from repro.serving.fleet import FleetDispatcher
from repro.serving.events import (
    DEFAULT_POLL_SECONDS,
    EventBatch,
    EventBuffer,
    JobProgressEvent,
)
from repro.serving.metrics import MetricsRegistry, labeled
from repro.serving.queue import PriorityJobQueue
from repro.serving.scheduler import SharedProfilingService
from repro.transfer.policy import TransferPolicy
from repro.transfer.warmstart import TransferContext
from repro.serving.types import (
    Job,
    JobResult,
    JobSnapshot,
    JobStatus,
    NavigationRequest,
)

__all__ = ["NavigationServer"]

#: labeled per-kernel gauge families; registered on start, removed on stop
_KERNEL_METRICS = ("kernel_spmm_calls", "kernel_spmm_seconds")


class NavigationServer:
    """Priority-scheduled, cache-sharing front-end over ``GNNavigator``.

    Parameters
    ----------
    workers:
        Concurrent navigation jobs (worker threads).  Each job's profiling
        additionally fans out across ``profile_workers`` processes.
    profile_workers:
        Process fan-out inside the shared profiling service (``None``/``0``/
        ``1`` = in-process serial runs).
    cache_dir:
        Directory of the shared persistent :class:`ResultStore`; ``None``
        keeps sharing in-memory only (still deduped across jobs).
    graphs:
        Pre-registered graphs by dataset name, consulted before
        :func:`load_dataset` — lets tenants serve custom graphs and tests
        serve fixtures.  Datasets loaded on demand are cached here too, so
        every job for a dataset shares one graph object (and one
        fingerprint memo in the profiling service).
    space:
        Server-wide design space every job explores (``None`` = the default
        space).  One space for all tenants is what makes their Step-2
        samples overlap — the whole point of sharing the store.
    autostart:
        Start worker threads immediately.  Pass ``False`` to stage
        submissions first (deterministic priority-ordering tests), then call
        :meth:`start`.
    fairness:
        Schedule the queue by weighted round-robin across tenants instead
        of pure priority, so one burst-submitting tenant cannot starve the
        rest; priority still orders jobs within a tenant's lane.
    weights:
        Fair-share weights by tenant name (default 1 each).
    quotas:
        Per-tenant ``max_inflight`` caps (tenant name -> concurrent jobs).
    max_inflight:
        Default in-flight cap for tenants without an explicit quota;
        ``None`` = unlimited.
    store_budget:
        Entry budget for the persistent store: every save past it evicts
        the least-recently-written entries (``stats.evictions`` counts
        them).  ``None`` = unbounded.
    store_budget_bytes:
        On-disk *byte* budget for the persistent store, same eviction
        policy; both budgets may be active at once.  Entries pinned via
        ``server.store.pin(key)`` survive eviction.
    event_buffer:
        Capacity of each job's progress-event ring buffer.  A slow (or
        absent) subscriber never blocks the job: past the capacity the
        oldest events are dropped, the drop is counted in
        ``metrics["events_dropped"]``, and readers that fell behind see an
        explicit gap instead of a silent skip.
    fleet_lease_ttl:
        Lease TTL (seconds) of the distributed profiling fleet — how long
        a remote executor may go silent before its claimed work is
        re-issued.  Irrelevant until an executor registers; with an empty
        fleet every batch runs on the local pool exactly as before.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        profile_workers: int | None = None,
        cache_dir: str | None = None,
        graphs: dict[str, CSRGraph] | None = None,
        space=None,
        autostart: bool = True,
        fairness: bool = False,
        weights: dict[str, int] | None = None,
        quotas: dict[str, int] | None = None,
        max_inflight: int | None = None,
        store_budget: int | None = None,
        store_budget_bytes: int | None = None,
        event_buffer: int = 256,
        fleet_lease_ttl: float = 10.0,
        transfer: TransferPolicy | bool = False,
    ) -> None:
        if workers < 1:
            raise ServingError("a server needs at least one worker thread")
        if event_buffer < 1:
            raise ServingError("event_buffer must hold at least one event")
        self.workers = workers
        self.event_buffer = event_buffer
        self.space = space
        self.service = ProfilingService(
            max_workers=profile_workers,
            cache_dir=cache_dir,
            store_budget=store_budget,
            store_budget_bytes=store_budget_bytes,
        )
        self.profiler = SharedProfilingService(self.service)
        self._queue_config = {
            "fairness": fairness,
            "weights": weights,
            "quotas": quotas,
            "max_inflight": max_inflight,
        }
        self.queue = PriorityJobQueue(**self._queue_config)
        self._graphs = dict(graphs or {})  # guarded-by: _graph_lock
        self._graph_lock = threading.Lock()
        self._lock = threading.Lock()
        self._terminal = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock
        self._started_seq = 0  # guarded-by: _lock
        self._threads: list[threading.Thread] = []
        self._stopping = False  # guarded-by: _lock
        self.metrics = MetricsRegistry()
        # Attaching the dispatcher sets ``service.runner``: profiling
        # batches route to registered executors and fall back to the local
        # pool when the fleet is empty — a local-only server never notices.
        self.fleet = FleetDispatcher(
            self.service, lease_ttl=fleet_lease_ttl, metrics=self.metrics
        )
        # Cross-task transfer rides the persistent store: with a corpus and
        # a server-level opt-in, navigations warm-start from prior tenants'
        # ground truth (requests can still override per-job via their
        # ``transfer_policy``).  Memory-only servers have no corpus and run
        # cold regardless.
        self.transfer: TransferContext | None = None
        if transfer and self.profiler.corpus is not None:
            policy = transfer if isinstance(transfer, TransferPolicy) else None
            self.transfer = TransferContext(
                self.profiler.corpus, policy=policy, metrics=self.metrics
            )
        self._register_gauges()
        if autostart:
            self.start()

    def _register_gauges(self) -> None:
        """Bind the live gauges; counters appear as events bump them."""
        stats = self.service.stats
        for name in (
            "executed",
            "cache_hits",
            "deduplicated",
            "shared_inflight",
            "evictions",
        ):
            self.metrics.gauge(
                f"profiling_{name}", lambda n=name: getattr(stats, n)
            )
        self.metrics.gauge(
            "store_entries", lambda: 0 if self.store is None else len(self.store)
        )
        self.metrics.gauge(
            "store_bytes", lambda: 0 if self.store is None else self.store.nbytes
        )
        self.metrics.gauge(
            "store_pinned",
            lambda: 0 if self.store is None else len(self.store.pinned),
        )
        self.metrics.gauge(
            "jobs_pending", lambda: self._census(JobStatus.PENDING)
        )
        self.metrics.gauge(
            "jobs_running", lambda: self._census(JobStatus.RUNNING)
        )
        self.metrics.gauge("fleet_executors", lambda: len(self.fleet.registry))
        self.metrics.gauge("fleet_pending", lambda: self.fleet.pending_count)
        self.metrics.gauge("fleet_leased", lambda: self.fleet.leased_count)
        corpus = self.profiler.corpus
        if corpus is not None:
            self.metrics.gauge("transfer_corpus_tasks", lambda: corpus.num_tasks)
            self.metrics.gauge(
                "transfer_corpus_records", lambda: corpus.num_records
            )
        self._register_kernel_gauges()

    def _register_kernel_gauges(self) -> None:
        """Per-kernel SpMM timing gauges (``{kernel="..."}`` series).

        The counters are process-wide (``repro.runtime.kernels``), so these
        read whatever every job's training runs accumulated.  Registered
        here and re-registered by :meth:`start` because :meth:`stop` sweeps
        the labeled series out of the registry.
        """
        for family in _KERNEL_METRICS:
            slot = family.rsplit("_", maxsplit=1)[-1]  # "calls" / "seconds"
            for kernel in KERNEL_NAMES:
                self.metrics.gauge(
                    labeled(family, kernel=kernel),
                    lambda k=kernel, s=slot: kernel_counters().get(k, {}).get(s, 0.0),
                )

    def _census(self, status: JobStatus) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if j.status is status)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spin up the worker threads (idempotent; restarts after stop)."""
        self._register_kernel_gauges()  # stop() removed the labeled series
        with self._lock:
            if self._threads:
                return
            self._stopping = False
            if self.queue.closed:
                # stop() closed the previous queue to wake its workers; a
                # restarted server needs a live one or submits would orphan
                # PENDING jobs.
                self.queue = PriorityJobQueue(**self._queue_config)
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"nav-serve-{i}",
                    daemon=True,
                )
                for i in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        """Drain nothing further: close the queue and join the workers.

        PENDING jobs still queued are cancelled; the running ones finish.
        The ordering is what makes the drain deterministic: the queue is
        closed *before* the workers are joined and the survivors flipped,
        so no worker can still be mid-``pop`` (racing ``_stopping``) and no
        late :meth:`submit` can slip a job past the flip — a closed queue
        rejects the push and the submit path cancels the job itself.  After
        ``stop()`` returns, no job is ever left PENDING.
        """
        with self._lock:
            self._stopping = True
        self.queue.close()
        self.fleet.close()  # stop the lease sweeper before joining workers
        for thread in self._threads:
            thread.join()
        self._threads = []
        with self._terminal:
            for job in self._jobs.values():
                if job.status is JobStatus.PENDING:
                    self._finish(job, JobStatus.CANCELLED)
            self._terminal.notify_all()
        for family in _KERNEL_METRICS:
            for kernel in KERNEL_NAMES:
                self.metrics.remove(labeled(family, kernel=kernel))

    def __enter__(self) -> "NavigationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- submission
    def submit(self, request: NavigationRequest) -> str:
        """Queue one request; returns the job id to poll."""
        with self._lock:
            if self._stopping:
                raise ServerStoppingError(
                    "server is stopping; submission rejected"
                )
            job_id = f"job-{self._next_id:04d}"
            self._next_id += 1
            job = Job(
                job_id=job_id,
                request=request,
                submitted_seq=self._next_id,
                submitted_at=time.monotonic(),
                events=EventBuffer(
                    self.event_buffer,
                    on_drop=lambda n: self.metrics.inc("events_dropped", n),
                ),
            )
            self._jobs[job_id] = job
            # Emitted under the lock: a concurrent stop()/cancel() takes
            # the same lock to _finish() this PENDING job, so the terminal
            # event can never be appended before (or instead of) 'queued'
            # — the stream always starts 'queued' and ends terminal.
            self.metrics.inc("jobs_submitted")
            self._emit(job, "queued")
        try:
            self.queue.push(job_id, request.priority, request.tenant)
        except ServingError:
            # stop() closed the queue between our admission check and the
            # push: cancel the accepted job so it can never sit PENDING
            # with no worker left to drain it.
            with self._terminal:
                if job.status is JobStatus.PENDING:
                    self._finish(job, JobStatus.CANCELLED)
            raise ServerStoppingError(
                "server is stopping; submission rejected"
            ) from None
        return job_id

    def submit_many(self, requests: list[NavigationRequest]) -> list[str]:
        """Queue a batch; returns job ids in request order."""
        return [self.submit(request) for request in requests]

    # ---------------------------------------------------------------- polling
    def _get(self, job_id: str) -> Job:
        # Jobs are never removed from the table, but the dict itself may be
        # rehashing under a concurrent submit — take the lock for the lookup.
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def status(self, job_id: str) -> JobStatus:
        """Current lifecycle state of a job."""
        return self._get(job_id).status

    def snapshot(self, job_id: str) -> JobSnapshot:
        """One consistent view of a job's observable state.

        Taken under the server lock, so status, error and timestamps all
        belong to the same moment — the call handles (local and remote) use
        this instead of separate ``status()``/``job()`` lookups that could
        interleave with a worker's terminal transition.
        """
        job = self._get(job_id)
        with self._lock:
            return job.snapshot()

    def wait(self, job_id: str, timeout: float | None = None) -> JobSnapshot:
        """Block until the job is terminal (or ``timeout``); never raises on
        the job's outcome — returns whatever state the wait ended in.  The
        transport's long-poll primitive."""
        job = self._get(job_id)
        with self._terminal:
            self._terminal.wait_for(lambda: job.done, timeout)
            return job.snapshot()

    def events(
        self, job_id: str, since: int = 0, timeout: float | None = None
    ) -> EventBatch:
        """One bounded read of a job's progress-event stream.

        Returns every retained event with ``seq >= since`` (blocking up to
        ``timeout`` for the first new one), the ``next_seq`` to resume
        from, the ``gap`` of ring-dropped events (0 = lossless), and
        ``done`` once the job is terminal with everything delivered — the
        long-poll primitive behind ``JobHandle.events`` and the
        transport's ``/v1/jobs/<id>/events``.

        ``timeout=None`` waits one default long-poll round
        (:data:`~repro.serving.events.DEFAULT_POLL_SECONDS`), exactly like
        the remote handle; pass ``timeout=0`` for a non-blocking probe.
        """
        if timeout is None:
            timeout = DEFAULT_POLL_SECONDS
        job = self._get(job_id)
        # Sample terminality *before* reading: the terminal event is
        # appended before the status flip, so ``done`` sampled True here
        # guarantees the batch below contains (or already delivered) it.
        job_done = job.done
        try:
            events, next_seq, gap = job.events.read(
                since, timeout, done=lambda: job.done
            )
        except ValueError as exc:
            raise ServingError(str(exc)) from None
        return EventBatch(
            events=events, next_seq=next_seq, gap=gap, done=job_done
        )

    def job(self, job_id: str) -> Job:
        """Full bookkeeping record of a job (live object, read-only use)."""
        return self._get(job_id)

    def jobs(self) -> list[Job]:
        """Every accepted job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_seq)

    def snapshots(self) -> list[JobSnapshot]:
        """Every accepted job's snapshot, in submission order.

        One lock hold for the whole listing — the transport's job-list and
        drain responses use this instead of per-job :meth:`snapshot` calls.
        """
        with self._lock:
            return [
                job.snapshot()
                for job in sorted(
                    self._jobs.values(), key=lambda j: j.submitted_seq
                )
            ]

    def result(self, job_id: str, timeout: float | None = None) -> JobResult:
        """Block until the job finishes and return its result.

        Raises :class:`JobFailedError` (with the server-side traceback) on
        FAILED jobs and :class:`ServingError` on cancellation or timeout.
        """
        job = self._get(job_id)
        with self._terminal:
            if not self._terminal.wait_for(lambda: job.done, timeout):
                raise ServingError(f"timed out waiting for {job_id}")
        if job.status is JobStatus.DONE:
            assert job.result is not None
            return job.result
        if job.status is JobStatus.CANCELLED:
            raise ServingError(f"{job_id} was cancelled")
        raise JobFailedError(job_id, job.error or "", job.traceback)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns whether cancellation took (or was started).

        PENDING jobs drop out of the queue immediately.  RUNNING jobs are
        cancelled *cooperatively*: their token is flipped and the job
        observes it at the next profiling-batch boundary, releasing any
        in-flight profiling claims so concurrent waiters re-claim the keys.
        Best-effort by design — a RUNNING job past its last checkpoint
        still finishes DONE.  Terminal jobs return ``False``.
        """
        job = self._get(job_id)
        with self._terminal:
            if job.status is JobStatus.PENDING:
                self._finish(job, JobStatus.CANCELLED)
                self.queue.discard(job_id)
                return True
            if job.status is JobStatus.RUNNING:
                job.cancel_token.cancel()
                return True
            return False

    def drain(self, timeout: float | None = None) -> list[Job]:
        """Block until every accepted job reaches a terminal state."""
        with self._terminal:
            done = lambda: all(j.done for j in self._jobs.values())  # noqa: E731
            if not self._terminal.wait_for(done, timeout):
                raise ServingError("timed out draining the server")
        return self.jobs()

    @property
    def stats(self) -> ProfilingStats:
        """Shared profiling counters across every job served so far."""
        return self.service.stats

    @property
    def store(self) -> ResultStore | None:
        """The shared persistent store (``None`` when memory-only)."""
        return self.service.store

    # ---------------------------------------------------------------- workers
    def _resolve_graph(self, dataset: str) -> CSRGraph:
        """Registered graph for ``dataset``, loading and memoizing on miss.

        The synthetic zoo's :func:`load_dataset` happens to memoize named
        datasets process-wide, but that is its implementation detail, not a
        contract — caching the loaded graph back into ``self._graphs``
        makes the one-object-per-dataset invariant the *server's* own
        (request aliases included), which the profiling service's
        identity-memoized fingerprints rely on.  ``setdefault`` under the
        lock makes the first loader win a load race; the loser's copy is
        dropped.
        """
        with self._graph_lock:
            graph = self._graphs.get(dataset)
        if graph is not None:
            return graph
        graph = load_dataset(dataset)
        with self._graph_lock:
            return self._graphs.setdefault(dataset, graph)

    def _emit(self, job: Job, phase: str, *, status: JobStatus | None = None, **fields) -> None:
        """Append one progress event to the job's ring (never blocks)."""
        state = status if status is not None else job.status
        job.events.append(
            JobProgressEvent(
                job_id=job.job_id,
                phase=phase,
                status=state.value,
                elapsed_s=time.monotonic() - (job.submitted_at or time.monotonic()),
                **fields,
            )
        )
        self.metrics.inc("events_emitted")

    def _finish(self, job: Job, status: JobStatus) -> None:
        """Move a job to a terminal state and wake the waiters (lock held).

        The terminal event is appended *before* the status flip: any reader
        that observes ``job.done`` is thereby guaranteed the terminal event
        is already in the buffer, so an event batch can never report
        ``done`` without having delivered the ending.
        """
        self._emit(job, status.value, status=status)
        job.status = status
        job.finished_at = time.monotonic()
        self.metrics.inc(f"jobs_{status.value}")
        self._terminal.notify_all()

    def _worker_loop(self) -> None:
        while True:
            job_id = self.queue.pop()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
            try:
                with self._terminal:
                    if job.status is not JobStatus.PENDING:
                        continue  # cancelled while queued
                    if self._stopping:
                        self._finish(job, JobStatus.CANCELLED)
                        continue
                    job.status = JobStatus.RUNNING
                    job.started_seq = self._started_seq
                    job.started_at = time.monotonic()
                    self._started_seq += 1
                    self._emit(job, "started")
                try:
                    result = self._run(job)
                except JobCancelled:
                    with self._terminal:
                        self._finish(job, JobStatus.CANCELLED)
                except Exception as exc:  # noqa: BLE001 — jobs fail, servers don't
                    trace = traceback_mod.format_exc()
                    with self._terminal:
                        job.error = f"{type(exc).__name__}: {exc}"
                        job.traceback = trace
                        self._finish(job, JobStatus.FAILED)
                else:
                    with self._terminal:
                        job.result = result
                        self._finish(job, JobStatus.DONE)
            finally:
                # Every pop owes the queue exactly one release — including
                # the cancelled-while-queued and stop paths above — or the
                # tenant's in-flight quota slot leaks.
                self.queue.task_done(job.request.tenant)

    def _resolve_transfer(self, request: NavigationRequest):
        """Transfer context for one request: server default + job override.

        A request's ``transfer_policy`` can disable transfer outright
        (``enabled=False``), retune the server context, or opt a job in on
        a server whose default is off — but never conjure a corpus a
        memory-only server doesn't have.
        """
        policy = request.transfer_policy
        if policy is None:
            return self.transfer
        if not policy.enabled:
            return None
        if self.transfer is not None:
            return self.transfer.with_policy(policy)
        if self.profiler.corpus is not None:
            return TransferContext(
                self.profiler.corpus, policy=policy, metrics=self.metrics
            )
        return None

    def _run(self, job: Job) -> JobResult:
        """Execute one navigation with profiling delegated to the scheduler."""
        request = job.request
        navigator = GNNavigator(
            request.task,
            space=self.space,
            graph=self._resolve_graph(request.task.dataset),
            profile_budget=request.budget,
            profile_epochs=request.profile_epochs,
            seed=request.seed,
            profiler=self.profiler,
            cancel=job.cancel_token,
            progress=lambda phase, **fields: self._emit(job, phase, **fields),
            transfer=self._resolve_transfer(request),
        )
        report = navigator.explore(
            constraint=request.constraint,
            priorities=list(request.priorities),
        )
        guidelines = {
            name: report.guidelines[name] for name in request.priorities
        }
        perf = None
        if request.train:
            perf = navigator.apply(guidelines[request.priorities[0]])
        return JobResult(guidelines=guidelines, report=report, perf=perf)
