"""Cross-task profiling scheduler: one measurement per candidate, ever.

Many concurrently-running jobs delegate Step-2 profiling to one shared
:class:`~repro.runtime.parallel.ProfilingService`.  The service alone
already dedups within a call and caches across calls, but two jobs racing
on overlapping design-space samples would still measure the overlap twice —
each sees the other's candidates as misses until they land in the store.

:class:`SharedProfilingService` closes that hole with an *in-flight table*:
before dispatching, each job claims the keys nobody else is measuring and
registers an event for them; keys already claimed by another job are waited
on instead of re-executed, and the finished records fan back out to every
waiter through the service's shared memory/store.  The wrapper keeps the
service's ``profile()`` contract (input order in, one record per config
out), so it drops into :class:`~repro.explorer.navigator.GNNavigator`'s
``profiler`` seat unchanged.
"""

from __future__ import annotations

import threading

from repro.config.settings import TaskSpec, TrainingConfig
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset
from repro.runtime.parallel import CancellationToken, ProfilingService
from repro.runtime.profiler import GroundTruthRecord
from repro.transfer.corpus import TransferCorpus

__all__ = ["SharedProfilingService"]


class SharedProfilingService:
    """Thread-safe, in-flight-deduplicating front of one profiling service.

    All state transitions happen under one lock; the actual training runs
    (``service._execute``) happen outside it, so claimed batches from
    different jobs execute concurrently when the service has pool workers.

    When the underlying service persists to a :class:`ResultStore`, the
    wrapper also exposes a :class:`~repro.transfer.corpus.TransferCorpus`
    over it (``corpus``), so every record any tenant commits becomes a
    warm-start donor candidate for later tasks; a memory-only service has
    no corpus (``None``).
    """

    def __init__(
        self, service: ProfilingService, *, corpus: TransferCorpus | None = None
    ) -> None:
        self.service = service
        if corpus is None and service.store is not None:
            corpus = TransferCorpus(service.store)
        self.corpus = corpus
        self._lock = threading.Lock()
        self._inflight: dict[object, threading.Event] = {}  # guarded-by: _lock

    @property
    def stats(self):
        return self.service.stats

    @property
    def store(self):
        return self.service.store

    def profile(
        self,
        task: TaskSpec,
        configs: list[TrainingConfig],
        *,
        graph: CSRGraph | None = None,
        progress: bool = False,
        cancel: CancellationToken | None = None,
        on_progress=None,
    ) -> list[GroundTruthRecord]:
        """Measure every candidate, sharing work with concurrent callers.

        Same contract as :meth:`ProfilingService.profile`: one record per
        input config, in input order, identical to the serial path.

        ``cancel`` makes the call cooperatively cancellable: the token is
        polled at every claim-round boundary, between candidate runs inside
        the service, and while waiting on another job's in-flight keys.  A
        cancelled caller always releases its claims (the ``_execute`` escape
        hatch below fires on *any* exception), so waiters re-claim and
        measure the abandoned keys themselves instead of hanging.

        ``on_progress(runs_done, runs_total, cache_hits)`` streams this
        call's cumulative resolution: candidates land from the memory/store
        cache, from this job's own training runs, *and* from other jobs'
        in-flight runs (those count as cache hits — the subscriber sees
        work it did not pay for as cached).
        """
        svc = self.service
        graph = graph if graph is not None else load_dataset(task.dataset)
        keys = svc._keys(task, configs, graph)

        results: dict = {}
        remaining: dict = {}  # key -> canonical config, insertion-ordered
        for key, config in zip(keys, configs, strict=True):
            if key in results or key in remaining:
                svc.stats.bump("deduplicated")
                continue
            remaining[key] = config.canonical()

        total = len(remaining)
        hits = 0
        last_report: list = [None]

        def report(extra_runs: int = 0) -> None:
            if on_progress is None:
                return
            state = (len(results) + extra_runs, total, hits)
            if state != last_report[0]:  # claim rounds that landed nothing
                last_report[0] = state
                on_progress(*state)

        report()
        while remaining:
            if cancel is not None:
                # Claim-round boundary: nothing is claimed right here, so
                # aborting cannot strand a key other jobs are waiting on.
                cancel.raise_if_cancelled()
            mine: dict = {}
            waits: dict[object, threading.Event] = {}
            # Claim phase touches only in-process state — the lock is never
            # held across disk I/O, so tenants don't serialize behind each
            # other's store reads on a warm cache.
            with self._lock:
                for key in list(remaining):
                    record = svc._memory.get(key)
                    if record is not None:
                        svc.stats.bump("cache_hits")
                        results[key] = record
                        del remaining[key]
                        hits += 1
                        continue
                    other = self._inflight.get(key)
                    if other is not None:
                        waits[key] = other
                    else:
                        event = threading.Event()
                        self._inflight[key] = event
                        mine[key] = remaining.pop(key)
            report()

            # Store probe outside the lock: these keys are claimed, so no
            # concurrent job can be measuring or probing them.
            if mine and svc.store is not None:
                for key in list(mine):
                    record = svc.store.load(key)
                    if record is None:
                        continue
                    del mine[key]
                    with self._lock:
                        svc._memory[key] = record
                        svc.stats.bump("cache_hits")
                        results[key] = record
                        self._inflight.pop(key).set()
                    hits += 1
                report()

            if mine:
                try:
                    # _execute commits each record the moment it lands
                    # (memory + store; store writes lock internally), so
                    # events only ever flip on published records — and an
                    # aborted batch keeps every run it finished.
                    fresh = svc._execute(
                        task,
                        list(mine.values()),
                        graph,
                        progress=progress,
                        cancel=cancel,
                        keys=list(mine),
                        on_run=report if on_progress is not None else None,
                    )
                except BaseException:
                    # Release the claims so waiters re-claim instead of
                    # hanging — on a cancel, a worker crash, or a commit
                    # that died mid-publish (store I/O).  Keys committed
                    # before the abort are already in memory, so released
                    # waiters pick them up; the rest re-measure.
                    with self._lock:
                        for key in mine:
                            event = self._inflight.pop(key, None)
                            if event is not None:
                                event.set()
                    raise
                with self._lock:
                    for key, record in zip(mine, fresh, strict=True):
                        results[key] = record
                        self._inflight.pop(key).set()

            for key, event in waits.items():
                # Block outside the lock until the owning job lands (or
                # abandons) this key; a cancelled waiter holds no claims, so
                # bailing out here strands nobody.
                if cancel is None:
                    # Unbounded by design (and lock-free — see above): the
                    # owning job always sets the event, even when it dies,
                    # via the BaseException release path, so this wait
                    # cannot outlive the claim it watches.
                    event.wait()
                else:
                    while not event.wait(0.05):
                        cancel.raise_if_cancelled()
                landed = False
                with self._lock:
                    record = svc._memory.get(key)
                    if record is not None:
                        svc.stats.bump("shared_inflight")
                        results[key] = record
                        del remaining[key]
                        hits += 1
                        landed = True
                    # miss: the owner died before landing it — the key stays
                    # in ``remaining`` and the next round re-claims it.
                if landed:
                    report()

        return [results[key] for key in keys]
