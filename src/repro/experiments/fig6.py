"""Figure 6 — adaptability validation on Reddit2+SAGE.

The paper exhausts the design space by actually executing every candidate,
scatters the measured performance in the (time, memory) and (memory,
accuracy) planes, draws the Pareto front, and shows that the guidelines
GNNavigator returns (Bal in blue, Ex in red) sit on the measured front.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import reduced_space
from repro.experiments.cache import exhaustive_records
from repro.experiments.tasks import NAVIGATOR_MODES
from repro.explorer.navigator import GNNavigator
from repro.explorer.pareto import pareto_front_indices
from repro.runtime.profiler import GroundTruthRecord, profile_configs

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Measured design-space exhaustion plus guideline positions."""

    records: list[GroundTruthRecord]
    guideline_configs: dict[str, TrainingConfig]
    guideline_indices: dict[str, int] = field(default_factory=dict)

    def objectives(self) -> np.ndarray:
        """(T, Γ, 1-Acc) rows of every executed candidate.

        Error rate instead of ``-Acc`` keeps every objective positive so the
        multiplicative dominance slack in :meth:`guideline_on_front` behaves
        uniformly; dominance ordering is identical.
        """
        return np.stack(
            [
                np.array([r.time_s, r.memory_bytes, 1.0 - r.accuracy])
                for r in self.records
            ]
        )

    def plane(self, axes: tuple[int, int]) -> np.ndarray:
        """Project onto a 2-D plane, e.g. (0, 1) = time vs memory."""
        return self.objectives()[:, list(axes)]

    def front_indices(self, axes: tuple[int, int]) -> np.ndarray:
        """Pareto front of the projected plane (both minimised)."""
        return pareto_front_indices(self.plane(axes))

    def guideline_on_front(self, mode: str, axes: tuple[int, int]) -> bool:
        """Whether a guideline's measured point is within the front region.

        A point counts as on-front when no executed candidate dominates it by
        more than 5% in both plane objectives (measurement noise tolerance).
        Note a 3-D Pareto point may legitimately fail this in one 2-D
        projection — use :meth:`guideline_nondominated` for the full check.
        """
        idx = self.guideline_indices[mode]
        plane = self.plane(axes)
        mine = plane[idx]
        slack = 1.0 + 0.05
        dominated = np.all(plane * slack < mine, axis=1)
        return not bool(np.any(dominated))

    def guideline_nondominated(self, mode: str) -> bool:
        """Full 3-D Pareto check: nothing beats the guideline by >5% on
        time, memory and error rate simultaneously."""
        idx = self.guideline_indices[mode]
        objs = self.objectives()
        mine = objs[idx]
        slack = 1.0 + 0.05
        dominated = np.all(objs * slack < mine, axis=1)
        return not bool(np.any(dominated))


def run_fig6(
    *,
    dataset: str = "reddit2",
    arch: str = "sage",
    epochs: int = 4,
    workers: int | None = None,
) -> Fig6Result:
    """Exhaust the reduced space by execution; locate navigator guidelines.

    Following the paper's Sec. 4.1 protocol, the estimator is fitted on "the
    ground-truth performance covering the whole design space" — i.e. the
    same exhaustive records the figure scatters — and the explorer then
    selects guidelines from its *predictions*.  The figure validates that
    those predicted-optimal picks land on the *measured* Pareto front.
    """
    space = reduced_space()
    task = TaskSpec(dataset=dataset, arch=arch, epochs=epochs)
    records = list(exhaustive_records(task, space, workers=workers))
    by_config = {r.config: i for i, r in enumerate(records)}

    nav = GNNavigator(task, space=space)
    nav.fit_estimator(records)
    report = nav.explore(priorities=list(NAVIGATOR_MODES))

    result = Fig6Result(records=records, guideline_configs={})
    for mode, guideline in report.guidelines.items():
        config = guideline.config.canonical()
        result.guideline_configs[mode] = config
        if config in by_config:
            result.guideline_indices[mode] = by_config[config]
        else:
            # Guideline came from the initial template set outside the
            # reduced space: execute it and append.
            extra = profile_configs(task, [config], workers=workers)
            records.append(extra[0])
            result.guideline_indices[mode] = len(records) - 1
    return result
