"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

__all__ = ["render_table", "format_ratio", "format_delta_pct"]


def render_table(
    headers: list[str], rows: list[list[str]], *, title: str = ""
) -> str:
    """Fixed-width text table (the benches print these, mirroring the paper)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def format_ratio(value: float, baseline: float) -> str:
    """Speedup annotation like the paper's ``5.44(1.7x↑)``."""
    if value <= 0 or baseline <= 0:
        return "n/a"
    return f"{baseline / value:.1f}x"


def format_delta_pct(value: float, baseline: float) -> str:
    """Relative change annotation like ``(69.1%↑)`` / ``(29.7%↓)``."""
    if baseline == 0:
        return "n/a"
    delta = (value - baseline) / baseline * 100.0
    arrow = "+" if delta >= 0 else "-"
    return f"{arrow}{abs(delta):.1f}%"
