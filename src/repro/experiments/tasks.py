"""Standard experiment tasks and method lists (paper Sec. 4.1)."""

from __future__ import annotations

from repro.config.settings import TaskSpec

__all__ = [
    "TABLE1_TASKS",
    "TABLE2_DATASETS",
    "BASELINE_METHODS",
    "NAVIGATOR_MODES",
    "table1_task",
    "estimator_task",
]

#: Table 1 rows: (label, dataset, architecture) exactly as the paper groups them.
TABLE1_TASKS: list[tuple[str, str, str]] = [
    ("PR + SAGE", "ogbn-products", "sage"),
    ("RD2 + SAGE", "reddit2", "sage"),
    ("AR + GAT", "ogbn-arxiv", "gat"),
]

#: Table 2 / Fig. 5 datasets (estimator validation).
TABLE2_DATASETS: tuple[str, ...] = ("reddit", "reddit2", "ogbn-products")

#: baseline template names in paper order.
BASELINE_METHODS: tuple[str, ...] = ("pyg", "pagraph_full", "pagraph_low", "2pgraph")

#: GNNavigator priority modes in paper order.
NAVIGATOR_MODES: tuple[str, ...] = ("balance", "ex_tm", "ex_ma", "ex_ta")

#: display names matching the paper's Table 1 row labels.
METHOD_LABELS: dict[str, str] = {
    "pyg": "PyG",
    "pagraph_full": "Pa-Full",
    "pagraph_low": "Pa-Low",
    "2pgraph": "2P",
    "balance": "Bal",
    "ex_tm": "Ex-TM",
    "ex_ma": "Ex-MA",
    "ex_ta": "Ex-TA",
}


def table1_task(dataset: str, arch: str, *, epochs: int = 8) -> TaskSpec:
    """Final-measurement task: enough epochs to approach convergence."""
    return TaskSpec(dataset=dataset, arch=arch, epochs=epochs)


def estimator_task(dataset: str, arch: str = "sage", *, epochs: int = 4) -> TaskSpec:
    """Ground-truth profiling task used to fit/validate estimators."""
    return TaskSpec(dataset=dataset, arch=arch, epochs=epochs)
