"""Disk + memory cache for ground-truth profiling records.

Every experiment consumes ground truth produced by executing configurations
on the runtime backend.  Profiling is the expensive step (minutes per
dataset), and several experiments share the same records (Table 2 and Fig. 5
use identical folds; Table 1 reuses each task's estimator records), so
records are cached in-process and pickled under ``.cache/`` keyed by the
profiling recipe.  Delete the directory to force re-profiling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from pathlib import Path

import numpy as np

from repro.config.settings import TaskSpec
from repro.config.space import DesignSpace, default_space
from repro.config.templates import TEMPLATES
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset
from repro.graphs.profiling import profile_graph
from repro.runtime.profiler import GroundTruthRecord, profile_configs

__all__ = ["profiling_records", "exhaustive_records", "cache_dir", "clear_cache"]

_MEMORY: dict[str, list[GroundTruthRecord]] = {}


def cache_dir() -> Path:
    """Cache directory (repo-local, created on demand)."""
    path = Path(__file__).resolve().parents[3] / ".cache"
    path.mkdir(exist_ok=True)
    return path


def clear_cache() -> None:
    """Drop every cached record set (memory and disk)."""
    _MEMORY.clear()
    for f in cache_dir().glob("records_*.pkl"):
        f.unlink()


def _graph_for(dataset: str) -> CSRGraph | None:
    """Rebuild the graph a record set was profiled on, when derivable."""
    if dataset.startswith("aug"):
        from repro.experiments.fig5 import augmentation_graph

        try:
            return augmentation_graph(int(dataset[3:]))
        except (ValueError, IndexError):
            return None
    try:
        return load_dataset(dataset)
    except GraphError:
        return None


def _refresh_profiles(records: list[GroundTruthRecord]) -> list[GroundTruthRecord]:
    """Upgrade profiles pickled before new GraphProfile fields existed.

    Measured quantities stay untouched; only the graph summary is recomputed
    (it is a pure function of the deterministic dataset).
    """
    # Old pickles fall back to the dataclass *default* (0.0) for the new
    # fields, so hasattr() is always true — inspect the instance dict.
    if not records or "separability" in vars(records[0].graph_profile):
        return records
    graph = _graph_for(records[0].task.dataset)
    if graph is None:
        return records
    fresh = profile_graph(graph)
    return [dataclasses.replace(r, graph_profile=fresh) for r in records]


def _recipe_key(
    task: TaskSpec, budget: int, seed: int, space: DesignSpace
) -> str:
    """Stable hash of everything that determines the record set."""
    text = "|".join(
        [
            task.dataset,
            task.arch,
            task.platform,
            str(task.epochs),
            str(task.lr),
            str(task.seed),
            str(budget),
            str(seed),
            str(sorted(space.domains.items())),
        ]
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def profiling_records(
    task: TaskSpec,
    *,
    budget: int = 40,
    seed: int = 0,
    space: DesignSpace | None = None,
    graph: CSRGraph | None = None,
    include_templates: bool = True,
    use_disk: bool = True,
    workers: int | None = None,
) -> list[GroundTruthRecord]:
    """Ground-truth records for ``budget`` sampled configs (+ templates).

    Cached in memory and on disk; the same recipe always returns the same
    records, so experiments sharing a fold pay for profiling once.  On a
    cache miss the measurements route through the profiling service:
    ``workers`` fans them out across processes (results are identical to
    the serial path).
    """
    space = space or default_space()
    key = _recipe_key(task, budget, seed, space)
    if key in _MEMORY:
        return _MEMORY[key]
    disk_path = cache_dir() / f"records_{task.dataset}_{task.arch}_{key}.pkl"
    if use_disk and disk_path.exists():
        with open(disk_path, "rb") as f:
            records = pickle.load(f)
        records = _refresh_profiles(records)
        _MEMORY[key] = records
        return records

    rng = np.random.default_rng(seed)
    configs = space.sample(budget, rng=rng)
    if include_templates:
        configs.extend(TEMPLATES.values())
    configs = list(dict.fromkeys(c.canonical() for c in configs))
    records = profile_configs(task, configs, graph=graph, workers=workers)
    _MEMORY[key] = records
    if use_disk:
        with open(disk_path, "wb") as f:
            pickle.dump(records, f)
    return records


def exhaustive_records(
    task: TaskSpec,
    space: DesignSpace,
    *,
    graph: CSRGraph | None = None,
    use_disk: bool = True,
    workers: int | None = None,
) -> list[GroundTruthRecord]:
    """Execute *every* candidate of a space (the Fig. 6 protocol), cached."""
    key = "exh_" + _recipe_key(task, 0, 0, space)
    if key in _MEMORY:
        return _MEMORY[key]
    disk_path = cache_dir() / f"records_{task.dataset}_{task.arch}_{key}.pkl"
    if use_disk and disk_path.exists():
        with open(disk_path, "rb") as f:
            records = pickle.load(f)
        records = _refresh_profiles(records)
        _MEMORY[key] = records
        return records
    records = profile_configs(task, space.enumerate(), graph=graph, workers=workers)
    _MEMORY[key] = records
    if use_disk:
        with open(disk_path, "wb") as f:
            pickle.dump(records, f)
    return records
