"""Experiment-level front of the shared ground-truth result store.

Every experiment consumes ground truth produced by executing configurations
on the runtime backend.  Profiling is the expensive step (minutes per
dataset), and several experiments share the same records (Table 2 and Fig. 5
use identical folds; Table 1 reuses each task's estimator records).

Since PR 2 the persistence layer is the *same* per-candidate
:class:`~repro.runtime.parallel.ResultStore` the profiling service and the
serving layer use (one JSON file per ``(task, config, graph)`` under
``.cache/store/``, ``REPRO_STORE_DIR`` overrides): an experiment warms the
store for ``repro serve`` and vice versa, and partial overlaps between
recipes hit instead of re-measuring.  This module only adds the in-process
memoization of whole record *sets* keyed by the profiling recipe.  Delete
the store directory (or call :func:`clear_cache`) to force re-profiling.
"""

from __future__ import annotations

import hashlib

from pathlib import Path

import numpy as np

from repro.config.settings import TaskSpec
from repro.config.space import DesignSpace, default_space
from repro.config.templates import TEMPLATES
from repro.graphs.csr import CSRGraph
from repro.runtime.parallel import default_store_dir
from repro.runtime.profiler import GroundTruthRecord, profile_configs

__all__ = ["profiling_records", "exhaustive_records", "cache_dir", "clear_cache"]

_MEMORY: dict[str, list[GroundTruthRecord]] = {}


def cache_dir() -> Path:
    """The shared result-store directory (created on demand)."""
    path = default_store_dir()
    path.mkdir(parents=True, exist_ok=True)
    return path


def clear_cache() -> None:
    """Drop every cached record (memory and the shared store)."""
    _MEMORY.clear()
    for f in cache_dir().glob("gt_*.json"):
        f.unlink()
    # Pre-PR-2 layout: whole record sets pickled under the repo-root
    # ``.cache/`` — swept from that fixed location only, never from a
    # ``REPRO_STORE_DIR`` override's parent (which this package doesn't own).
    legacy = Path(__file__).resolve().parents[3] / ".cache"
    for f in legacy.glob("records_*.pkl"):
        f.unlink()


def _recipe_key(
    task: TaskSpec, budget: int, seed: int, space: DesignSpace
) -> str:
    """Stable hash of everything that determines the record set."""
    text = "|".join(
        [
            task.dataset,
            task.arch,
            task.platform,
            str(task.epochs),
            str(task.lr),
            str(task.seed),
            str(budget),
            str(seed),
            str(sorted(space.domains.items())),
        ]
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def profiling_records(
    task: TaskSpec,
    *,
    budget: int = 40,
    seed: int = 0,
    space: DesignSpace | None = None,
    graph: CSRGraph | None = None,
    include_templates: bool = True,
    use_disk: bool = True,
    workers: int | None = None,
) -> list[GroundTruthRecord]:
    """Ground-truth records for ``budget`` sampled configs (+ templates).

    Memoized in-process by recipe and persisted per candidate in the shared
    result store, so experiments sharing a fold — and serving jobs sharing a
    candidate — pay for profiling once.  Misses route through the profiling
    service: ``workers`` fans them out across processes (results are
    identical to the serial path); ``use_disk=False`` skips the store.
    """
    space = space or default_space()
    key = _recipe_key(task, budget, seed, space)
    if key in _MEMORY:
        return _MEMORY[key]
    rng = np.random.default_rng(seed)
    configs = space.sample(budget, rng=rng)
    if include_templates:
        configs.extend(TEMPLATES.values())
    configs = list(dict.fromkeys(c.canonical() for c in configs))
    records = profile_configs(
        task,
        configs,
        graph=graph,
        workers=workers,
        cache_dir=str(cache_dir()) if use_disk else None,
    )
    _MEMORY[key] = records
    return records


def exhaustive_records(
    task: TaskSpec,
    space: DesignSpace,
    *,
    graph: CSRGraph | None = None,
    use_disk: bool = True,
    workers: int | None = None,
) -> list[GroundTruthRecord]:
    """Execute *every* candidate of a space (the Fig. 6 protocol), cached."""
    key = "exh_" + _recipe_key(task, 0, 0, space)
    if key in _MEMORY:
        return _MEMORY[key]
    records = profile_configs(
        task,
        space.enumerate(),
        graph=graph,
        workers=workers,
        cache_dir=str(cache_dir()) if use_disk else None,
    )
    _MEMORY[key] = records
    return records
