"""Figure 5 — gray-box vs black-box mini-batch size prediction.

The paper scatters predicted vs measured |V_i|: the gray-box model (Eq. 12
with learned overlap penalty) hugs the y=x line while the pure decision-tree
baseline scatters.  We reproduce the protocol out-of-distribution: models are
trained on every dataset except the target (plus the paper's power-law
augmentation) and predict the target's measured batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.estimator.batchsize import BlackBoxBatchSizeModel, GrayBoxBatchSizeModel
from repro.estimator.validation import r2_score
from repro.experiments.cache import profiling_records
from repro.experiments.tasks import TABLE2_DATASETS, estimator_task
from repro.graphs.generators import powerlaw_community_graph

__all__ = ["Fig5Result", "run_fig5", "augmentation_records"]


@dataclass(frozen=True)
class Fig5Result:
    """Scatter series for one target dataset."""

    dataset: str
    measured: np.ndarray
    predicted_gray: np.ndarray
    predicted_black: np.ndarray

    @property
    def r2_gray(self) -> float:
        return r2_score(self.measured, self.predicted_gray)

    @property
    def r2_black(self) -> float:
        return r2_score(self.measured, self.predicted_black)

    @property
    def mean_rel_error_gray(self) -> float:
        return float(
            np.mean(np.abs(self.predicted_gray - self.measured) / self.measured)
        )

    @property
    def mean_rel_error_black(self) -> float:
        return float(
            np.mean(np.abs(self.predicted_black - self.measured) / self.measured)
        )


# (nodes, exponent, homophily, feature_noise, min_degree, max_degree):
# easy-dense / mid / hard-sparse graphs so the augmentation brackets the
# difficulty *and density* range of every real dataset — accuracy trees
# interpolate between anchors, they cannot extrapolate.
_AUG_RECIPES = [
    (4000, 1.85, 0.70, 2.0, 7, 350),
    (6000, 2.10, 0.55, 4.0, 4, 160),
    (8000, 2.40, 0.40, 6.5, 3, 120),
]


def augmentation_graph(index: int, *, seed: int = 120):
    """Deterministic random power-law graph #index (data enhancement)."""
    nodes, exponent, homophily, noise, min_deg, max_deg = _AUG_RECIPES[index]
    return powerlaw_community_graph(
        nodes,
        num_classes=16,
        feature_dim=64,
        exponent=exponent,
        min_degree=min_deg,
        max_degree=max_deg,
        homophily=homophily,
        feature_noise=noise,
        seed=seed + index,
        name=f"powerlaw-aug{index}",
    )


def augmentation_records(*, budget: int = 20, epochs: int = 2, seed: int = 120):
    """Random power-law graphs as estimator data enhancement (Sec. 4.1)."""
    records = []
    for i in range(len(_AUG_RECIPES)):
        task = estimator_task(f"aug{i}", epochs=epochs)
        records.append(
            profiling_records(
                task, budget=budget, seed=seed + i, graph=augmentation_graph(i, seed=seed)
            )
        )
    return records


def run_fig5(
    *,
    target: str = "reddit2",
    budget: int = 40,
    epochs: int = 4,
    with_augmentation: bool = True,
) -> Fig5Result:
    """Train batch-size models leave-one-out, scatter-predict the target."""
    train_records = []
    for dataset in TABLE2_DATASETS:
        if dataset == target:
            continue
        train_records.extend(
            profiling_records(estimator_task(dataset, epochs=epochs), budget=budget)
        )
    if with_augmentation:
        for recs in augmentation_records():
            train_records.extend(recs)
    test_records = profiling_records(
        estimator_task(target, epochs=epochs), budget=budget
    )

    configs_tr = [r.config for r in train_records]
    profs_tr = [r.graph_profile for r in train_records]
    y_tr = np.array([r.mean_batch_nodes for r in train_records])
    configs_te = [r.config for r in test_records]
    profs_te = [r.graph_profile for r in test_records]
    measured = np.array([r.mean_batch_nodes for r in test_records])

    gray = GrayBoxBatchSizeModel().fit(configs_tr, profs_tr, y_tr)
    black = BlackBoxBatchSizeModel().fit(configs_tr, profs_tr, y_tr)
    return Fig5Result(
        dataset=target,
        measured=measured,
        predicted_gray=gray.predict(configs_te, profs_te),
        predicted_black=black.predict(configs_te, profs_te),
    )
