"""Table 2 — precision of the gray-box performance estimator.

Leave-one-dataset-out over Reddit / Reddit2 / Ogbn-products with random
power-law graph augmentation (Sec. 4.1): R2 scores for T and Γ, MSE for Acc.
"""

from __future__ import annotations

from repro.estimator.validation import EstimatorValidation, validate_leave_one_out
from repro.experiments.cache import profiling_records
from repro.experiments.fig5 import augmentation_records
from repro.experiments.tables import render_table
from repro.experiments.tasks import TABLE2_DATASETS, estimator_task

__all__ = ["run_table2", "render_table2"]


def run_table2(
    *,
    budget: int = 40,
    epochs: int = 4,
    with_augmentation: bool = True,
) -> list[EstimatorValidation]:
    """Collect records per dataset and run the leave-one-out protocol."""
    by_dataset = {
        dataset: profiling_records(
            estimator_task(dataset, epochs=epochs), budget=budget
        )
        for dataset in TABLE2_DATASETS
    }
    if with_augmentation:
        for i, recs in enumerate(augmentation_records()):
            by_dataset[f"aug{i}"] = recs
    return validate_leave_one_out(by_dataset)


def render_table2(results: list[EstimatorValidation]) -> str:
    """Paper-shaped rendering: metrics as rows, datasets as columns."""
    order = {"reddit": 0, "reddit2": 1, "ogbn-products": 2}
    results = sorted(results, key=lambda r: order.get(r.dataset, 99))
    headers = ["Validation", "Performance Metric"] + [r.dataset for r in results]
    rows = [
        ["R2 Score", "Time Cost (T)"] + [f"{r.r2_time:.4f}" for r in results],
        ["R2 Score", "Memory (Γ)"] + [f"{r.r2_memory:.4f}" for r in results],
        ["MSE", "Accuracy (Acc)"] + [f"{r.mse_accuracy:.4f}" for r in results],
    ]
    return render_table(
        headers, rows, title="Table 2: Validation of estimator prediction"
    )
