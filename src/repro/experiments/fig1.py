"""Figure 1 — profiling existing GNN training frameworks.

(a) PaGraph's speedup/memory trade-off: epoch time falls and memory rises as
    the static cache grows (the paper sweeps memory consumption 1426-1759 MiB
    against epoch times 8→1.3 s).
(b) 2PGraph vs PaGraph: per-epoch time and training accuracy — 2PGraph is
    ~2.45x faster per epoch but converges ~3% lower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.settings import TaskSpec
from repro.config.templates import get_template
from repro.runtime.backend import RuntimeBackend

__all__ = ["Fig1aPoint", "Fig1bCurve", "run_fig1a", "run_fig1b"]


@dataclass(frozen=True)
class Fig1aPoint:
    """One cache-ratio setting of PaGraph: its memory and epoch time."""

    cache_ratio: float
    memory_mib: float
    epoch_time_ms: float
    hit_rate: float


@dataclass(frozen=True)
class Fig1bCurve:
    """Per-epoch trajectory of one framework."""

    method: str
    epoch_times_ms: list[float]
    accuracies: list[float]
    final_accuracy: float


def run_fig1a(
    *,
    dataset: str = "reddit2",
    arch: str = "sage",
    epochs: int = 3,
    cache_ratios: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75),
) -> list[Fig1aPoint]:
    """Sweep PaGraph's static cache ratio (Fig. 1a trade-off curve)."""
    task = TaskSpec(dataset=dataset, arch=arch, epochs=epochs)
    points: list[Fig1aPoint] = []
    for ratio in cache_ratios:
        config = get_template(
            "pagraph_full", cache_ratio=ratio,
            cache_policy="static" if ratio > 0 else "none",
        )
        report = RuntimeBackend(task, config).train()
        points.append(
            Fig1aPoint(
                cache_ratio=ratio,
                memory_mib=report.memory.total / 1024**2,
                epoch_time_ms=report.time_s * 1e3,
                hit_rate=report.mean_hit_rate,
            )
        )
    return points


def run_fig1b(
    *,
    dataset: str = "reddit2",
    arch: str = "sage",
    epochs: int = 6,
) -> list[Fig1bCurve]:
    """PaGraph vs 2PGraph epoch-time/accuracy curves (Fig. 1b).

    The paper's 2.45x epoch-time gap is measured against PaGraph in the
    memory-constrained regime, so the PaGraph side uses the Pa-Low template.
    """
    task = TaskSpec(dataset=dataset, arch=arch, epochs=epochs)
    curves: list[Fig1bCurve] = []
    for method in ("pagraph_low", "2pgraph"):
        report = RuntimeBackend(task, get_template(method)).train()
        curves.append(
            Fig1bCurve(
                method=method,
                epoch_times_ms=[e.time_s * 1e3 for e in report.epochs],
                accuracies=[e.val_accuracy for e in report.epochs],
                final_accuracy=report.accuracy,
            )
        )
    return curves
