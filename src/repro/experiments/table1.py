"""Table 1 — overall performance of GNNavigator across tasks.

For each task (PR+SAGE, RD2+SAGE, AR+GAT) run the four baseline templates
(PyG, Pa-Full, Pa-Low, 2P) and the four GNNavigator priorities (Bal, Ex-TM,
Ex-MA, Ex-TA), all trained to the same epoch budget on the runtime backend,
reporting measured ``T``, ``Γ`` and ``Acc`` with PyG-relative annotations —
exactly the paper's row structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.settings import TaskSpec
from repro.config.templates import get_template
from repro.experiments.cache import profiling_records
from repro.experiments.tasks import (
    BASELINE_METHODS,
    METHOD_LABELS,
    NAVIGATOR_MODES,
    TABLE1_TASKS,
    estimator_task,
    table1_task,
)
from repro.experiments.tables import format_delta_pct, format_ratio, render_table
from repro.explorer.navigator import GNNavigator
from repro.runtime.backend import RuntimeBackend
from repro.runtime.report import PerfReport

__all__ = ["Table1Row", "Table1Block", "run_table1_task", "run_table1", "render_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One method's measured performance on one task."""

    method: str
    time_s: float
    memory_bytes: float
    accuracy: float
    config_summary: str


@dataclass
class Table1Block:
    """All methods for one (dataset, arch) application."""

    label: str
    dataset: str
    arch: str
    rows: list[Table1Row] = field(default_factory=list)

    def row(self, method: str) -> Table1Row:
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(method)

    @property
    def baseline(self) -> Table1Row:
        return self.row("pyg")


def _measure(task: TaskSpec, config) -> PerfReport:
    return RuntimeBackend(task, config).train()


def run_table1_task(
    label: str,
    dataset: str,
    arch: str,
    *,
    epochs: int = 8,
    profile_budget: int = 40,
    profile_epochs: int = 4,
    workers: int | None = None,
) -> Table1Block:
    """Run every method of one Table 1 block."""
    task = table1_task(dataset, arch, epochs=epochs)
    block = Table1Block(label=label, dataset=dataset, arch=arch)

    for method in BASELINE_METHODS:
        report = _measure(task, get_template(method))
        block.rows.append(
            Table1Row(
                method=method,
                time_s=report.time_s,
                memory_bytes=float(report.memory.total),
                accuracy=report.accuracy,
                config_summary=report.config_summary,
            )
        )

    # GNNavigator: fit the estimator on cached ground truth, explore once,
    # then measure each priority's guideline with the same epoch budget.
    records = profiling_records(
        estimator_task(dataset, arch, epochs=profile_epochs),
        budget=profile_budget,
        workers=workers,
    )
    nav = GNNavigator(task, profile_budget=profile_budget, workers=workers)
    nav.fit_estimator(records)
    report = nav.explore(priorities=list(NAVIGATOR_MODES))
    for mode in NAVIGATOR_MODES:
        guideline = report.guidelines[mode]
        measured = _measure(task, guideline.config)
        block.rows.append(
            Table1Row(
                method=mode,
                time_s=measured.time_s,
                memory_bytes=float(measured.memory.total),
                accuracy=measured.accuracy,
                config_summary=measured.config_summary,
            )
        )
    return block


def run_table1(
    *,
    epochs: int = 8,
    profile_budget: int = 40,
    profile_epochs: int = 4,
    workers: int | None = None,
) -> list[Table1Block]:
    """All three applications of Table 1."""
    return [
        run_table1_task(
            label,
            dataset,
            arch,
            epochs=epochs,
            profile_budget=profile_budget,
            profile_epochs=profile_epochs,
            workers=workers,
        )
        for label, dataset, arch in TABLE1_TASKS
    ]


def render_table1(blocks: list[Table1Block]) -> str:
    """Paper-shaped text rendering with PyG-relative annotations."""
    headers = ["Application", "Method", "Time (T)/ms", "Memory (Γ)/MiB", "Accuracy"]
    rows: list[list[str]] = []
    for block in blocks:
        base = block.baseline
        for i, row in enumerate(block.rows):
            time_ms = row.time_s * 1e3
            mem_mib = row.memory_bytes / 1024**2
            if row.method == "pyg":
                time_cell = f"{time_ms:.2f}"
                mem_cell = f"{mem_mib:.1f}"
            else:
                time_cell = (
                    f"{time_ms:.2f} ({format_ratio(row.time_s, base.time_s)})"
                )
                mem_cell = (
                    f"{mem_mib:.1f} "
                    f"({format_delta_pct(row.memory_bytes, base.memory_bytes)})"
                )
            rows.append(
                [
                    block.label if i == 0 else "",
                    METHOD_LABELS[row.method],
                    time_cell,
                    mem_cell,
                    f"{row.accuracy * 100:.2f}%",
                ]
            )
    return render_table(headers, rows, title="Table 1: Performance of GNNavigator across different tasks")
