"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.cache import (
    cache_dir,
    clear_cache,
    exhaustive_records,
    profiling_records,
)
from repro.experiments.fig1 import Fig1aPoint, Fig1bCurve, run_fig1a, run_fig1b
from repro.experiments.fig5 import Fig5Result, augmentation_records, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.table1 import (
    Table1Block,
    Table1Row,
    render_table1,
    run_table1,
    run_table1_task,
)
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.tables import format_delta_pct, format_ratio, render_table
from repro.experiments.tasks import (
    BASELINE_METHODS,
    METHOD_LABELS,
    NAVIGATOR_MODES,
    TABLE1_TASKS,
    TABLE2_DATASETS,
    estimator_task,
    table1_task,
)

__all__ = [
    "cache_dir",
    "clear_cache",
    "exhaustive_records",
    "profiling_records",
    "Fig1aPoint",
    "Fig1bCurve",
    "run_fig1a",
    "run_fig1b",
    "Fig5Result",
    "augmentation_records",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Table1Block",
    "Table1Row",
    "render_table1",
    "run_table1",
    "run_table1_task",
    "render_table2",
    "run_table2",
    "render_table",
    "format_ratio",
    "format_delta_pct",
    "BASELINE_METHODS",
    "METHOD_LABELS",
    "NAVIGATOR_MODES",
    "TABLE1_TASKS",
    "TABLE2_DATASETS",
    "estimator_task",
    "table1_task",
]
