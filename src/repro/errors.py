"""Exception hierarchy for the GNNavigator reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph is structurally invalid (bad CSR arrays, dangling edges...)."""


class ConfigError(ReproError):
    """A training configuration is out of the legal design space."""


class HardwareError(ReproError):
    """A hardware specification is inconsistent or a budget is violated."""


class SamplingError(ReproError):
    """A sampler received arguments it cannot honour."""


class EstimatorError(ReproError):
    """The performance estimator was used before fitting or on bad inputs."""


class ExplorationError(ReproError):
    """Design-space exploration could not produce a feasible guideline."""


class ServingError(ReproError):
    """The navigation serving layer was misused or a served job failed."""


class JobCancelled(ReproError):
    """A cooperatively-cancelled job observed its cancellation token.

    Raised from cancellation checkpoints (profiling-batch boundaries and
    navigation phase transitions); the serving worker loop catches it and
    parks the job in ``CANCELLED`` instead of ``FAILED``.
    """
