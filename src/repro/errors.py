"""Exception hierarchy for the GNNavigator reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph is structurally invalid (bad CSR arrays, dangling edges...)."""


class ConfigError(ReproError):
    """A training configuration is out of the legal design space."""


class HardwareError(ReproError):
    """A hardware specification is inconsistent or a budget is violated."""


class SamplingError(ReproError):
    """A sampler received arguments it cannot honour."""


class EstimatorError(ReproError):
    """The performance estimator was used before fitting or on bad inputs."""


class ExplorationError(ReproError):
    """Design-space exploration could not produce a feasible guideline."""


class ServingError(ReproError):
    """The navigation serving layer was misused or a served job failed."""


class ServerStoppingError(ServingError):
    """A submission was rejected because the server is shutting down.

    A :class:`ServingError` subclass so existing ``except ServingError``
    callers keep working; the transport maps it to HTTP 503.
    """


class UnknownJobError(ServingError):
    """A job id was polled that the server never issued (or has forgotten).

    A :class:`ServingError` subclass so existing ``except ServingError``
    callers keep working; the transport maps it to HTTP 404.
    """


class JobFailedError(ServingError):
    """A served navigation job reached FAILED.

    Raised by ``result()`` on both the in-process :class:`JobHandle` and the
    remote client, so callers branch on the type instead of string-matching
    ``JobResult.error``.  ``job_id`` names the job; ``traceback`` carries the
    server-side traceback text when the server captured one (it crosses the
    wire inside the transport error envelope).
    """

    def __init__(
        self,
        job_id: str,
        message: str,
        traceback: str | None = None,
    ) -> None:
        super().__init__(f"{job_id} failed: {message}")
        self.job_id = job_id
        self.message = message
        self.traceback = traceback


class UnknownExecutorError(ServingError):
    """A fleet call named an executor id the server never registered.

    The standing instruction to the executor is to re-register: the server
    may have restarted (losing the registry) or pruned the executor after a
    heartbeat gap.  A :class:`ServingError` subclass so existing ``except
    ServingError`` callers keep working; the transport maps it to HTTP 404.
    """


class ProtocolError(ServingError):
    """A transport message violated the serving wire protocol.

    Covers malformed JSON bodies, missing required fields and protocol
    version mismatches — errors of the *envelope*, as opposed to
    :class:`ServingError`s raised by the navigation server behind it.
    """


class JobCancelled(ReproError):
    """A cooperatively-cancelled job observed its cancellation token.

    Raised from cancellation checkpoints (profiling-batch boundaries and
    navigation phase transitions); the serving worker loop catches it and
    parks the job in ``CANCELLED`` instead of ``FAILED``.
    """
