"""Parallel ground-truth profiling service with a persistent result cache.

Step 2 of the paper fits the gray-box estimator on ground truth "covering
the whole design space" (Sec. 4.1) — by far the dominant wall-clock cost of
a navigation run, because every candidate is a full (short) training run on
the runtime backend.  :class:`ProfilingService` turns that step into a
service:

* **parallelism** — candidate evaluations fan out across worker processes
  (``max_workers``); results are collected in submission order, so the
  output is bit-identical to the serial path for the same seed;
* **deduplication** — repeated candidates (same task, same canonical
  config, same graph) are keyed by a content hash and executed once per
  call, whether they repeat within one request or across requests;
* **persistence** — finished :class:`GroundTruthRecord`s are written to an
  on-disk JSON store keyed by the same content hash, so repeated
  navigations, benchmarks and the Fig. 6 adaptability experiment reuse
  measurements instead of retraining.  Corrupt or stale entries are
  discarded, never fatal.

The profiling runs themselves are deterministic functions of
``(task, config, graph)`` — every RNG in the backend is seeded from the
task — which is what makes both the dedup and the cache sound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config.settings import TaskSpec, TrainingConfig
from repro.errors import JobCancelled
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset
from repro.graphs.profiling import GraphProfile
from repro.runtime.profiler import GroundTruthRecord, profile_one
from repro.transfer.fingerprint import record_fingerprint

__all__ = [
    "CancellationToken",
    "ProfilingService",
    "ProfilingStats",
    "ResultStore",
    "candidate_key",
    "default_store_dir",
    "graph_fingerprint",
    "predicted_cost",
    "record_to_dict",
    "record_from_dict",
]

#: bump when the serialised record layout changes; mismatched entries are
#: silently discarded and re-measured.
_STORE_VERSION = 1

#: schema version of the per-record metadata sidecar (the task fingerprint
#: the transfer corpus indexes); version-skewed sidecars are re-derived
#: from the record they describe.
_META_VERSION = 1

#: semantic version of the measurements themselves — bump whenever the
#: runtime backend or cost model changes what a profiling run would measure
#: (new cost term, changed sampler semantics, ...).  It is folded into the
#: candidate key, so stale entries simply stop matching and re-measure.
GROUND_TRUTH_VERSION = 1

#: task fields that determine a profiling run, derived from the dataclass so
#: new fields join the key automatically (``extra`` is compare-excluded and
#: may hold non-JSON payloads, so it stays out).
_TASK_FIELDS = tuple(f.name for f in dataclasses.fields(TaskSpec) if f.compare)


# ------------------------------------------------------------- cancellation
class CancellationToken:
    """Cooperative cancellation flag shared between a job and its canceller.

    Profiling is a sequence of full training runs, so preemption is neither
    safe nor needed: the canceller flips the token from any thread and the
    running side polls it at *batch boundaries* — between candidate runs in
    :meth:`ProfilingService._execute` and between claim rounds in the
    serving scheduler — via :meth:`raise_if_cancelled`, which raises
    :class:`~repro.errors.JobCancelled`.  A candidate already training runs
    to completion; nothing after the next checkpoint does.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        """Checkpoint: raise :class:`JobCancelled` once cancel was requested."""
        if self._event.is_set():
            raise JobCancelled("job cancelled at a profiling-batch boundary")


# --------------------------------------------------------------------- keys
def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a graph: topology, features, labels and metadata.

    Two graphs with the same fingerprint produce identical profiling runs,
    so the fingerprint (not the dataset name) keys the result cache.
    """
    h = hashlib.sha256()
    h.update(f"{graph.name}|{graph.num_nodes}|{graph.num_classes}".encode())
    # Each section is tagged with its name, dtype and shape so optional
    # arrays with coinciding raw bytes can never alias (e.g. absent features
    # vs labels, or same bytes viewed under a different dtype/shape).
    for tag, arr in (
        ("indptr", graph.indptr),
        ("indices", graph.indices),
        ("features", graph.features),
        ("labels", graph.labels),
    ):
        if arr is None:
            h.update(f"|{tag}:none".encode())
            continue
        h.update(f"|{tag}:{arr.dtype.str}:{arr.shape}".encode())
        # Feed the buffer directly — tobytes() would materialize a second
        # full-size copy of what may be a multi-GB feature matrix.
        h.update(np.ascontiguousarray(arr).data)
    return h.hexdigest()[:32]


def candidate_key(task: TaskSpec, config: TrainingConfig, fingerprint: str) -> str:
    """Stable content hash of one ``(task, config, graph)`` candidate."""
    payload = {
        "task": {f: getattr(task, f) for f in _TASK_FIELDS},
        "config": config.canonical().to_dict(),
        "graph": fingerprint,
        "ground_truth_version": GROUND_TRUTH_VERSION,
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:32]


# ------------------------------------------------------------ serialization
def record_to_dict(record: GroundTruthRecord) -> dict:
    """JSON-friendly encoding of a :class:`GroundTruthRecord`."""
    out = {
        "config": record.config.to_dict(),
        "task": {f: getattr(record.task, f) for f in _TASK_FIELDS},
        "graph_profile": dataclasses.asdict(record.graph_profile),
    }
    for f in dataclasses.fields(GroundTruthRecord):
        if f.name not in out:
            value = getattr(record, f.name)
            out[f.name] = int(value) if f.name == "num_batches" else float(value)
    return out


def record_from_dict(data: dict) -> GroundTruthRecord:
    """Inverse of :func:`record_to_dict`."""
    payload = dict(data)
    payload["config"] = TrainingConfig.from_dict(payload["config"])
    payload["task"] = TaskSpec(**payload["task"])
    payload["graph_profile"] = GraphProfile(**payload["graph_profile"])
    return GroundTruthRecord(**payload)


# -------------------------------------------------------------------- store
def default_store_dir() -> Path:
    """The repo-local store directory shared by experiments and serving.

    ``REPRO_STORE_DIR`` overrides it (CI and multi-checkout setups); the
    default lives under the repo root so `repro serve`, `navigate
    --shared-cache` and the experiment harness all hit the same entries.
    """
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".cache" / "store"


class ResultStore:
    """On-disk JSON store of ground-truth records, one file per candidate.

    Writes are atomic (tmp file + rename) so a crashed run never leaves a
    half-written entry; reads treat anything unparsable or version-skewed as
    a miss and delete the offending file.  One instance may be shared by
    many threads (the serving layer does); the entry count and on-disk byte
    total are maintained incrementally, so ``len(store)`` and :attr:`nbytes`
    are O(1) rather than a directory re-glob per call.  Both reflect this
    instance's view — a concurrent *process* writing the same directory is
    only picked up by :meth:`refresh`.

    :meth:`pin` marks entries that eviction (:meth:`prune` /
    :meth:`prune_bytes`) must skip — the escape hatch that keeps a hot
    task's ground truth resident under a tight budget.  Pins are
    per-instance, in-memory state, not persisted.

    Every record carries a *metadata sidecar* (``meta_<key>.json``): a
    schema-versioned envelope holding the record's task fingerprint, which
    the transfer corpus indexes without parsing record payloads.  The
    sidecar is renamed into place *before* the record on :meth:`save`, so a
    crash mid-save can leave an orphan sidecar (harmless, ignored) but
    never a record without its fingerprint entry.  Sidecars are a few
    hundred bytes and excluded from the :attr:`nbytes`/``len`` budgets,
    which keep counting records exactly as before.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._pinned: set[str] = set()  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        self._recount()

    def _recount(self) -> None:  # holds: _lock
        """Re-scan the directory into the count/byte counters (callers hold
        the lock, or are ``__init__`` before the store is shared)."""
        count = total = 0
        for path in self.root.glob("gt_*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue  # deleted under us: skip both counters
            count += 1
        self._count = count
        self._bytes = total

    def _path(self, key: str) -> Path:
        return self.root / f"gt_{key}.json"

    def _meta_path(self, key: str) -> Path:
        return self.root / f"meta_{key}.json"

    @staticmethod
    def _meta_payload(key: str, record: GroundTruthRecord) -> dict:
        fingerprint = record_fingerprint(record)
        return {
            "version": _META_VERSION,
            "key": key,
            "fingerprint_id": fingerprint.fingerprint_id,
            "fingerprint": fingerprint.to_dict(),
        }

    def load(self, key: str) -> GroundTruthRecord | None:
        """Return the stored record, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as f:
                envelope = json.load(f)
            if envelope.get("version") != _STORE_VERSION:
                raise ValueError("store version mismatch")
            return record_from_dict(envelope["record"])
        except OSError:
            # Missing file or transient I/O failure: a miss, but never
            # grounds for deleting what may be a valid entry.
            return None
        except Exception:
            # Corrupt/stale entry: discard it so the candidate re-measures.
            self._discard(path)
            return None

    def save(self, key: str, record: GroundTruthRecord) -> None:
        """Persist one record (and its fingerprint sidecar) atomically.

        Both files are staged tmp-then-rename; the sidecar rename lands
        *first*, so no crash point can produce a record whose fingerprint
        entry is missing — an interrupted save leaves either nothing or an
        orphan sidecar the corpus ignores.
        """
        envelope = {
            "version": _STORE_VERSION,
            "key": key,
            "record": record_to_dict(record),
        }
        path = self._path(key)
        meta_path = self._meta_path(key)
        # pid-unique tmp name: concurrent writers sharing one cache dir must
        # not interleave into the same staging file before the rename.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        meta_tmp = meta_path.with_suffix(f".{os.getpid()}.tmp")
        with open(meta_tmp, "w", encoding="utf-8") as f:
            json.dump(self._meta_payload(key, record), f)
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(envelope, f)
        new_size = tmp.stat().st_size
        with self._lock:
            try:
                old_size = path.stat().st_size
            except OSError:
                old_size = None
            os.replace(meta_tmp, meta_path)
            os.replace(tmp, path)
            if old_size is None:
                self._count += 1
                self._bytes += new_size
            else:
                self._bytes += new_size - old_size

    def load_meta(self, key: str) -> dict | None:
        """The record's sidecar payload (fingerprint envelope), or ``None``.

        Corrupt or version-skewed sidecars are deleted and reported as a
        miss — :meth:`ensure_meta` re-derives them from the record.
        """
        meta_path = self._meta_path(key)
        try:
            with open(meta_path, encoding="utf-8") as f:
                payload = json.load(f)
            if payload.get("version") != _META_VERSION:
                raise ValueError("sidecar version mismatch")
            if not isinstance(payload.get("fingerprint"), dict):
                raise ValueError("sidecar missing fingerprint")
            return payload
        except OSError:
            return None
        except Exception:
            # Only the sidecar is suspect; the record stays untouched.
            try:
                meta_path.unlink()
            except OSError:
                pass
            return None

    def ensure_meta(self, key: str) -> dict | None:
        """Sidecar payload for ``key``, backfilling it from the record.

        Stores written before the sidecar existed (or whose sidecar was
        version-skewed) get their fingerprint entries re-derived here the
        first time the transfer corpus scans them.  ``None`` when the
        record itself is missing or unreadable.
        """
        payload = self.load_meta(key)
        if payload is not None:
            return payload
        record = self.load(key)
        if record is None:
            return None
        payload = self._meta_payload(key, record)
        meta_path = self._meta_path(key)
        meta_tmp = meta_path.with_suffix(f".{os.getpid()}.tmp")
        with open(meta_tmp, "w", encoding="utf-8") as f:
            json.dump(payload, f)
        with self._lock:
            os.replace(meta_tmp, meta_path)
        return payload

    def _discard(self, path: Path) -> bool:
        """Delete one entry; ``True`` only if *this* caller removed it."""
        with self._lock:
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                return False
            self._count -= 1
            self._bytes -= size
            # Record first, sidecar second: an interruption here leaves an
            # orphan sidecar, never a record without one.
            try:
                self._meta_path(path.stem[len("gt_") :]).unlink()
            except OSError:
                pass
            return True

    def keys(self) -> list[str]:
        """Candidate keys of every stored entry (sorted, point-in-time)."""
        return sorted(p.stem[len("gt_") :] for p in self.root.glob("gt_*.json"))

    # ------------------------------------------------------------------ pins
    def pin(self, key: str) -> None:
        """Exempt one candidate key from eviction (idempotent).

        Pinning does not require the entry to exist yet — a server can pin
        a hot task's keys up front and let the measurements land later.
        """
        with self._lock:
            self._pinned.add(key)

    def unpin(self, key: str) -> None:
        """Drop an eviction exemption (idempotent)."""
        with self._lock:
            self._pinned.discard(key)

    @property
    def pinned(self) -> frozenset[str]:
        """Keys currently exempt from eviction (point-in-time copy)."""
        with self._lock:
            return frozenset(self._pinned)

    # -------------------------------------------------------------- eviction
    def _evictable(self) -> list[Path]:
        """Unpinned entry paths, oldest (by mtime) first."""
        with self._lock:
            pinned = set(self._pinned)
        paths = [
            p
            for p in self.root.glob("gt_*.json")
            if p.stem[len("gt_") :] not in pinned
        ]

        def _mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return 0.0

        return sorted(paths, key=_mtime)

    def prune(self, max_entries: int) -> int:
        """Evict oldest unpinned entries (by mtime) down to ``max_entries``;
        returns how many *this caller* removed.  Entries a concurrent pruner
        deleted under us are not double-counted (they were its removals).
        Pinned entries are never touched, so a store may stay over budget
        when pins alone exceed it."""
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        excess = len(self) - max_entries
        if excess <= 0:
            return 0
        removed = 0
        for path in self._evictable()[:excess]:
            if self._discard(path):
                removed += 1
        return removed

    def prune_bytes(self, max_bytes: int) -> int:
        """Evict oldest unpinned entries until at most ``max_bytes`` remain
        on disk; returns how many entries *this caller* removed."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        removed = 0
        for path in self._evictable():
            if self.nbytes <= max_bytes:
                break
            if self._discard(path):
                removed += 1
        return removed

    def refresh(self) -> int:
        """Re-count entries on disk (after another process wrote the dir)."""
        with self._lock:
            self._recount()
            return self._count

    @property
    def nbytes(self) -> int:
        """On-disk bytes of every stored entry (this instance's view)."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return self._count


# ------------------------------------------------------------------ workers
# Worker processes receive the (task, graph) pair once via the pool
# initializer instead of re-pickling the graph with every candidate.
_WORKER_TASK: TaskSpec | None = None
_WORKER_GRAPH: CSRGraph | None = None


def _worker_init(task: TaskSpec, graph: CSRGraph) -> None:
    global _WORKER_TASK, _WORKER_GRAPH
    _WORKER_TASK = task
    _WORKER_GRAPH = graph


def _worker_run(config: TrainingConfig) -> GroundTruthRecord:
    record, _ = profile_one(_WORKER_TASK, config, graph=_WORKER_GRAPH)
    return record


# ------------------------------------------------------------------ service
def predicted_cost(
    task: TaskSpec, config: TrainingConfig, graph: CSRGraph
) -> float:
    """Cheap monotone proxy for one candidate's training cost.

    Only the *ordering* matters (longest-first dispatch): epochs times the
    per-epoch work, which scales with how many batches run, how many nodes
    each mini-batch touches (bounded by the graph) and the dense compute per
    touched node.
    """
    fanout = float(np.prod([1.0 + k for k in config.hop_list]))
    batch_nodes = min(config.batch_size * fanout, float(graph.num_nodes))
    num_batches = max(1.0, graph.num_nodes / config.batch_size)
    per_node = float(config.hidden_channels * config.num_layers)
    return task.epochs * num_batches * batch_nodes * per_node


@dataclass
class ProfilingStats:
    """Where each requested candidate came from (one service lifetime).

    Counter updates go through :meth:`bump` so concurrent serving jobs
    sharing one service never lose increments to read-modify-write races.
    """

    executed: int = 0  # actual training runs
    cache_hits: int = 0  # served from the persistent/in-memory store
    deduplicated: int = 0  # repeated candidates folded into one run
    shared_inflight: int = 0  # served by waiting on another job's run
    evictions: int = 0  # store entries removed by the size budget
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, counter: str, n: int = 1) -> None:
        """Atomically add ``n`` to one of the counters."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)


class ProfilingService:
    """Fan-out + dedup + cache front-end for ground-truth profiling.

    Parameters
    ----------
    max_workers:
        ``None``/``0``/``1`` runs candidates serially in-process (no pool
        overhead — the right default for small budgets and tests); ``>= 2``
        fans out across that many worker processes.
    cache_dir:
        Directory for the persistent :class:`ResultStore`; ``None`` disables
        persistence (dedup and in-memory reuse still apply).
    store_budget:
        Maximum entries the persistent store may hold.  Every commit that
        pushes the store past the budget prunes it (LRU by mtime, counted
        in ``stats.evictions``) down to ~90% of the budget — the slack
        amortizes the prune scan across commits; ``None`` = unbounded.
        The in-memory layer is unaffected, so hot records stay served.
    store_budget_bytes:
        Maximum *on-disk bytes* the persistent store may hold — the budget
        that tracks what actually fills a disk when record sizes vary.
        Same eviction policy and hysteresis as ``store_budget``; both
        budgets may be active at once (either tripping prunes).  Entries
        pinned via :meth:`ResultStore.pin` are never evicted by either.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        store_budget: int | None = None,
        store_budget_bytes: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be non-negative")
        if store_budget is not None and store_budget < 1:
            raise ValueError("store_budget must be at least 1")
        if store_budget_bytes is not None and store_budget_bytes < 1:
            raise ValueError("store_budget_bytes must be at least 1")
        self.max_workers = max_workers
        self.store_budget = store_budget
        self.store_budget_bytes = store_budget_bytes
        self.store = ResultStore(cache_dir) if cache_dir is not None else None
        self.stats = ProfilingStats()
        #: optional batch runner (the fleet dispatcher) that takes over
        #: pending-candidate execution when it ``accepts()`` the batch; see
        #: :meth:`_execute`.  ``None`` keeps every run on the local pool.
        self.runner = None
        self._memory: dict = {}
        # Graphs seen by this service: pinned so the id()-based memoization
        # and in-memory keys can never be recycled onto a different graph.
        self._graphs: list[CSRGraph] = []
        self._fingerprints: dict[int, str] = {}

    # ------------------------------------------------------------- plumbing
    def _pin(self, graph: CSRGraph) -> None:
        if all(g is not graph for g in self._graphs):
            self._graphs.append(graph)

    def _fingerprint(self, graph: CSRGraph) -> str:
        """Content hash of the graph, computed once per service lifetime.

        A warm-cache ``profile()`` must not re-hash a multi-GB feature
        matrix every call; graphs are immutable, so identity memoization
        is sound (and the pin keeps ids stable).
        """
        self._pin(graph)
        key = id(graph)
        if key not in self._fingerprints:
            self._fingerprints[key] = graph_fingerprint(graph)
        return self._fingerprints[key]

    def _keys(
        self, task: TaskSpec, configs: list[TrainingConfig], graph: CSRGraph
    ) -> list:
        """One dedup/cache key per candidate.

        With a persistent store the key must be a content hash (stable
        across processes and runs).  Without one, dedup and in-memory reuse
        only need identity within this service's lifetime — so skip hashing
        the full graph payload and key on ``(graph identity, task, config)``.
        An attached batch runner forces content hashes too: fleet keys cross
        the wire, so identity tuples would be meaningless on the far side.
        """
        if self.store is not None or self.runner is not None:
            fingerprint = self._fingerprint(graph)
            return [candidate_key(task, c, fingerprint) for c in configs]
        self._pin(graph)
        return [(id(graph), task, c.canonical()) for c in configs]

    def _lookup(self, key) -> GroundTruthRecord | None:
        if key in self._memory:
            return self._memory[key]
        if self.store is not None:
            record = self.store.load(key)
            if record is not None:
                self._memory[key] = record
            return record
        return None

    def commit(self, key, record: GroundTruthRecord) -> None:
        """Publish one finished measurement to memory and the store.

        The single write path for both :meth:`profile` and the serving
        scheduler, so persistence invariants — including the size budget —
        can never diverge between them.
        """
        self._memory[key] = record
        if self.store is not None:
            self.store.save(key, record)
            if (
                self.store_budget is not None
                and len(self.store) > self.store_budget
            ):
                # 10% hysteresis: pruning slightly below the budget keeps a
                # full store from paying prune's directory scan on every
                # subsequent commit (no-op for budgets under 10, where the
                # slack rounds to zero).
                target = self.store_budget - self.store_budget // 10
                removed = self.store.prune(target)
                if removed:
                    self.stats.bump("evictions", removed)
            if (
                self.store_budget_bytes is not None
                and self.store.nbytes > self.store_budget_bytes
            ):
                # Same hysteresis, in bytes.
                target = (
                    self.store_budget_bytes - self.store_budget_bytes // 10
                )
                removed = self.store.prune_bytes(target)
                if removed:
                    self.stats.bump("evictions", removed)

    def _execute(
        self,
        task: TaskSpec,
        configs: list[TrainingConfig],
        graph: CSRGraph,
        *,
        progress: bool = False,
        cancel: CancellationToken | None = None,
        keys: list | None = None,
        on_run=None,
    ) -> list[GroundTruthRecord]:
        """Run the unique pending candidates — the batch handout seam.

        When a batch runner is attached (``self.runner``, the fleet
        dispatcher) and it ``accepts()`` this batch, execution is handed to
        it; it commits records through :meth:`commit` exactly like the local
        path and returns them in input order.  Otherwise — no runner, no
        live executors, or no keys to address the work by — the batch runs
        on the local pool via :meth:`_execute_local`.  The contract (order,
        commit-as-you-go, ``stats.executed``, cancellation checkpoints,
        ``on_run`` callbacks) is identical on both paths.
        """
        if not configs:
            return []
        runner = self.runner
        if (
            runner is not None
            and keys is not None
            and runner.accepts(task, configs, graph)
        ):
            return runner.run_batch(
                self, task, configs, graph, keys=keys, cancel=cancel, on_run=on_run
            )
        return self._execute_local(
            task,
            configs,
            graph,
            progress=progress,
            cancel=cancel,
            keys=keys,
            on_run=on_run,
        )

    def _execute_local(
        self,
        task: TaskSpec,
        configs: list[TrainingConfig],
        graph: CSRGraph,
        *,
        progress: bool = False,
        cancel: CancellationToken | None = None,
        keys: list | None = None,
        on_run=None,
    ) -> list[GroundTruthRecord]:
        """Run the unique pending candidates, serially or across the pool.

        Results come back in input order either way, which keeps the service
        bit-identical to the serial profiler.  Pool dispatch is cost-ordered
        longest-first (:func:`predicted_cost`): submitting the heaviest
        candidates before the cheap tail keeps a skewed batch from parking
        one worker on a late-arriving giant while the others sit idle.

        ``cancel`` is polled between candidate runs (serial) or result
        collections (pool) — the cooperative batch boundary.  On the pool
        path, not-yet-started futures are cancelled; candidates already
        training finish and are discarded.  ``stats.executed`` counts only
        completed runs, so an aborted batch never overstates the work done.

        ``keys`` (parallel to ``configs``) makes the run publish as it
        goes: each completed record is :meth:`commit`-ted immediately, so
        an aborted batch keeps every training run it finished — waiters and
        later callers serve them from memory/store instead of re-measuring.

        ``on_run(completed)`` fires after every collected record with the
        count of runs this call has finished — the progress-event seat the
        serving layer plugs live job streaming into.  It runs on the
        calling thread and must not raise (a raising callback aborts the
        batch exactly like a cancellation would).
        """
        if not configs:
            return []
        if cancel is not None:
            cancel.raise_if_cancelled()
        workers = min(self.max_workers or 1, len(configs))
        records: list[GroundTruthRecord] = []

        def _serial():
            for c in configs:
                if cancel is not None:
                    cancel.raise_if_cancelled()
                yield profile_one(task, c, graph=graph)[0]

        if workers <= 1:
            runs = _serial()
        else:
            order = sorted(
                range(len(configs)),
                key=lambda i: predicted_cost(task, configs[i], graph),
                reverse=True,
            )
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(task, graph),
            )
            futures = {i: pool.submit(_worker_run, configs[i]) for i in order}

            def _collect():
                for i in range(len(configs)):
                    if cancel is not None and cancel.cancelled:
                        for future in futures.values():
                            future.cancel()
                        if keys is not None:
                            # Candidates already dispatched keep training
                            # (shutdown waits for them regardless); publish
                            # every run that finishes so the abort wastes
                            # none of them.  Cancelled futures never ran.
                            for j in range(i, len(configs)):
                                future = futures[j]
                                if future.cancelled():
                                    continue
                                try:
                                    record = future.result()
                                except BaseException:
                                    continue
                                self.commit(keys[j], record)
                                self.stats.bump("executed")
                        cancel.raise_if_cancelled()
                    yield futures[i].result()

            runs = _collect()
        try:
            for i, record in enumerate(runs):
                records.append(record)
                if keys is not None:
                    self.commit(keys[i], record)
                self.stats.bump("executed")
                if on_run is not None:
                    on_run(i + 1)
                if progress and (i + 1) % 10 == 0:
                    print(f"profiled {i + 1}/{len(configs)} candidates")
        finally:
            if workers > 1:
                pool.shutdown()
        return records

    # ------------------------------------------------------------------ API
    def profile(
        self,
        task: TaskSpec,
        configs: list[TrainingConfig],
        *,
        graph: CSRGraph | None = None,
        progress: bool = False,
        cancel: CancellationToken | None = None,
        on_progress=None,
    ) -> list[GroundTruthRecord]:
        """Measure every candidate, returning one record per input config.

        Output order matches input order and values match the serial
        :func:`~repro.runtime.profiler.profile_one` path exactly; repeated
        and previously-measured candidates are served without retraining.
        ``cancel`` aborts between candidate runs with
        :class:`~repro.errors.JobCancelled`; candidates that completed
        before the abort are already committed, so a cancelled call wastes
        no finished training run.

        ``on_progress(runs_done, runs_total, cache_hits)`` fires with
        cumulative counts for *this call* — once after the cache scan and
        again after every training run — so a subscriber sees both the
        instant cache fill and the slow measured tail.  Counts are over
        unique candidates (duplicates fold before they are counted).
        """
        graph = graph if graph is not None else load_dataset(task.dataset)

        keys = self._keys(task, configs, graph)
        results: dict = {}
        seen: set = set()
        pending: list[TrainingConfig] = []
        pending_keys: list = []
        for key, config in zip(keys, configs, strict=True):
            if key in seen:
                self.stats.bump("deduplicated")
                continue
            seen.add(key)
            cached = self._lookup(key)
            if cached is not None:
                self.stats.bump("cache_hits")
                results[key] = cached
                continue
            pending.append(config.canonical())
            pending_keys.append(key)

        on_run = None
        if on_progress is not None:
            total, hits = len(seen), len(results)
            on_progress(hits, total, hits)
            on_run = lambda done: on_progress(hits + done, total, hits)  # noqa: E731

        fresh = self._execute(
            task,
            pending,
            graph,
            progress=progress,
            cancel=cancel,
            keys=pending_keys,  # _execute commits each record as it lands
            on_run=on_run,
        )
        for key, record in zip(pending_keys, fresh, strict=True):
            results[key] = record

        return [results[key] for key in keys]
