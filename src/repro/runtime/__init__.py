"""Reconfigurable runtime backend executing Algorithm 1 on the simulated platform."""

from repro.runtime.backend import RuntimeBackend, make_sampler
from repro.runtime.parallel import (
    CancellationToken,
    ProfilingService,
    ProfilingStats,
    ResultStore,
)
from repro.runtime.profiler import GroundTruthRecord, profile_configs, profile_one
from repro.runtime.report import BatchRecord, EpochStats, PerfReport

__all__ = [
    "RuntimeBackend",
    "make_sampler",
    "CancellationToken",
    "GroundTruthRecord",
    "ProfilingService",
    "ProfilingStats",
    "ResultStore",
    "profile_configs",
    "profile_one",
    "BatchRecord",
    "EpochStats",
    "PerfReport",
]
