"""Ground-truth profiler: runs configurations and records what happened.

Fills the role of the PyTorch profiler in the paper's Sec. 4.1: the
performance estimator "is trained on the ground-truth performance covering
the whole design space".  :func:`profile_configs` executes candidates on the
runtime backend and serialises one :class:`GroundTruthRecord` per candidate —
the training set of the gray-box model and the raw data behind Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.settings import TaskSpec, TrainingConfig
from repro.graphs.csr import CSRGraph
from repro.graphs.profiling import GraphProfile, profile_graph
from repro.hardware.specs import Platform, get_platform
from repro.runtime.backend import RuntimeBackend
from repro.runtime.report import PerfReport

__all__ = ["GroundTruthRecord", "profile_configs", "profile_one"]


@dataclass(frozen=True)
class GroundTruthRecord:
    """Measured performance of one (task, config) pair.

    Holds both the final ``Perf(T, Γ, Acc)`` targets and the intermediate
    variables (|V_i|, hit rate, phase times) the gray-box estimator models
    explicitly.
    """

    config: TrainingConfig
    task: TaskSpec
    graph_profile: GraphProfile
    time_s: float
    memory_bytes: float
    accuracy: float
    mean_batch_nodes: float
    mean_batch_edges: float
    hit_rate: float
    t_sample: float
    t_transfer: float
    t_replace: float
    t_compute: float
    num_batches: int

    def features(self, platform: Platform | None = None) -> np.ndarray:
        """Candidate + pre-determined settings encoding (Fig. 4 inputs)."""
        platform = platform or get_platform(self.task.platform)
        return np.concatenate(
            [
                self.config.as_features(),
                self.graph_profile.as_features(),
                np.asarray(platform.as_features(), dtype=np.float64),
            ]
        )


def _record_from_report(
    config: TrainingConfig,
    task: TaskSpec,
    profile: GraphProfile,
    report: PerfReport,
) -> GroundTruthRecord:
    last = report.epochs[-1]
    return GroundTruthRecord(
        config=config,
        task=task,
        graph_profile=profile,
        time_s=report.time_s,
        memory_bytes=float(report.memory.total),
        accuracy=report.accuracy,
        mean_batch_nodes=report.mean_batch_nodes,
        mean_batch_edges=float(np.mean([e.mean_batch_edges for e in report.epochs])),
        hit_rate=report.mean_hit_rate,
        t_sample=last.t_sample / max(last.num_batches, 1),
        t_transfer=last.t_transfer / max(last.num_batches, 1),
        t_replace=last.t_replace / max(last.num_batches, 1),
        t_compute=last.t_compute / max(last.num_batches, 1),
        num_batches=last.num_batches,
    )


def profile_one(
    task: TaskSpec,
    config: TrainingConfig,
    *,
    graph: CSRGraph | None = None,
) -> tuple[GroundTruthRecord, PerfReport]:
    """Execute one candidate and return its record plus the full report."""
    backend = RuntimeBackend(task, config, graph=graph)
    report = backend.train()
    profile = profile_graph(backend.graph)
    return _record_from_report(backend.config, task, profile, report), report


def profile_configs(
    task: TaskSpec,
    configs: list[TrainingConfig],
    *,
    graph: CSRGraph | None = None,
    progress: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
    cancel=None,
    on_progress=None,
) -> list[GroundTruthRecord]:
    """Execute every candidate on the backend (the Fig. 6 protocol).

    Thin wrapper over :class:`~repro.runtime.parallel.ProfilingService`:
    ``workers`` fans the runs out across processes, ``cache_dir`` persists
    results so repeat profiling is free, ``cancel`` (a
    :class:`~repro.runtime.parallel.CancellationToken`) aborts between
    candidate runs, and ``on_progress(runs_done, runs_total, cache_hits)``
    streams per-candidate completion.  Output is identical to the
    one-:func:`profile_one`-per-config serial loop for the same seed.
    """
    from repro.runtime.parallel import ProfilingService

    service = ProfilingService(max_workers=workers, cache_dir=cache_dir)
    return service.profile(
        task,
        configs,
        graph=graph,
        progress=progress,
        cancel=cancel,
        on_progress=on_progress,
    )
