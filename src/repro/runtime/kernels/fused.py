"""Fused spmm + bias + activation kernel.

The GCN/SAGE layer epilogue — ``act(A @ x [+ self_term] [+ bias])`` — costs
three extra full-size intermediates and three tape nodes when composed from
autograd primitives.  This kernel runs the whole chain as **one** tape node:
the spmm output buffer is reused in place for the adds and the ReLU clamp
(legal because it is a fresh allocation that no other node has seen), and a
single backward closure distributes the gradient to ``x``, ``add`` and
``bias`` directly.

Tolerance contract (``docs/kernels.md``): the kernel itself is bit-exact for
the epilogue it fuses, but the layer-level rewrite it enables in
``nn/graphconv.py`` — ``(A @ X) W → A (X W)`` so the bias/activation can fuse
into the aggregation — reassociates float32 sums, so end-to-end parity with
``reference`` is tolerance-bounded, not byte-identical.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, as_tensor
from repro.runtime.kernels.base import SpmmKernel

__all__ = ["FusedKernel"]


class FusedKernel(SpmmKernel):
    """One tape node for ``act(matrix @ x + add + bias)``."""

    name = "fused"
    fuses_epilogue = True

    def _matmul(self, matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        return matrix @ dense

    def spmm_epilogue(
        self,
        matrix: sp.csr_matrix,
        x: Tensor,
        *,
        add: Tensor | None = None,
        bias: Tensor | None = None,
        activation: str | None = None,
        symmetric: bool = False,
        transposed: sp.csr_matrix | None = None,
    ) -> Tensor:
        if activation not in (None, "relu"):
            # elu's backward needs the negative-branch values; not worth
            # fusing for the one GAT path that uses it.
            return super().spmm_epilogue(
                matrix, x, add=add, bias=bias, activation=activation,
                symmetric=symmetric, transposed=transposed,
            )
        x = as_tensor(x)
        out = self._timed_matmul(matrix, x.data)
        out = np.asarray(out)
        if add is not None:
            out += add.data
        if bias is not None:
            out += bias.data
        mask: np.ndarray | None = None
        if activation == "relu":
            mask = out > 0
            out *= mask

        state: dict[str, sp.csr_matrix] = {}
        if symmetric:
            state["T"] = matrix
        elif transposed is not None:
            state["T"] = transposed

        def backward(grad: np.ndarray) -> None:
            if mask is not None:
                grad_pre = grad * mask  # fresh — safe to hand out below
            else:
                grad_pre = grad  # aliases the output node's grad buffer
            if bias is not None:
                bias._accumulate_fresh(grad_pre.sum(axis=0))
            if add is not None:
                if mask is not None:
                    add._accumulate_fresh(grad_pre)
                else:
                    add._accumulate(grad_pre)
            if "T" not in state:
                state["T"] = matrix.T.tocsr()
            x._accumulate_fresh(self._timed_matmul(state["T"], grad_pre))

        parents = tuple(t for t in (x, add, bias) if t is not None)
        return Tensor._make(out, parents, backward)
