"""Thread-parallel row-block SpMM.

scipy's CSR x dense product releases the GIL for the duration of the C loop,
so independent row blocks genuinely run concurrently in a thread pool — no
process fork, no array pickling.  The row space is split into
**nnz-balanced** blocks (``np.searchsorted`` on ``indptr`` at even nnz
targets) rather than equal row counts, so one hub-heavy block cannot
serialise the whole product on power-law graphs.

The per-matrix plan — block boundaries plus the sliced per-block CSR
submatrices — is built once per topology through the base-class plan cache
and reused every epoch, forward and backward alike (the memoised transpose
matrix gets its own plan on first backward).  Each block writes a disjoint
row slice of the preallocated output, so no reduction or locking is needed.

Small products are not worth the dispatch overhead; below
:data:`MIN_PARALLEL_NNZ` (or with a single worker) the kernel falls back to
the serial scipy product, which keeps tiny sampled mini-batches fast.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import scipy.sparse as sp

from repro.runtime.kernels.base import SpmmKernel

__all__ = ["ParallelKernel", "MIN_PARALLEL_NNZ"]

#: below this many stored entries the serial product wins (dispatch overhead)
MIN_PARALLEL_NNZ = 16_384


class ParallelKernel(SpmmKernel):
    """Degree-balanced row-block SpMM over a shared thread pool."""

    name = "parallel"

    def __init__(self, num_workers: int | None = None) -> None:
        if num_workers is None:
            num_workers = min(8, os.cpu_count() or 1)
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ pool
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="spmm"
            )
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------ plan
    def _build_plan(self, matrix: sp.csr_matrix):
        """nnz-balanced ``(row_lo, row_hi, submatrix)`` blocks, or ``None``.

        ``None`` means "run serial": one worker, one usable block, or too
        little work to amortise thread dispatch.
        """
        if self.num_workers < 2 or matrix.nnz < MIN_PARALLEL_NNZ:
            return None
        indptr = matrix.indptr
        n_rows = matrix.shape[0]
        targets = np.linspace(0, matrix.nnz, self.num_workers + 1)
        bounds = np.searchsorted(indptr, targets).astype(np.int64)
        bounds[0], bounds[-1] = 0, n_rows
        np.maximum.accumulate(bounds, out=bounds)
        bounds = np.unique(bounds)
        if bounds.size < 3:  # a single block — nothing to parallelise
            return None
        return [
            (int(lo), int(hi), matrix[lo:hi].tocsr())
            for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
        ]

    # --------------------------------------------------------------- numerics
    def _matmul(self, matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        if dense.ndim != 2:
            return matrix @ dense
        plan = self._plan(matrix, self._build_plan)
        if plan is None:
            return matrix @ dense
        out = np.empty(
            (matrix.shape[0], dense.shape[1]),
            dtype=np.result_type(matrix.dtype, dense.dtype),
        )
        pool = self._ensure_pool()
        futures = [
            (lo, hi, pool.submit(sub.__matmul__, dense)) for lo, hi, sub in plan
        ]
        for lo, hi, fut in futures:
            out[lo:hi] = fut.result()
        return out
