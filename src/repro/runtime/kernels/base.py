"""Kernel base class: the contract every SpMM backend implements.

A :class:`SpmmKernel` owns the *numeric execution* of sparse aggregation —
``matrix @ x`` and its fused epilogue variants — while the autograd wiring
(tape node, backward closure, transpose memoisation) lives here in the base
class and is identical for every kernel.  Subclasses override
:meth:`_matmul` (and optionally :meth:`spmm_epilogue`); they never touch the
tape, which is how the backward contract of
:func:`repro.autograd.sparse.spmm` stays intact across backends
(``docs/kernels.md``).

Two cross-cutting services also live here:

* **per-kernel timing counters** — every forward/backward matmul is timed
  and accumulated into a module-level table read by
  :func:`kernel_counters` (surfaced as ``kernel_spmm_*{kernel=...}``
  gauges on the serving metrics registry and by ``bench_kernels.py``);
* **per-matrix plan caching** — kernels that precompute an execution plan
  (row blocks, permutations) stash it on the matrix object itself via
  :meth:`_plan`, so the plan lives exactly as long as the topology: a
  ``Propagation`` caches its propagation matrices across epochs, hence the
  plan is computed once per topology and a *new* matrix (topology change)
  naturally starts from a clean slate.  An in-place mutation of the CSR
  arrays is caught by the validation token.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, as_tensor

__all__ = ["SpmmKernel", "kernel_counters", "reset_kernel_counters"]

_COUNTER_LOCK = threading.Lock()
_COUNTERS: dict[str, dict[str, float]] = {}  # guarded-by: _COUNTER_LOCK

#: attribute name used to stash per-kernel execution plans on a csr matrix
_PLAN_ATTR = "_repro_kernel_plans"


def kernel_counters() -> dict[str, dict[str, float]]:
    """Snapshot of the per-kernel timing counters.

    ``{kernel_name: {"calls": float, "seconds": float}}`` — ``calls``
    counts individual sparse matmuls (forward and backward alike),
    ``seconds`` their accumulated wall clock.  Names that never ran are
    absent; use ``.get(name, ...)`` when scraping.
    """
    with _COUNTER_LOCK:
        return {name: dict(vals) for name, vals in _COUNTERS.items()}


def reset_kernel_counters() -> None:
    """Zero the timing table (test/bench isolation)."""
    with _COUNTER_LOCK:
        _COUNTERS.clear()


class SpmmKernel:
    """One SpMM execution backend.

    Subclasses set :attr:`name`, override :meth:`_matmul` for the raw
    product, and may override :meth:`spmm_epilogue` when they can fuse the
    bias/activation epilogue (setting :attr:`fuses_epilogue` so model code
    routes the epilogue through them).  ``bit_exact`` declares the parity
    contract the test suite holds the kernel to: byte-identical to the
    scipy reference, or merely tolerance-bounded (``docs/kernels.md``).
    """

    name: str = "abstract"
    #: whether model code may hand this kernel the bias/activation epilogue
    fuses_epilogue: bool = False
    #: parity contract: bit-identical to ``matrix @ x`` vs tolerance-bounded
    bit_exact: bool = False

    # ------------------------------------------------------------- numeric core
    def _matmul(self, matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` — the only method most kernels override."""
        raise NotImplementedError

    def _timed_matmul(self, matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        out = self._matmul(matrix, dense)
        elapsed = time.perf_counter() - start
        with _COUNTER_LOCK:
            slot = _COUNTERS.setdefault(self.name, {"calls": 0.0, "seconds": 0.0})
            slot["calls"] += 1.0
            slot["seconds"] += elapsed
        return out

    # ------------------------------------------------------------- plan caching
    def _plan(self, matrix: sp.csr_matrix, build):
        """Per-(matrix, kernel) plan, computed once per topology.

        ``build(matrix)`` runs on a cache miss.  The plan is stored on the
        matrix object under this kernel's name together with a validation
        token ``(shape, nnz, id(indptr), id(indices))``: a topology change
        means a new matrix object (no stash) or rebound CSR arrays (token
        mismatch), and either way the plan is rebuilt.  Benign race on
        concurrent first use: both threads build the same deterministic
        plan and one write wins.
        """
        token = (matrix.shape, matrix.nnz, id(matrix.indptr), id(matrix.indices))
        plans = getattr(matrix, _PLAN_ATTR, None)
        if plans is None:
            plans = {}
            try:
                setattr(matrix, _PLAN_ATTR, plans)
            except AttributeError:  # exotic matrix type without a __dict__
                return build(matrix)
        cached = plans.get(self.name)
        if cached is not None and cached[0] == token:
            return cached[1]
        plan = build(matrix)
        plans[self.name] = (token, plan)
        return plan

    # ----------------------------------------------------------------- autograd
    def spmm(
        self,
        matrix: sp.csr_matrix,
        x: Tensor,
        *,
        symmetric: bool = False,
        transposed: sp.csr_matrix | None = None,
    ) -> Tensor:
        """``matrix @ x`` through this kernel, with the standard backward.

        Same signature and tape contract as
        :func:`repro.autograd.sparse.spmm`; the backward transpose is the
        matrix itself when ``symmetric``, the supplied ``transposed``
        matrix, or lazily computed and memoised on first backward.
        """
        x = as_tensor(x)
        out = self._timed_matmul(matrix, x.data)
        state: dict[str, sp.csr_matrix] = {}
        if symmetric:
            state["T"] = matrix
        elif transposed is not None:
            state["T"] = transposed

        def backward(grad: np.ndarray) -> None:
            if "T" not in state:
                state["T"] = matrix.T.tocsr()
            x._accumulate_fresh(self._timed_matmul(state["T"], grad))

        return Tensor._make(np.asarray(out), (x,), backward)

    def spmm_epilogue(
        self,
        matrix: sp.csr_matrix,
        x: Tensor,
        *,
        add: Tensor | None = None,
        bias: Tensor | None = None,
        activation: str | None = None,
        symmetric: bool = False,
        transposed: sp.csr_matrix | None = None,
    ) -> Tensor:
        """``act(matrix @ x + add + bias)`` — the GCN/SAGE layer epilogue.

        The base implementation composes ordinary autograd ops (one tape
        node and one intermediate per term), so *every* kernel accepts the
        epilogue call; fusing kernels override it to run the whole chain in
        one tape node without materialised intermediates.
        """
        out = self.spmm(matrix, x, symmetric=symmetric, transposed=transposed)
        if add is not None:
            out = out + add
        if bias is not None:
            out = out + bias
        return _apply_activation(out, activation)

    def close(self) -> None:
        """Release kernel-owned resources (worker pools); idempotent."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _apply_activation(out: Tensor, activation: str | None) -> Tensor:
    from repro.autograd.functional import elu, relu

    if activation is None:
        return out
    if activation == "relu":
        return relu(out)
    if activation == "elu":
        return elu(out)
    raise ValueError(f"unknown epilogue activation {activation!r}")
