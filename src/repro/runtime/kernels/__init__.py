"""Pluggable SpMM kernel backends (``docs/kernels.md``).

Sparse aggregation — the true hot path of every ground-truth training run —
is executed by a :class:`~repro.runtime.kernels.base.SpmmKernel` selected by
name through ``TrainingConfig.kernel`` / ``repro ... --kernel``:

* ``reference`` — seed-era scipy product, the bit-exactness anchor;
* ``fused`` — spmm + bias + activation in one tape node, no intermediates;
* ``parallel`` — nnz-balanced row blocks over a GIL-free thread pool;
* ``reorder`` — degree-renumbered matrix copies for cache locality.

``get_kernel(name)`` returns a shared singleton per name: kernels are
stateless apart from caches and worker pools, and sharing means the
``parallel`` pool and per-matrix plans amortise across every run in a
process.  Third-party kernels register with :func:`register_kernel`; the
static name list mirrored in ``repro.config.settings.KERNEL_NAMES`` (config
cannot import runtime) is consistency-checked by the test suite.
"""

from __future__ import annotations

import threading

from repro.runtime.kernels.base import (
    SpmmKernel,
    kernel_counters,
    reset_kernel_counters,
)
from repro.runtime.kernels.fused import FusedKernel
from repro.runtime.kernels.parallel import ParallelKernel
from repro.runtime.kernels.reference import ReferenceKernel
from repro.runtime.kernels.reorder import ReorderKernel

__all__ = [
    "SpmmKernel",
    "ReferenceKernel",
    "FusedKernel",
    "ParallelKernel",
    "ReorderKernel",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "kernel_counters",
    "reset_kernel_counters",
    "close_kernels",
]

_LOCK = threading.Lock()
_REGISTRY: dict[str, type[SpmmKernel]] = {}  # guarded-by: _LOCK
_INSTANCES: dict[str, SpmmKernel] = {}  # guarded-by: _LOCK


def register_kernel(cls: type[SpmmKernel]) -> type[SpmmKernel]:
    """Register a kernel class under ``cls.name`` (usable as a decorator)."""
    name = cls.name
    if not name or name == SpmmKernel.name:
        raise ValueError("kernel classes must define a concrete `name`")
    with _LOCK:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"kernel {name!r} already registered by {existing!r}")
        _REGISTRY[name] = cls
    return cls


def get_kernel(name: str) -> SpmmKernel:
    """The shared kernel instance for ``name``; raises on unknown names."""
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is None:
            cls = _REGISTRY.get(name)
            if cls is None:
                known = ", ".join(sorted(_REGISTRY))
                raise ValueError(f"unknown kernel {name!r}; known: {known}")
            instance = _INSTANCES[name] = cls()
        return instance


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names, sorted."""
    with _LOCK:
        return tuple(sorted(_REGISTRY))


def close_kernels() -> None:
    """Close every instantiated kernel (worker pools); instances are kept."""
    with _LOCK:
        instances = list(_INSTANCES.values())
    for instance in instances:
        instance.close()


for _cls in (ReferenceKernel, FusedKernel, ParallelKernel, ReorderKernel):
    register_kernel(_cls)
del _cls
