"""The reference kernel: exactly the seed-era scipy product, bit for bit.

Every optimized kernel is judged against this one.  Its forward is the same
``matrix @ dense`` call :func:`repro.autograd.sparse.spmm` has always made,
its backward inherits the base-class wiring that mirrors that function, and
its epilogue is the un-fused autograd composition — so a training run under
``kernel=reference`` produces byte-identical losses to the pre-refactor code
path (asserted by ``tests/test_kernels.py`` and ``bench_kernels.py``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.runtime.kernels.base import SpmmKernel

__all__ = ["ReferenceKernel"]


class ReferenceKernel(SpmmKernel):
    """Plain scipy CSR x dense — the bit-exactness anchor."""

    name = "reference"
    bit_exact = True

    def _matmul(self, matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        return matrix @ dense
