"""Reorder-aware SpMM: vertex permutations finally reach the compute.

``graphs/reorder.py`` has shipped degree and BFS renumberings since the seed,
but until this kernel they only nudged the roofline model's bandwidth scalar
— the actual product ran on the original vertex order.  Here the permutation
is applied *inside* the kernel, per propagation matrix:

1. interpret a square propagation matrix as its own graph (row nnz as
   degrees, stored columns as neighbours — self-loops and float weights are
   irrelevant to ordering);
2. compute ``perm`` with the selected :mod:`repro.graphs.reorder` strategy;
3. cache ``B = matrix[perm][:, perm]`` — rows *and* columns renumbered, so
   consecutive rows touch nearby input rows and cache lines are shared;
4. per product, gather ``x[perm]``, run ``B @ x[perm]`` and scatter the
   result back: ``out[perm] = B @ x[perm]`` is exactly ``matrix @ x`` up to
   float reassociation (column order inside each row changes, so parity with
   ``reference`` is tolerance-bounded — ``docs/kernels.md``).

The permutation and permuted matrix are built once per topology via the
base-class plan cache, so across training epochs the kernel costs two dense
gathers on top of a better-localised product.  Non-square operands (GAT
gather/scatter matrices) and identity-permutation graphs fall back to the
plain product.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.runtime.kernels.base import SpmmKernel

__all__ = ["ReorderKernel"]


class ReorderKernel(SpmmKernel):
    """SpMM on a degree/BFS-renumbered copy of the propagation matrix."""

    name = "reorder"

    def __init__(self, strategy: str = "degree") -> None:
        if strategy not in ("degree", "bfs"):
            raise ValueError(f"unknown reorder strategy {strategy!r}")
        self.strategy = strategy

    # ------------------------------------------------------------------ plan
    def _build_plan(self, matrix: sp.csr_matrix):
        """``(perm, permuted_matrix)`` or ``None`` for the serial fallback."""
        n_rows, n_cols = matrix.shape
        if n_rows != n_cols or n_rows < 2:
            return None
        from repro.graphs.csr import CSRGraph
        from repro.graphs.reorder import bfs_order, degree_order

        graph = CSRGraph(
            indptr=matrix.indptr.astype(np.int64, copy=False),
            indices=matrix.indices.astype(np.int64, copy=False),
            name="kernel-view",
        )
        perm = degree_order(graph) if self.strategy == "degree" else bfs_order(graph)
        if np.array_equal(perm, np.arange(n_rows, dtype=np.int64)):
            return None  # already in the target order
        permuted = matrix[perm][:, perm].tocsr()
        return perm, permuted

    # --------------------------------------------------------------- numerics
    def _matmul(self, matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
        plan = self._plan(matrix, self._build_plan)
        if plan is None:
            return matrix @ dense
        perm, permuted = plan
        out = np.empty(
            (matrix.shape[0],) + dense.shape[1:],
            dtype=np.result_type(matrix.dtype, dense.dtype),
        )
        out[perm] = permuted @ dense[perm]
        return out
