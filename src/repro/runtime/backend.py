"""The reconfigurable runtime backend (paper Sec. 3.2, Fig. 3).

:class:`RuntimeBackend` executes Algorithm 1 — sample on host, transfer over
the link, update the device cache, compute on device — for any
:class:`~repro.config.settings.TrainingConfig`.  GNN computation runs for
real (numpy autograd), producing genuine losses and accuracies; time and
memory are charged by the analytic platform model driven by the *measured*
per-batch quantities (subgraph sizes, cache hits), per the substitution rule
in DESIGN.md.

The backend is where the four optimization categories meet:

* sampling — the sampler factory (Cat. 1) honours ``sampler``/``hop_list``/
  ``bias_rate``; biased samplers re-read the cache's hot set every batch,
  which is the sampling↔transmission coupling 2PGraph exploits;
* transmission — the :class:`~repro.hardware.cache.DeviceCache` (Cat. 2);
* model design — ``build_model`` (Cat. 3);
* computation — graph reordering tweaks the effective device bandwidth
  (Cat. 4) through the roofline model, and ``config.kernel`` selects the
  SpMM execution backend (``repro.runtime.kernels``) that actually runs
  the aggregation — the analytic charge is kernel-independent, but the
  *measured* host wall clock is not (``bench_kernels.py``).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.functional import nll_loss
from repro.autograd.tensor import Tensor, no_grad
from repro.config.settings import TaskSpec, TrainingConfig
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset, train_val_test_split
from repro.graphs.partition import bfs_partition, cache_priority_order
from repro.graphs.reorder import locality_score, reorder_graph
from repro.hardware.cache import DeviceCache
from repro.hardware.costmodel import model_costing, t_compute, t_replace, t_sample, t_transfer
from repro.hardware.memory import MemoryBreakdown, gamma_cache, gamma_model, gamma_runtime
from repro.hardware.specs import Platform, get_platform
from repro.nn.graphconv import Propagation
from repro.nn.metrics import accuracy
from repro.nn.models import build_model
from repro.nn.optim import Adam
from repro.runtime.kernels import get_kernel
from repro.runtime.report import BatchRecord, EpochStats, PerfReport
from repro.sampling.base import Sampler
from repro.sampling.batching import BatchIterator
from repro.sampling.biased import BiasedNeighborSampler
from repro.sampling.cluster import ClusterSampler
from repro.sampling.layerwise import LayerSampler
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.saint import SaintSampler

__all__ = ["RuntimeBackend", "make_sampler"]

#: fallback hot-set size when a biased sampler runs without a cache
_DEGREE_HOT_FRACTION = 0.2


def _safe_mean(values: list) -> float:
    """Mean that degrades to 0.0 on an empty list instead of NaN+warning."""
    return float(np.mean(values)) if values else 0.0


def make_sampler(
    config: TrainingConfig, graph: CSRGraph, cache: DeviceCache | None
) -> Sampler:
    """Instantiate the sampler a configuration asks for (Fig. 3 Cat. 1).

    ``fastgcn`` derives its per-layer budgets from Eq. 3
    (``Δ_l = k_l · |B0|``, capped at half the graph); ``saint`` uses a walk
    length of twice the hop count, the paper's "many more hops, fanout 1"
    reading of subgraph sampling.
    """
    if config.sampler == "sage":
        return NeighborSampler(list(config.hop_list))
    if config.sampler == "fastgcn":
        cap = max(graph.num_nodes // 2, 1)
        sizes = [min(k * config.batch_size, cap) for k in config.hop_list]
        return LayerSampler(sizes)
    if config.sampler == "saint":
        return SaintSampler(walk_length=2 * len(config.hop_list))
    if config.sampler == "cluster":
        # Partition count scales with batch size so each batch covers a few
        # partitions: |V| / |B0| regions of roughly batch-size vertices.
        parts = max(2, graph.num_nodes // max(config.batch_size, 1))
        return ClusterSampler(min(parts, 64), parts_per_batch=len(config.hop_list))
    if config.sampler == "biased":
        if cache is not None and cache.capacity > 0:
            hot = cache.hot_nodes()
        else:  # no cache to chase: prefer hub vertices (degree locality)
            count = max(1, int(_DEGREE_HOT_FRACTION * graph.num_nodes))
            hot = cache_priority_order(graph)[:count]
        return BiasedNeighborSampler(
            list(config.hop_list), bias_rate=config.bias_rate, hot_nodes=hot
        )
    raise ConfigError(f"unknown sampler {config.sampler!r}")


class RuntimeBackend:
    """Executes one training task under one configuration."""

    def __init__(
        self,
        task: TaskSpec,
        config: TrainingConfig,
        *,
        graph: CSRGraph | None = None,
        platform: Platform | None = None,
    ) -> None:
        self.task = task
        self.config = config.canonical()
        self.platform = platform or get_platform(task.platform)
        graph = graph if graph is not None else load_dataset(task.dataset)
        if graph.features is None or graph.labels is None:
            raise ConfigError("runtime backend needs a featured, labelled graph")

        # Cat. 4: computation — reordering improves aggregation locality,
        # which the roofline model converts into effective bandwidth, and
        # the selected kernel executes the actual SpMM products.
        self.kernel = get_kernel(self.config.kernel)
        self.graph = reorder_graph(graph, self.config.reorder)
        self._bandwidth_scale = 0.7 + 0.3 * locality_score(self.graph)

        self.train_nodes, self.val_nodes, self.test_nodes = train_val_test_split(
            self.graph.num_nodes,
            train_frac=task.train_frac,
            val_frac=task.val_frac,
            seed=task.seed,
        )

        # Cat. 2: transmission — device cache sized by the cache ratio.
        capacity = int(self.config.cache_ratio * self.graph.num_nodes)
        self.cache = DeviceCache(
            self.graph.num_nodes,
            capacity,
            policy=self.config.cache_policy if capacity else "none",
            priority=cache_priority_order(self.graph),
        )

        # Cat. 1: sampling — sampler + batch schedule.
        self.sampler = make_sampler(self.config, self.graph, self.cache)
        partition = None
        if self.config.batch_order == "partition":
            parts = max(2, self.graph.num_nodes // max(self.config.batch_size, 1))
            partition = bfs_partition(self.graph, min(parts, 64), seed=task.seed)
        self.batches = BatchIterator(
            self.train_nodes,
            self.config.batch_size,
            order=self.config.batch_order,
            partition=partition,
            seed=task.seed,
        )

        # Cat. 3: model design.
        self.model = build_model(
            task.arch,
            self.graph.feature_dim,
            self.graph.num_classes,
            hidden_channels=self.config.hidden_channels,
            num_layers=self.config.num_layers,
            heads=self.config.heads,
            dropout_p=self.config.dropout,
            seed=task.seed,
        )
        self.optimizer = Adam(self.model.parameters(), lr=task.lr)
        self._rng = np.random.default_rng(task.seed + 7)
        self._features = self.graph.features
        self._full_prop = Propagation.from_graph(self.graph, kernel=self.kernel)
        self._train_mask = np.zeros(self.graph.num_nodes, dtype=bool)
        self._train_mask[self.train_nodes] = True
        self._peak_runtime_bytes = 0.0

    # ------------------------------------------------------------- mechanics
    def _train_step(self, batch) -> float:
        """One real forward/backward/optimize step on the sampled subgraph."""
        sub = batch.subgraph
        x = Tensor(self._features[batch.nodes])
        prop = Propagation.from_graph(sub, kernel=self.kernel)
        self.model.train()
        self.optimizer.zero_grad()
        out = self.model(x, prop)
        # Subgraph samplers (GraphSAINT) mark every subgraph vertex as a loss
        # target; restrict to training vertices so val/test labels never leak.
        target_index = batch.target_index
        target_index = target_index[self._train_mask[batch.nodes[target_index]]]
        if target_index.size == 0:
            return float("nan")
        targets = self.graph.labels[batch.nodes[target_index]]
        loss = nll_loss(out[target_index], targets)
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def _charge_batch(self, batch, admitted: int, evicted: int, missed: int, loss: float) -> BatchRecord:
        """Apply the Eq. 5-8 cost functions to measured batch quantities."""
        costing = model_costing(
            self.task.arch,
            batch.num_nodes,
            batch.num_edges,
            in_dim=self.graph.feature_dim,
            hidden_dim=self.config.hidden_channels,
            out_dim=self.graph.num_classes,
            num_layers=self.config.num_layers,
            heads=self.config.heads,
        )
        # Reordering raises effective bandwidth => shrinks memory-bound time.
        scaled = type(costing)(
            flops=costing.flops,
            bytes_moved=costing.bytes_moved / self._bandwidth_scale,
            kernel_launches=costing.kernel_launches,
        )
        record = BatchRecord(
            num_targets=batch.num_targets,
            num_nodes=batch.num_nodes,
            num_edges=batch.num_edges,
            num_missed=missed,
            num_admitted=admitted,
            num_evicted=evicted,
            t_sample=t_sample(
                batch.num_nodes - batch.num_targets,
                self.platform,
                edges_touched=batch.num_edges,
            ),
            t_transfer=t_transfer(missed, self.graph.feature_dim, self.platform),
            t_replace=t_replace(
                admitted, evicted, self.graph.feature_dim, self.platform
            ),
            t_compute=t_compute(scaled, self.platform),
            loss=loss,
        )
        runtime_bytes = gamma_runtime(
            batch.num_nodes,
            batch.num_edges,
            n_attr=self.graph.feature_dim,
            hidden_dim=self.config.hidden_channels,
            out_dim=self.graph.num_classes,
            num_layers=self.config.num_layers,
            heads=self.config.heads,
            attention=self.task.arch == "gat",
        )
        self._peak_runtime_bytes = max(self._peak_runtime_bytes, runtime_bytes)
        return record

    def run_epoch(self, epoch: int) -> tuple[EpochStats, list[BatchRecord]]:
        """Algorithm 1, lines 1-10, over one epoch of mini-batches."""
        records: list[BatchRecord] = []
        for target_batch in self.batches.epoch():
            # 2PGraph coupling: biased samplers chase the *current* cache.
            if isinstance(self.sampler, BiasedNeighborSampler) and self.cache.capacity:
                self.sampler.set_hot_nodes(self.cache.hot_nodes())
            batch = self.sampler.sample(self.graph, target_batch, rng=self._rng)

            hit_mask = self.cache.lookup(batch.nodes)
            missed = int((~hit_mask).sum())
            admitted, evicted = self.cache.update(batch.nodes[~hit_mask])

            loss = self._train_step(batch)
            records.append(self._charge_batch(batch, admitted, evicted, missed, loss))

        val_acc = self.evaluate(self.val_nodes)
        # Batches without training targets report a NaN loss (nothing was
        # optimised); exclude them so one such batch cannot poison the
        # epoch loss — and with it the estimator's ground truth.  The
        # guarded means also keep an empty epoch (no train batches at all)
        # from emitting RuntimeWarnings and NaN stats.
        losses = [r.loss for r in records if not np.isnan(r.loss)]
        stats = EpochStats(
            epoch=epoch,
            time_s=float(sum(r.time for r in records)),
            t_sample=float(sum(r.t_sample for r in records)),
            t_transfer=float(sum(r.t_transfer for r in records)),
            t_replace=float(sum(r.t_replace for r in records)),
            t_compute=float(sum(r.t_compute for r in records)),
            mean_batch_nodes=_safe_mean([r.num_nodes for r in records]),
            mean_batch_edges=_safe_mean([r.num_edges for r in records]),
            hit_rate=_safe_mean([r.hit_rate for r in records]),
            loss=_safe_mean(losses),
            val_accuracy=val_acc,
            num_batches=len(records),
        )
        return stats, records

    def evaluate(self, nodes: np.ndarray) -> float:
        """Full-graph inference accuracy on a node subset (no grad)."""
        if nodes.size == 0:
            return 0.0
        self.model.eval()
        with no_grad():
            out = self.model(Tensor(self._features), self._full_prop)
        return accuracy(out.numpy()[nodes], self.graph.labels[nodes])

    def memory_breakdown(self) -> MemoryBreakdown:
        """Eq. 9: Γ_model + Γ_cache + Γ_runtime (runtime peak so far)."""
        return MemoryBreakdown(
            model=gamma_model(
                self.model.num_parameters(),
                optimizer_state_factor=self.optimizer.state_factor,
            ),
            cache=gamma_cache(self.cache.capacity, self.graph.feature_dim),
            runtime=self._peak_runtime_bytes,
        )

    def train(self, *, keep_batch_records: bool = False) -> PerfReport:
        """Full training run returning ``Perf(T, Γ, Acc)``."""
        epochs: list[EpochStats] = []
        batches: list[BatchRecord] = []
        for epoch in range(self.task.epochs):
            stats, records = self.run_epoch(epoch)
            epochs.append(stats)
            if keep_batch_records:
                batches.extend(records)
        test_acc = self.evaluate(self.test_nodes)
        return PerfReport(
            time_s=float(np.mean([e.time_s for e in epochs])),
            memory=self.memory_breakdown(),
            accuracy=test_acc,
            epochs=epochs,
            batches=batches,
            config_summary=self.config.describe(),
            task_summary=f"{self.task.dataset}+{self.task.arch}@{self.platform.name}",
        )
