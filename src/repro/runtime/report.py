"""Performance reports: ``Perf(T, Γ, Acc)`` and per-batch profiling records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.memory import MemoryBreakdown

__all__ = ["BatchRecord", "EpochStats", "PerfReport"]


@dataclass(frozen=True)
class BatchRecord:
    """Measured quantities of one mini-batch iteration.

    These are the intermediate variables of Eqs. 5-8; the profiler feeds them
    to the estimator as ground truth.
    """

    num_targets: int
    num_nodes: int  # |V_i|
    num_edges: int  # |E_i|
    num_missed: int  # |V_i| * (1 - hit)
    num_admitted: int
    num_evicted: int
    t_sample: float
    t_transfer: float
    t_replace: float
    t_compute: float
    loss: float

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.num_missed / self.num_nodes if self.num_nodes else 0.0

    @property
    def time(self) -> float:
        """Eq. 4 for this batch: overlapped host/device pipelines."""
        return max(self.t_sample + self.t_transfer, self.t_replace + self.t_compute)


@dataclass
class EpochStats:
    """Aggregated statistics of one training epoch."""

    epoch: int
    time_s: float
    t_sample: float
    t_transfer: float
    t_replace: float
    t_compute: float
    mean_batch_nodes: float
    mean_batch_edges: float
    hit_rate: float
    loss: float
    val_accuracy: float
    num_batches: int


@dataclass
class PerfReport:
    """End-to-end training performance — what GNNavigator optimises.

    ``time_s`` is the mean epoch time ``T``; ``memory`` the peak device
    footprint ``Γ``; ``accuracy`` the final test accuracy ``Acc``.
    """

    time_s: float
    memory: MemoryBreakdown
    accuracy: float
    epochs: list[EpochStats] = field(default_factory=list)
    batches: list[BatchRecord] = field(default_factory=list)
    config_summary: str = ""
    task_summary: str = ""

    @property
    def memory_gib(self) -> float:
        return self.memory.total_gib

    @property
    def total_time_s(self) -> float:
        return float(sum(e.time_s for e in self.epochs))

    @property
    def mean_hit_rate(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.hit_rate for e in self.epochs]))

    @property
    def mean_batch_nodes(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.mean_batch_nodes for e in self.epochs]))

    def objective_vector(self) -> np.ndarray:
        """(T, Γ, -Acc) — all minimised; used by Pareto utilities."""
        return np.array(
            [self.time_s, self.memory.total, -self.accuracy], dtype=np.float64
        )

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"T={self.time_s * 1e3:.2f} ms/epoch  "
            f"Γ={self.memory.total / 1024**2:.1f} MiB  "
            f"Acc={self.accuracy * 100:.2f}%  "
            f"hit={self.mean_hit_rate * 100:.0f}%"
        )

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds of training until validation accuracy reached
        ``target`` — the systems community's time-to-accuracy metric.

        Returns ``None`` when the run never reached the target.  Epoch
        granularity: the full epoch in which the target was first met is
        charged.
        """
        elapsed = 0.0
        for stats in self.epochs:
            elapsed += stats.time_s
            if stats.val_accuracy >= target:
                return elapsed
        return None
