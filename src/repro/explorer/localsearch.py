"""Local-search exploration: an alternative to exhaustive DFS.

The paper formulates automation as a DSE problem "inspired by
BOOM-Explorer" and solves it with estimator-guided DFS.  For larger spaces
exhaustive enumeration stops being free even with a cheap estimator, so this
module adds the classic alternative: multi-restart hill climbing over the
design space's one-knob neighbourhood graph, scalarised per explore target.
The ablation bench compares its Pareto front quality (hypervolume) and
estimator-call count against the DFS explorer.
"""

from __future__ import annotations

import numpy as np

from repro.config.settings import TrainingConfig
from repro.config.space import DesignSpace
from repro.errors import ExplorationError
from repro.estimator.graybox import GrayBoxEstimator, PredictedPerf
from repro.explorer.constraints import RuntimeConstraint
from repro.explorer.dfs import ExplorationResult
from repro.explorer.objectives import ExploreTarget, normalize_objectives
from repro.graphs.profiling import GraphProfile
from repro.hardware.specs import Platform

__all__ = ["LocalSearchExplorer"]


class LocalSearchExplorer:
    """Multi-restart hill climbing guided by the gray-box estimator."""

    def __init__(
        self,
        space: DesignSpace,
        estimator: GrayBoxEstimator,
        profile: GraphProfile,
        platform: Platform,
        *,
        restarts: int = 8,
        max_steps: int = 24,
        seed: int = 0,
    ) -> None:
        if restarts < 1 or max_steps < 1:
            raise ExplorationError("restarts and max_steps must be positive")
        self.space = space
        self.estimator = estimator
        self.profile = profile
        self.platform = platform
        self.restarts = restarts
        self.max_steps = max_steps
        self._rng = np.random.default_rng(seed)
        self.estimator_calls = 0

    # ------------------------------------------------------------------ core
    def _predict(self, configs: list[TrainingConfig]) -> list[PredictedPerf]:
        self.estimator_calls += len(configs)
        return self.estimator.predict(
            configs, [self.profile] * len(configs), self.platform
        )

    def _scores(
        self,
        preds: list[PredictedPerf],
        target: ExploreTarget,
        constraint: RuntimeConstraint,
    ) -> np.ndarray:
        objs = np.stack([p.objective_vector() for p in preds])
        scores = target.score(normalize_objectives(objs))
        feasible = np.array(
            [constraint.satisfied_by(p, slack=0.25) for p in preds]
        )
        return np.where(feasible, scores, np.inf)

    def explore(
        self,
        targets: list[ExploreTarget],
        *,
        constraint: RuntimeConstraint | None = None,
    ) -> ExplorationResult:
        """Hill-climb per target from random starts; pool every visited point.

        The pooled visits form the candidate set; the caller applies Pareto
        filtering / decision making exactly as with the DFS explorer.
        """
        constraint = constraint or RuntimeConstraint()
        visited: dict[TrainingConfig, PredictedPerf] = {}

        for target in targets:
            for _ in range(self.restarts):
                current = self.space.sample(1, rng=self._rng)[0]
                if current not in visited:
                    visited[current] = self._predict([current])[0]
                current_score = self._scores(
                    [visited[current]], target, constraint
                )[0]
                for _ in range(self.max_steps):
                    neighbors = self.space.neighbors(current)
                    fresh = [n for n in neighbors if n not in visited]
                    if fresh:
                        for cfg, pred in zip(fresh, self._predict(fresh), strict=True):
                            visited[cfg] = pred
                    preds = [visited[n] for n in neighbors]
                    scores = self._scores(preds, target, constraint)
                    best = int(np.argmin(scores))
                    if scores[best] >= current_score:
                        break  # local optimum for this target
                    current = neighbors[best]
                    current_score = scores[best]

        feasible = {
            cfg: pred
            for cfg, pred in visited.items()
            if constraint.satisfied_by(pred, slack=0.25)
        }
        if not feasible:
            raise ExplorationError(
                f"local search found no feasible candidate ({constraint.describe()})"
            )
        configs = list(feasible)
        return ExplorationResult(
            candidates=configs,
            predictions=[feasible[c] for c in configs],
            visited_leaves=len(visited),
            evaluated=len(visited),
            stats={"estimator_calls": self.estimator_calls},
        )
