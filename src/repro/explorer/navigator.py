"""The GNNavigator facade: Steps 1-3 of Fig. 2 end to end.

Given a task (dataset + model + platform + requirements):

1. **Input analysis** — profile the graph, resolve the platform, gather the
   pre-determined settings.
2. **Automatic guideline generation** — profile a sample of the design space
   on the runtime backend to fit the gray-box estimator (the paper trains on
   ground truth "covering the whole design space"; the sample size is the
   budget knob), then run the constraint-pruned DFS and the decision maker.
3. **Training** — apply a guideline on the reconfigurable backend and return
   the measured ``Perf(T, Γ, Acc)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.settings import TaskSpec, TrainingConfig
from repro.config.space import DesignSpace, default_space
from repro.config.templates import TEMPLATES
from repro.errors import ExplorationError
from repro.estimator.graybox import GrayBoxEstimator
from repro.explorer.constraints import RuntimeConstraint
from repro.explorer.decision import DecisionMaker, Guideline
from repro.explorer.dfs import DFSExplorer, ExplorationResult
from repro.explorer.objectives import PRIORITY_PRESETS, ExploreTarget, get_target
from repro.graphs.csr import CSRGraph
from repro.graphs.datasets import load_dataset
from repro.graphs.profiling import GraphProfile, profile_graph
from repro.hardware.specs import Platform, get_platform
from repro.runtime.backend import RuntimeBackend
from repro.runtime.profiler import GroundTruthRecord, profile_configs
from repro.runtime.report import PerfReport

__all__ = ["GNNavigator", "NavigatorReport"]


@dataclass
class NavigatorReport:
    """Everything one navigation run produced."""

    task: TaskSpec
    guidelines: dict[str, Guideline]
    exploration: ExplorationResult
    num_ground_truth: int
    profile: GraphProfile = None
    extras: dict = field(default_factory=dict)


class GNNavigator:
    """Adaptive GNN training-configuration optimisation (the paper's system)."""

    def __init__(
        self,
        task: TaskSpec,
        *,
        space: DesignSpace | None = None,
        graph: CSRGraph | None = None,
        profile_budget: int = 48,
        profile_epochs: int = 4,
        seed: int = 0,
        workers: int | None = None,
        cache_dir: str | None = None,
        profiler=None,
        cancel=None,
        progress=None,
        transfer=None,
    ) -> None:
        if profile_budget < 8:
            raise ExplorationError("profile_budget must be at least 8")
        self.task = task
        self.space = space or default_space()
        self.graph = graph if graph is not None else load_dataset(task.dataset)
        self.platform: Platform = get_platform(task.platform)
        self.profile: GraphProfile = profile_graph(self.graph)
        self.profile_budget = profile_budget
        self.profile_epochs = profile_epochs
        self.seed = seed
        self.workers = workers
        self.cache_dir = cache_dir
        #: optional profiling delegate with a ``ProfilingService``-shaped
        #: ``profile(task, configs, graph=)`` — the serving layer injects a
        #: server-held shared service here so Step 2 rides the multi-tenant
        #: cache instead of a private one.
        self.profiler = profiler
        #: optional :class:`~repro.runtime.parallel.CancellationToken`
        #: checked at phase transitions and threaded into Step-2 profiling,
        #: where it is polled between candidate training runs — the serving
        #: layer's cooperative RUNNING-job cancellation rides this seat.
        self.cancel = cancel
        #: optional progress sink ``progress(phase, **fields)``, threaded
        #: alongside ``cancel``: phase transitions and per-candidate Step-2
        #: profiling completions are reported through it — the serving
        #: layer's live job-event streaming rides this seat.
        self.progress = progress
        #: optional :class:`~repro.transfer.warmstart.TransferContext`-shaped
        #: delegate (``plan(task, profile, full_budget=)``).  When it yields a
        #: plan, Step 2 pre-ranks its candidate sample with a donor-fitted
        #: estimator, profiles only the plan's shrunken budget, and fits the
        #: final estimator on target records (weight 1) plus similarity-
        #: weighted donor records.  ``None`` — or a plan of ``None`` — keeps
        #: this navigator bit-identical to one built without the seat.
        self.transfer = transfer
        self.transfer_plan = None
        self.estimator: GrayBoxEstimator | None = None
        self.records: list[GroundTruthRecord] = []

    def _checkpoint(self) -> None:
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()

    def _emit(self, phase: str, **fields) -> None:
        if self.progress is not None:
            self.progress(phase, **fields)

    # ------------------------------------------------------------ step 2a/2b
    def fit_estimator(
        self,
        records: list[GroundTruthRecord] | None = None,
        *,
        workers: int | None = None,
        cache_dir: str | None = None,
    ) -> GrayBoxEstimator:
        """Fit the gray-box estimator (profiling a design-space sample if
        no pre-collected ground truth is supplied).

        ``workers`` fans the profiling runs out across processes and
        ``cache_dir`` persists them via the profiling service; both default
        to the navigator-level settings.
        """
        self._checkpoint()
        if records is None:
            rng = np.random.default_rng(self.seed)
            sample = self.space.sample(self.profile_budget, rng=rng)
            if self.transfer is not None:
                self.transfer_plan = self.transfer.plan(
                    self.task, self.profile, full_budget=self.profile_budget
                )
            if self.transfer_plan is not None:
                plan = self.transfer_plan
                sample = plan.select(self.task, self.profile, sample, seed=self.seed)
                self._emit(
                    "profiling",
                    message=(
                        f"warm start: {len(plan.donors)} donor task(s), "
                        f"{len(plan.records)} records, "
                        f"budget {plan.full_budget}->{plan.budget}"
                    ),
                )
            # Always include the baseline templates so the estimator sees the
            # regions the initial set starts from.  (They double as the
            # transfer anchor configs, so the warm path measures them too.)
            sample.extend(TEMPLATES.values())
            profile_task = TaskSpec(
                dataset=self.task.dataset,
                arch=self.task.arch,
                platform=self.task.platform,
                epochs=self.profile_epochs,
                lr=self.task.lr,
                seed=self.task.seed,
                train_frac=self.task.train_frac,
                val_frac=self.task.val_frac,
            )
            if self.progress is None:
                on_progress = None
            else:
                # Both profiling front-ends report once immediately (the
                # cache-scan state), so no separate phase-entry event is
                # needed here.
                def on_progress(done, total, hits):
                    self._emit(
                        "profiling",
                        batch_index=done,
                        runs_done=done,
                        runs_total=total,
                        cache_hits=hits,
                    )

            if self.profiler is not None:
                # Optional seats are passed only when occupied so duck-typed
                # profiler stand-ins without these kwargs keep working.
                kwargs = {} if self.cancel is None else {"cancel": self.cancel}
                if on_progress is not None:
                    kwargs["on_progress"] = on_progress
                records = self.profiler.profile(
                    profile_task, sample, graph=self.graph, **kwargs
                )
            else:
                records = profile_configs(
                    profile_task,
                    sample,
                    graph=self.graph,
                    workers=workers if workers is not None else self.workers,
                    cache_dir=cache_dir if cache_dir is not None else self.cache_dir,
                    cancel=self.cancel,
                    on_progress=on_progress,
                )
        self.records = list(records)
        self.estimator = GrayBoxEstimator(
            train_frac=self.task.train_frac, random_state=self.seed
        )
        if self.transfer_plan is not None:
            # Target records lead (the estimator reads the arch off the first
            # record) at unit weight; donors follow, similarity-decayed.
            donor_records = list(self.transfer_plan.records)
            weights = np.concatenate(
                [
                    np.ones(len(self.records)),
                    np.asarray(self.transfer_plan.weights, dtype=np.float64),
                ]
            )
            self.estimator.fit(self.records + donor_records, sample_weight=weights)
        else:
            self.estimator.fit(self.records)
        return self.estimator

    def explore(
        self,
        *,
        constraint: RuntimeConstraint | None = None,
        priorities: list[str] | None = None,
        prune: bool = True,
    ) -> NavigatorReport:
        """Step 2: DFS exploration + decision making for each priority."""
        if self.estimator is None:
            self.fit_estimator()
        self._checkpoint()
        self._emit("exploring")
        explorer = DFSExplorer(self.space, self.estimator, self.profile, self.platform)
        result = explorer.explore(
            constraint=constraint,
            prune=prune,
            initial_candidates=list(TEMPLATES.values()),
        )
        decision = DecisionMaker(result)
        targets: list[ExploreTarget] = [
            get_target(p) for p in (priorities or sorted(PRIORITY_PRESETS))
        ]
        guidelines = decision.choose_all(targets)
        self._emit(
            "explored",
            best_objective=guidelines[targets[0].name].score,
            message=f"{result.evaluated} candidates evaluated",
        )
        report = NavigatorReport(
            task=self.task,
            guidelines=guidelines,
            exploration=result,
            num_ground_truth=len(self.records),
            profile=self.profile,
        )
        if self.transfer_plan is not None:
            report.extras["transfer"] = self.transfer_plan.summary()
        return report

    # ---------------------------------------------------------------- step 3
    def apply(self, guideline: Guideline | TrainingConfig) -> PerfReport:
        """Train with a guideline on the runtime backend; measured Perf."""
        self._checkpoint()
        self._emit("training")
        config = (
            guideline.config if isinstance(guideline, Guideline) else guideline
        )
        backend = RuntimeBackend(self.task, config, graph=self.graph)
        return backend.train()

    def navigate(
        self,
        *,
        constraint: RuntimeConstraint | None = None,
        priority: str = "balance",
    ) -> tuple[Guideline, PerfReport]:
        """One-call convenience: explore then train the chosen guideline."""
        report = self.explore(constraint=constraint, priorities=[priority])
        guideline = report.guidelines[get_target(priority).name]
        return guideline, self.apply(guideline)
