"""Decision maker: Pareto filtering + priority-weighted guideline choice.

Fig. 4, box 4: candidates surviving exploration are reduced to the Pareto
front, normalised, and scalarised with the user's priority weights; the best
scorer becomes the training guideline for that priority.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.settings import TrainingConfig
from repro.errors import ExplorationError
from repro.estimator.graybox import PredictedPerf
from repro.explorer.dfs import ExplorationResult
from repro.explorer.objectives import ExploreTarget, normalize_objectives
from repro.explorer.pareto import pareto_front_indices

__all__ = ["Guideline", "DecisionMaker"]


@dataclass(frozen=True)
class Guideline:
    """A recommended training configuration with its predicted performance."""

    priority: str
    config: TrainingConfig
    predicted: PredictedPerf
    score: float
    front_size: int

    def describe(self) -> str:
        return (
            f"[{self.priority}] {self.config.describe()} | "
            f"T~{self.predicted.time_s * 1e3:.2f}ms "
            f"Γ~{self.predicted.memory_bytes / 1024**2:.1f}MiB "
            f"Acc~{self.predicted.accuracy * 100:.1f}%"
        )


class DecisionMaker:
    """Chooses guidelines from an :class:`ExplorationResult`."""

    def __init__(self, result: ExplorationResult) -> None:
        if not result.candidates:
            raise ExplorationError("decision maker received no candidates")
        self.result = result
        self._objectives = result.objectives()
        self._front = pareto_front_indices(self._objectives)

    @property
    def front_indices(self) -> np.ndarray:
        """Indices of Pareto-optimal candidates (into result.candidates)."""
        return self._front

    def front(self) -> list[tuple[TrainingConfig, PredictedPerf]]:
        """Pareto-optimal (config, prediction) pairs."""
        return [
            (self.result.candidates[i], self.result.predictions[i])
            for i in self._front
        ]

    def choose(
        self, target: ExploreTarget, *, accuracy_drop: float | None = None
    ) -> Guideline:
        """Pick the front candidate minimising the target's scalarisation.

        ``accuracy_drop`` bounds how far below the front's best predicted
        accuracy the winner may fall — the paper's "comparable accuracy"
        behaviour (Table 1: Bal matches baselines, Ex-TM concedes ~3%).
        Falls back to the full front if the floor empties it.
        """
        if self._front.size == 0:
            raise ExplorationError("empty Pareto front")
        front = self._front
        if accuracy_drop is not None:
            accs = -self._objectives[front, 2]
            floor = accs.max() - accuracy_drop
            kept = front[accs >= floor]
            if kept.size:
                front = kept
        front_objs = self._objectives[front]
        scores = target.score(normalize_objectives(front_objs))
        winner = front[int(np.argmin(scores))]
        return Guideline(
            priority=target.name,
            config=self.result.candidates[winner],
            predicted=self.result.predictions[winner],
            score=float(scores.min()),
            front_size=int(front.size),
        )

    #: how much predicted accuracy each priority may concede off the front's
    #: best (paper Table 1: Bal/Ex-MA stay comparable, Ex-TM drops ~3%).
    DEFAULT_ACCURACY_DROPS = {
        "balance": 0.03,
        "ex_tm": 0.08,
        "ex_ma": 0.02,
        "ex_ta": 0.04,
    }

    def choose_all(
        self,
        targets: list[ExploreTarget],
        *,
        accuracy_drops: dict[str, float] | None = None,
    ) -> dict[str, Guideline]:
        """Guidelines for several priorities at once."""
        drops = dict(self.DEFAULT_ACCURACY_DROPS)
        if accuracy_drops:
            drops.update(accuracy_drops)
        return {
            t.name: self.choose(t, accuracy_drop=drops.get(t.name))
            for t in targets
        }
