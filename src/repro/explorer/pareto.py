"""Pareto-front utilities over minimisation objective vectors (T, Γ, -Acc)."""

from __future__ import annotations

import numpy as np

from repro.errors import ExplorationError

__all__ = ["dominates", "pareto_mask", "pareto_front_indices", "hypervolume_2d"]


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (all objectives minimised).

    O(n^2) pairwise check — design spaces here are thousands of points at
    most, and clarity beats a divide-and-conquer front here.
    """
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    n = objectives.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        le = np.all(objectives <= objectives[i], axis=1)
        lt = np.any(objectives < objectives[i], axis=1)
        dominated_by = le & lt
        dominated_by[i] = False
        if np.any(dominated_by & mask):
            mask[i] = False
    return mask


def pareto_front_indices(objectives: np.ndarray) -> np.ndarray:
    """Indices of the Pareto-optimal rows, sorted by the first objective."""
    mask = pareto_mask(objectives)
    idx = np.nonzero(mask)[0]
    if idx.size == 0:
        return idx
    order = np.argsort(np.atleast_2d(objectives)[idx, 0], kind="stable")
    return idx[order]


def hypervolume_2d(
    objectives: np.ndarray, reference: np.ndarray
) -> float:
    """Dominated hypervolume of a 2-D front w.r.t. a reference point.

    Both objectives minimised; points beyond the reference contribute
    nothing.  Used by the exploration-quality ablation bench.
    """
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    reference = np.asarray(reference, dtype=np.float64)
    if objectives.shape[1] != 2 or reference.shape != (2,):
        raise ExplorationError("hypervolume_2d expects 2-D objectives")
    pts = objectives[pareto_mask(objectives)]
    pts = pts[np.all(pts <= reference, axis=1)]
    if pts.size == 0:
        return 0.0
    pts = pts[np.argsort(pts[:, 0])]
    volume = 0.0
    prev_x = reference[0]
    # Sweep right-to-left: each point adds a rectangle up to the previous x.
    for x, y in pts[::-1]:
        volume += (prev_x - x) * (reference[1] - y)
        prev_x = x
    return float(volume)
