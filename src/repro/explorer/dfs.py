"""Depth-first design-space exploration with constraint pruning (Sec. 3.3).

The explorer walks the design space's knobs in order (the space *is* the
search tree), consulting the performance estimator instead of executing
candidates.  At each internal node it estimates an *optimistic completion* —
the partial assignment finished with the per-knob values that individually
minimise time and memory and maximise accuracy (pre-computed by sensitivity
probing) — and prunes the subtree when even that optimist violates a runtime
constraint.  Leaves surviving the walk are batch-estimated and returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config.settings import TrainingConfig
from repro.config.space import DesignSpace
from repro.errors import ExplorationError
from repro.estimator.graybox import GrayBoxEstimator, PredictedPerf
from repro.explorer.constraints import RuntimeConstraint
from repro.graphs.profiling import GraphProfile
from repro.hardware.specs import Platform

__all__ = ["ExplorationResult", "DFSExplorer"]

#: relative slack on subtree cuts: generous, because the optimistic
#: completion is interaction-blind and a wrong cut loses whole subtrees.
_PRUNE_SLACK = 0.6
#: relative slack on the final per-candidate feasibility filter.
_FILTER_SLACK = 0.25
#: prune only when at most this many knobs remain unassigned: the optimistic
#: completion is probed knob-by-knob, so its bound is trustworthy near the
#: leaves but loose near the root, where a wrong cut removes thousands of
#: candidates at once.
_PRUNE_MAX_REMAINING = 3


@dataclass
class ExplorationResult:
    """All surviving candidates with their estimated performance."""

    candidates: list[TrainingConfig]
    predictions: list[PredictedPerf]
    visited_leaves: int = 0
    pruned_subtrees: int = 0
    evaluated: int = 0
    stats: dict = field(default_factory=dict)

    def objectives(self) -> np.ndarray:
        """Stacked (T, Γ, -Acc) rows for Pareto analysis."""
        if not self.predictions:
            return np.zeros((0, 3))
        return np.stack([p.objective_vector() for p in self.predictions])


class DFSExplorer:
    """Estimator-guided DFS over a :class:`DesignSpace`."""

    def __init__(
        self,
        space: DesignSpace,
        estimator: GrayBoxEstimator,
        profile: GraphProfile,
        platform: Platform,
    ) -> None:
        self.space = space
        self.estimator = estimator
        self.profile = profile
        self.platform = platform
        self._optimistic_values: dict[str, dict[str, object]] | None = None

    # ----------------------------------------------------- optimistic bounds
    def _probe_optimistic_values(self) -> dict[str, dict[str, object]]:
        """Per-knob values that individually minimise each metric.

        One-at-a-time sensitivity probe around the *centre of the space*
        (median domain value per knob) — probing around an out-of-space base
        config would rank knob values in contexts the search never visits.
        The result completes partial assignments optimistically during
        pruning.
        """
        if self._optimistic_values is not None:
            return self._optimistic_values
        centre = {
            knob: values[len(values) // 2]
            for knob, values in self.space.domains.items()
        }
        best: dict[str, dict[str, object]] = {"time": {}, "memory": {}, "accuracy": {}}
        for knob, values in self.space.domains.items():
            candidates = [
                self.space.build({**centre, knob: v}) for v in values
            ]
            preds = self.estimator.predict(
                candidates, [self.profile] * len(candidates), self.platform
            )
            times = np.array([p.time_s for p in preds])
            mems = np.array([p.memory_bytes for p in preds])
            accs = np.array([p.accuracy for p in preds])
            best["time"][knob] = values[int(np.argmin(times))]
            best["memory"][knob] = values[int(np.argmin(mems))]
            best["accuracy"][knob] = values[int(np.argmax(accs))]
        self._optimistic_values = best
        return best

    def _optimistic_perf(
        self, assignment: dict[str, object], remaining: list[str]
    ) -> PredictedPerf:
        """Estimate the best completion of a partial assignment per metric."""
        best = self._probe_optimistic_values()
        configs = []
        for metric in ("time", "memory", "accuracy"):
            completion = dict(assignment)
            for knob in remaining:
                completion[knob] = best[metric][knob]
            configs.append(self.space.build(completion))
        preds = self.estimator.predict(
            configs, [self.profile] * len(configs), self.platform
        )
        # Combine the per-metric optima into one (infeasible in itself,
        # but a valid optimistic bound for pruning).
        return PredictedPerf(
            time_s=preds[0].time_s,
            memory_bytes=preds[1].memory_bytes,
            accuracy=preds[2].accuracy,
        )

    # ------------------------------------------------------------- main walk
    def explore(
        self,
        *,
        constraint: RuntimeConstraint | None = None,
        prune: bool = True,
        initial_candidates: list[TrainingConfig] | None = None,
    ) -> ExplorationResult:
        """Run the DFS and estimate every surviving candidate.

        ``initial_candidates`` (e.g. the templates of existing systems) are
        always evaluated, guaranteeing GNNavigator never does worse than a
        reproducible baseline — the paper's "initial set" of Fig. 4.
        """
        constraint = constraint or RuntimeConstraint()
        knobs = self.space.knobs
        survivors: list[TrainingConfig] = []
        seen: set[TrainingConfig] = set()
        pruned = 0
        visited = 0

        def recurse(level: int, assignment: dict) -> None:
            nonlocal pruned, visited
            remaining = len(knobs) - level
            if (
                prune
                and not constraint.is_unbounded()
                and 0 < remaining <= _PRUNE_MAX_REMAINING
            ):
                optimist = self._optimistic_perf(assignment, knobs[level:])
                if not constraint.satisfied_by(optimist, slack=_PRUNE_SLACK):
                    pruned += 1
                    return
            if level == len(knobs):
                visited += 1
                candidate = self.space.build(assignment)
                if candidate not in seen:
                    seen.add(candidate)
                    survivors.append(candidate)
                return
            knob = knobs[level]
            for value in self.space.domains[knob]:
                assignment[knob] = value
                recurse(level + 1, assignment)
            del assignment[knob]

        recurse(0, {})

        for extra in initial_candidates or []:
            canonical = extra.canonical()
            if canonical not in seen:
                seen.add(canonical)
                survivors.append(canonical)

        if not survivors:
            raise ExplorationError(
                f"no candidate satisfies the constraints ({constraint.describe()})"
            )
        predictions = self.estimator.predict(
            survivors, [self.profile] * len(survivors), self.platform
        )
        # Final feasibility filter on the leaf estimates themselves.
        keep = [
            i
            for i, p in enumerate(predictions)
            if constraint.satisfied_by(p, slack=_FILTER_SLACK)
        ]
        if not keep:
            raise ExplorationError(
                f"all candidates violate the constraints ({constraint.describe()})"
            )
        return ExplorationResult(
            candidates=[survivors[i] for i in keep],
            predictions=[predictions[i] for i in keep],
            visited_leaves=visited,
            pruned_subtrees=pruned,
            evaluated=len(survivors),
            stats={"feasible": len(keep)},
        )
