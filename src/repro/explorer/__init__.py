"""Design-space exploration: objectives, constraints, Pareto, DFS, navigator."""

from repro.explorer.constraints import RuntimeConstraint
from repro.explorer.decision import DecisionMaker, Guideline
from repro.explorer.dfs import DFSExplorer, ExplorationResult
from repro.explorer.localsearch import LocalSearchExplorer
from repro.explorer.navigator import GNNavigator, NavigatorReport
from repro.explorer.objectives import (
    PRIORITY_PRESETS,
    ExploreTarget,
    get_target,
    normalize_objectives,
)
from repro.explorer.pareto import (
    dominates,
    hypervolume_2d,
    pareto_front_indices,
    pareto_mask,
)

__all__ = [
    "RuntimeConstraint",
    "DecisionMaker",
    "Guideline",
    "DFSExplorer",
    "ExplorationResult",
    "LocalSearchExplorer",
    "GNNavigator",
    "NavigatorReport",
    "ExploreTarget",
    "PRIORITY_PRESETS",
    "get_target",
    "normalize_objectives",
    "dominates",
    "pareto_mask",
    "pareto_front_indices",
    "hypervolume_2d",
]
