"""Runtime constraints: hard application limits the explorer must honour.

Constraints come from the deployment scenario (device memory budget, epoch
deadline, minimum acceptable accuracy — Fig. 4 "Runtime Constraints").  The
DFS explorer prunes subtrees whose *optimistic* completion already violates a
constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExplorationError
from repro.estimator.graybox import PredictedPerf

__all__ = ["RuntimeConstraint"]


@dataclass(frozen=True)
class RuntimeConstraint:
    """Feasibility box over ``Perf(T, Γ, Acc)``; ``None`` disables a bound."""

    max_time_s: float | None = None
    max_memory_bytes: float | None = None
    min_accuracy: float | None = None

    def __post_init__(self) -> None:
        if self.max_time_s is not None and self.max_time_s <= 0:
            raise ExplorationError("max_time_s must be positive")
        if self.max_memory_bytes is not None and self.max_memory_bytes <= 0:
            raise ExplorationError("max_memory_bytes must be positive")
        if self.min_accuracy is not None and not 0.0 <= self.min_accuracy <= 1.0:
            raise ExplorationError("min_accuracy must lie in [0, 1]")

    def is_unbounded(self) -> bool:
        return (
            self.max_time_s is None
            and self.max_memory_bytes is None
            and self.min_accuracy is None
        )

    def satisfied_by(self, perf: PredictedPerf, *, slack: float = 0.0) -> bool:
        """Whether a (predicted or measured) performance is feasible.

        ``slack`` relaxes each bound by a relative margin — the explorer uses
        a small slack when pruning on *estimates* so estimator error does not
        discard feasible regions.
        """
        if self.max_time_s is not None:
            if perf.time_s > self.max_time_s * (1.0 + slack):
                return False
        if self.max_memory_bytes is not None:
            if perf.memory_bytes > self.max_memory_bytes * (1.0 + slack):
                return False
        if self.min_accuracy is not None:
            if perf.accuracy < self.min_accuracy * (1.0 - slack):
                return False
        return True

    def describe(self) -> str:
        parts: list[str] = []
        if self.max_time_s is not None:
            parts.append(f"T<={self.max_time_s * 1e3:.1f}ms")
        if self.max_memory_bytes is not None:
            parts.append(f"Mem<={self.max_memory_bytes / 1024**2:.0f}MiB")
        if self.min_accuracy is not None:
            parts.append(f"Acc>={self.min_accuracy * 100:.1f}%")
        return " ".join(parts) if parts else "unconstrained"
