"""Explore targets: the user's performance priorities (Fig. 2/Fig. 4 inputs).

The paper reports four priority modes in Table 1: Bal (balance all three
metrics) and the extremes Ex-TM (time+memory), Ex-MA (memory+accuracy),
Ex-TA (time+accuracy).  An :class:`ExploreTarget` is a weight vector over
``(T, Γ, Acc)`` used to scalarise normalised objective vectors when the
decision maker picks from the Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExplorationError

__all__ = ["ExploreTarget", "PRIORITY_PRESETS", "get_target", "normalize_objectives"]


@dataclass(frozen=True)
class ExploreTarget:
    """Weights over (time, memory, accuracy); larger = cares more."""

    name: str
    w_time: float
    w_memory: float
    w_accuracy: float

    def __post_init__(self) -> None:
        if min(self.w_time, self.w_memory, self.w_accuracy) < 0:
            raise ExplorationError("weights must be non-negative")
        if self.w_time + self.w_memory + self.w_accuracy <= 0:
            raise ExplorationError("at least one weight must be positive")

    def weights(self) -> np.ndarray:
        w = np.array(
            [self.w_time, self.w_memory, self.w_accuracy], dtype=np.float64
        )
        return w / w.sum()

    def score(self, normalized: np.ndarray) -> np.ndarray:
        """Weighted scalarisation of normalised (rows = candidates) objectives.

        ``normalized`` columns are (T, Γ, -Acc) scaled to [0, 1]; lower is
        better for every column, so lower scores win.
        """
        normalized = np.atleast_2d(np.asarray(normalized, dtype=np.float64))
        if normalized.shape[1] != 3:
            raise ExplorationError("objective vectors must have three columns")
        return normalized @ self.weights()


# The extreme modes keep a small weight on the de-prioritised metric so the
# decision maker breaks ties sensibly instead of ignoring it entirely.
PRIORITY_PRESETS: dict[str, ExploreTarget] = {
    "balance": ExploreTarget("balance", 1.0, 1.0, 1.0),
    "ex_tm": ExploreTarget("ex_tm", 1.0, 1.0, 0.15),
    "ex_ma": ExploreTarget("ex_ma", 0.15, 1.0, 1.0),
    "ex_ta": ExploreTarget("ex_ta", 1.0, 0.15, 1.0),
}


def get_target(name: str) -> ExploreTarget:
    """Look up a priority preset by name."""
    key = name.lower().replace("-", "_")
    if key not in PRIORITY_PRESETS:
        raise ExplorationError(
            f"unknown priority {name!r}; known: {sorted(PRIORITY_PRESETS)}"
        )
    return PRIORITY_PRESETS[key]


def normalize_objectives(objectives: np.ndarray) -> np.ndarray:
    """Min-max normalise objective rows (T, Γ, -Acc) to [0, 1] per column."""
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    lo = objectives.min(axis=0)
    hi = objectives.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (objectives - lo) / span
