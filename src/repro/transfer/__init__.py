"""Cross-task estimator transfer: warm-start navigation from the corpus.

The shared :class:`~repro.runtime.parallel.ResultStore` accumulates
ground-truth runs across tenants, tasks and the fleet; this package turns
it into a *transfer source* so the deployment gets cheaper the more traffic
it serves:

``fingerprint``  task identity (graph stats + arch/platform gates),
                 persisted as a store metadata sidecar per record;
``corpus``       an index over the store with similarity search behind one
                 :class:`TaskSimilarity` interface;
``warmstart``    similarity-decayed donor records fed into
                 ``GrayBoxEstimator.fit(sample_weight=)``;
``prerank``      corpus-guided candidate pre-ranking that shrinks the
                 Step-2 profiling budget as coverage grows.

Submodules are resolved lazily (PEP 562): the runtime store imports
``transfer.fingerprint`` while ``transfer.corpus`` imports the runtime
store, so an eager package import would be circular.
"""

from __future__ import annotations

__all__ = [
    "FINGERPRINT_VERSION",
    "TaskFingerprint",
    "task_fingerprint",
    "record_fingerprint",
    "TransferPolicy",
    "TaskSimilarity",
    "FeatureSpaceSimilarity",
    "AnchorRankSimilarity",
    "TransferCorpus",
    "TransferContext",
    "WarmStartPlan",
    "donor_weights",
]

_EXPORTS = {
    "FINGERPRINT_VERSION": "repro.transfer.fingerprint",
    "TaskFingerprint": "repro.transfer.fingerprint",
    "task_fingerprint": "repro.transfer.fingerprint",
    "record_fingerprint": "repro.transfer.fingerprint",
    "TransferPolicy": "repro.transfer.policy",
    "TaskSimilarity": "repro.transfer.corpus",
    "FeatureSpaceSimilarity": "repro.transfer.corpus",
    "AnchorRankSimilarity": "repro.transfer.corpus",
    "TransferCorpus": "repro.transfer.corpus",
    "TransferContext": "repro.transfer.warmstart",
    "WarmStartPlan": "repro.transfer.warmstart",
    "donor_weights": "repro.transfer.warmstart",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.transfer' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
