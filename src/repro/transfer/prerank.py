"""Corpus-guided candidate pre-ranking for the shrunken profiling budget.

Cold navigation profiles a uniform random sample of the config space.  With
a :class:`~repro.transfer.warmstart.WarmStartPlan` in hand we can do better:
fit a *donor-only* estimator (similarity-weighted), predict every candidate
in the pool, and spend the shrunken budget where it teaches the most — the
AutoHEnsGNN recipe of a cheap proxy ranking gating the expensive full runs.

Selection is **stratified**, not top-k: the target estimator needs ground
truth across the whole objective range, so we pick evenly-spaced candidates
along the donor-predicted objective ordering.  Top-k would cluster the
budget at the (donor-)optimal corner and starve the model of contrast.

Any failure — donor records too degenerate to fit, prediction blow-ups —
falls back to the pool's natural prefix, which is exactly what the cold
path would have profiled first.
"""

from __future__ import annotations

import numpy as np

from repro.estimator.graybox import GrayBoxEstimator

__all__ = ["select_candidates"]


def _stratified_indices(order: np.ndarray, budget: int) -> np.ndarray:
    """``budget`` evenly-spaced positions along ``order`` (dedup, backfill)."""
    n = len(order)
    picks = np.unique(np.linspace(0, n - 1, num=budget).round().astype(int))
    chosen = list(order[picks])
    if len(chosen) < budget:  # rounding collisions on tiny pools
        taken = set(chosen)
        chosen.extend(i for i in order if i not in taken)
        chosen = chosen[:budget]
    return np.array(chosen, dtype=int)


def select_candidates(plan, task, profile, pool, *, budget: int, seed: int = 0):
    """Pick ``budget`` configs from ``pool`` worth measuring, donor-guided.

    Returns a new list (never mutates ``pool``).  ``budget >= len(pool)``
    or any donor-model failure returns the pool prefix — the cold choice.
    """
    pool = list(pool)
    if budget >= len(pool):
        return pool
    try:
        estimator = GrayBoxEstimator(
            train_frac=task.train_frac, random_state=seed
        )
        estimator.fit(
            list(plan.records), sample_weight=np.asarray(plan.weights)
        )
        preds = estimator.predict(pool, [profile] * len(pool), task.platform)
        objectives = np.stack([p.objective_vector() for p in preds])
        lo = objectives.min(axis=0)
        span = objectives.max(axis=0) - lo
        span[span == 0.0] = 1.0
        score = ((objectives - lo) / span).mean(axis=1)
        order = np.argsort(score, kind="stable")
        picks = _stratified_indices(order, budget)
        return [pool[i] for i in picks]
    except Exception:
        return pool[:budget]
