"""Warm-start planning: turn corpus neighbours into weighted donor records.

A :class:`TransferContext` owns a :class:`~repro.transfer.corpus.TransferCorpus`
plus a default :class:`~repro.transfer.policy.TransferPolicy`, and produces a
:class:`WarmStartPlan` per navigation: which donor task families to borrow
from, their records, the similarity-decayed sample weight of each record,
and the shrunken Step-2 profiling budget those records pay for.

The plan is advisory — the navigator decides what to do with it — and a
``None`` plan means "run cold": the corpus is empty, too dissimilar, or
transfer is disabled.  That degenerate path is contractually bit-identical
to a navigator built without transfer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.profiler import GroundTruthRecord
from repro.transfer.corpus import TransferCorpus, get_similarity
from repro.transfer.fingerprint import TaskFingerprint, task_fingerprint
from repro.transfer.policy import TransferPolicy

__all__ = ["donor_weights", "WarmStartPlan", "TransferContext"]


def donor_weights(similarities: np.ndarray, *, decay: float) -> np.ndarray:
    """Per-record sample weights ``similarity ** decay``.

    Monotone in similarity for any positive decay, so a more similar donor
    never counts less than a less similar one; higher decay concentrates
    trust on near-twins.
    """
    if decay <= 0.0:
        raise ValueError("decay must be positive")
    sims = np.asarray(similarities, dtype=np.float64)
    if sims.size and (sims.min() < 0.0 or sims.max() > 1.0):
        raise ValueError("similarities must lie in [0, 1]")
    return sims**decay


@dataclass(frozen=True)
class WarmStartPlan:
    """Everything one navigation needs to start warm.

    ``records``/``weights`` align element-wise and feed straight into
    ``GrayBoxEstimator.fit(..., sample_weight=)`` behind the target task's
    own unit-weight measurements.  ``budget`` is the corpus-shrunk number
    of ground-truth runs Step 2 should still pay for (``runs_saved`` =
    what the cold run would have spent minus that).
    """

    fingerprint: TaskFingerprint
    donors: tuple[dict, ...]
    records: tuple[GroundTruthRecord, ...] = field(repr=False)
    weights: np.ndarray = field(repr=False)
    coverage: float
    full_budget: int
    budget: int

    @property
    def runs_saved(self) -> int:
        return self.full_budget - self.budget

    def select(self, task, profile, pool, *, seed: int = 0):
        """Pre-rank ``pool`` with a donor-fitted estimator; see ``prerank``."""
        from repro.transfer.prerank import select_candidates

        return select_candidates(
            self, task, profile, pool, budget=self.budget, seed=seed
        )

    def summary(self) -> dict:
        """JSON-friendly digest for report extras / progress messages."""
        return {
            "fingerprint_id": self.fingerprint.fingerprint_id,
            "donors": list(self.donors),
            "donor_records": len(self.records),
            "coverage": round(self.coverage, 4),
            "full_budget": self.full_budget,
            "budget": self.budget,
            "runs_saved": self.runs_saved,
        }


class TransferContext:
    """Corpus + policy pair handed to navigators and the serving layer.

    Stateless between calls apart from the corpus index, so one context is
    safe to share across concurrent jobs; per-request policy overrides go
    through :meth:`with_policy`, which shares the underlying corpus.
    """

    #: donor records below this total cannot fit the estimator (its fit
    #: minimum) and force a cold fallback.
    MIN_DONOR_RECORDS = 8

    def __init__(
        self,
        corpus: TransferCorpus,
        policy: TransferPolicy | None = None,
        metrics=None,
    ) -> None:
        self.corpus = corpus
        self.policy = policy or TransferPolicy()
        self.metrics = metrics

    def with_policy(self, policy: TransferPolicy | None) -> "TransferContext":
        """Same corpus and metrics under a per-request policy override."""
        if policy is None:
            return self
        return TransferContext(self.corpus, policy=policy, metrics=self.metrics)

    def _inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    def plan(self, task, profile, *, full_budget: int) -> WarmStartPlan | None:
        """Build a warm-start plan for ``task``, or ``None`` to run cold.

        Refreshes the corpus (cheap: sidecar reads only), ranks compatible
        donor families under the policy's similarity metric, and — given
        enough donor records to fit an estimator — shrinks the profiling
        budget in proportion to how much of it the donors plausibly cover:
        ``coverage = min(1, Σ sim_i · min(1, n_i / full_budget))``.
        """
        if not self.policy.enabled:
            return None
        self.corpus.refresh()
        fingerprint = task_fingerprint(task, profile)
        donors = self.corpus.similar(
            fingerprint,
            similarity=get_similarity(self.policy.similarity),
            min_similarity=self.policy.min_similarity,
            max_donors=self.policy.max_donors,
            max_donor_records=self.policy.max_donor_records,
        )
        records: list[GroundTruthRecord] = []
        sims: list[float] = []
        infos: list[dict] = []
        coverage = 0.0
        for entry, sim, donor_records in donors:
            records.extend(donor_records)
            sims.extend([sim] * len(donor_records))
            coverage += sim * min(1.0, len(donor_records) / max(full_budget, 1))
            infos.append(
                {
                    "fingerprint_id": entry.fingerprint_id,
                    "dataset": entry.fingerprint.dataset,
                    "similarity": round(sim, 4),
                    "records": len(donor_records),
                }
            )
        if len(records) < self.MIN_DONOR_RECORDS:
            self._inc("transfer_cold_fallbacks")
            return None
        coverage = min(1.0, coverage)
        budget = int(round(full_budget * (1.0 - self.policy.max_shrink * coverage)))
        budget = min(full_budget, max(self.policy.min_budget, budget))
        plan = WarmStartPlan(
            fingerprint=fingerprint,
            donors=tuple(infos),
            records=tuple(records),
            weights=donor_weights(np.array(sims), decay=self.policy.decay),
            coverage=coverage,
            full_budget=full_budget,
            budget=budget,
        )
        self._inc("transfer_warm_starts")
        self._inc("transfer_donor_records", len(plan.records))
        self._inc("transfer_runs_saved", plan.runs_saved)
        return plan
