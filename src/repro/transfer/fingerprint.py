"""Task fingerprints: the identity a ground-truth record transfers under.

*Design Space for GNNs* (PAPERS.md) shows that design rankings transfer
across tasks when the tasks are close under a task-similarity metric.  The
fingerprint is our side of that bargain: a small, versioned summary of
everything that shapes a record's measurements — the graph statistics the
estimator already consumes (:class:`~repro.graphs.profiling.GraphProfile`)
plus the pre-determined task settings (architecture, platform) that gate
whether records are comparable at all.

Fingerprints are persisted next to every stored record (the
:class:`~repro.runtime.parallel.ResultStore` metadata sidecar), so the
transfer corpus can group and rank donor tasks without loading a single
record payload.  This module deliberately imports nothing from the runtime
layer — it sits below the store in the import graph.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FINGERPRINT_VERSION",
    "TaskFingerprint",
    "task_fingerprint",
    "record_fingerprint",
]

#: bump when the fingerprint layout or feature semantics change; sidecars
#: carrying an older version are treated as absent and re-derived from the
#: record they describe.
FINGERPRINT_VERSION = 1

#: graph-statistics fields copied from :class:`GraphProfile`, in the order
#: they appear in :meth:`TaskFingerprint.as_features`.
_PROFILE_FIELDS = (
    "num_nodes",
    "num_edges",
    "feature_dim",
    "num_classes",
    "avg_degree",
    "max_degree",
    "degree_std",
    "degree_skew",
    "powerlaw_exponent",
    "homophily",
    "separability",
)


@dataclass(frozen=True)
class TaskFingerprint:
    """What a profiling task *is*, for transfer purposes.

    ``arch`` and ``platform`` are hard comparability gates (an estimator is
    fitted per architecture and times are platform-scaled); the graph
    statistics feed the soft similarity metrics.  ``dataset`` is carried for
    reporting only — two datasets with identical statistics are identical
    donors.
    """

    dataset: str
    arch: str
    platform: str
    num_nodes: int
    num_edges: int
    feature_dim: int
    num_classes: int
    avg_degree: float
    max_degree: int
    degree_std: float
    degree_skew: float
    powerlaw_exponent: float
    homophily: float
    separability: float
    version: int = FINGERPRINT_VERSION

    @property
    def fingerprint_id(self) -> str:
        """Stable content hash grouping records of one task family.

        ``dataset`` stays out on purpose: the id keys on what the estimator
        can actually see (stats + comparability gates), so a renamed dataset
        with identical statistics lands in the same donor group.
        """
        payload = {
            "version": self.version,
            "arch": self.arch,
            "platform": self.platform,
            **{f: _json_safe(getattr(self, f)) for f in _PROFILE_FIELDS},
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def compatible(self, other: "TaskFingerprint") -> bool:
        """Hard transfer gate: records only mix within one arch/platform."""
        return self.arch == other.arch and self.platform == other.platform

    def as_features(self) -> np.ndarray:
        """Similarity-space encoding: counts log-scaled, moments raw.

        Non-finite statistics (an infinite power-law exponent on a
        degenerate degree sequence) are clamped so distances stay finite.
        """
        raw = np.array(
            [
                np.log1p(float(self.num_nodes)),
                np.log1p(float(self.num_edges)),
                np.log1p(float(self.feature_dim)),
                float(self.num_classes),
                self.avg_degree,
                np.log1p(float(self.max_degree)),
                self.degree_std,
                self.degree_skew,
                self.powerlaw_exponent,
                self.homophily,
                self.separability,
            ],
            dtype=np.float64,
        )
        return np.nan_to_num(raw, nan=0.0, posinf=1e3, neginf=-1e3)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly encoding (the sidecar payload)."""
        out = dataclasses.asdict(self)
        return {k: _json_safe(v) for k, v in out.items()}

    @classmethod
    def from_dict(cls, data: dict) -> "TaskFingerprint":
        """Inverse of :meth:`to_dict`; raises on layout drift."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fingerprint keys: {sorted(unknown)}")
        payload = dict(data)
        for f, value in payload.items():
            # Undo the _json_safe string encoding of non-finite floats.
            if f not in ("dataset", "arch", "platform") and isinstance(value, str):
                payload[f] = float(value)
        return cls(**payload)


def _json_safe(value):
    """Encode non-finite floats as strings json round-trips portably.

    ``json.dumps`` would emit the non-standard ``Infinity`` literal; string
    forms survive any strict JSON parser a sidecar might meet.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf' / '-inf' / 'nan' — float() parses all
    return value


def _quantize(value):
    """Round float statistics to 9 significant digits.

    The same graph profiled through different code paths (in-process vs a
    store round-trip vs a worker process) can differ in the last ulp of its
    derived moments; hashing raw floats would split one task into several
    fingerprint families over that noise.  Nine digits is far below any
    statistically meaningful difference and far above accumulation jitter.
    """
    if isinstance(value, float) and math.isfinite(value):
        return float(f"{value:.9g}")
    return value


def task_fingerprint(task, profile) -> TaskFingerprint:
    """Fingerprint of one ``(task, graph profile)`` pair.

    ``task`` needs ``dataset``/``arch``/``platform`` attributes and
    ``profile`` the :class:`GraphProfile` statistics fields — duck-typed so
    this module stays import-free of the config/runtime layers.
    """
    return TaskFingerprint(
        dataset=task.dataset,
        arch=task.arch,
        platform=task.platform,
        **{f: _quantize(getattr(profile, f)) for f in _PROFILE_FIELDS},
    )


def record_fingerprint(record) -> TaskFingerprint:
    """Fingerprint derived from a stored ground-truth record itself.

    Everything the fingerprint needs rides on the record (``task`` +
    ``graph_profile``), which is what lets the store write the sidecar on
    *every* commit path — local pool, scheduler, fleet — without any caller
    plumbing.
    """
    return task_fingerprint(record.task, record.graph_profile)
