"""Transfer tuning knobs, serializable for the wire protocol.

A :class:`TransferPolicy` rides per-request on
:class:`~repro.serving.types.NavigationRequest` (``transfer_policy``) and
server-wide as the :class:`~repro.transfer.warmstart.TransferContext`
default.  Keeping it a frozen dataclass with strict ``from_dict`` mirrors
the rest of the request vocabulary: a typo in a job file fails at submit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["TransferPolicy", "SIMILARITY_NAMES"]

#: registered TaskSimilarity implementations (see transfer/corpus.py).
SIMILARITY_NAMES = ("feature", "anchor")


@dataclass(frozen=True)
class TransferPolicy:
    """How aggressively one navigation may lean on the corpus.

    ``similarity`` names the :class:`TaskSimilarity` metric; donors scoring
    below ``min_similarity`` are ignored.  ``decay`` shapes the donor sample
    weights (``similarity ** decay`` — higher decay trusts only near-twins).
    ``max_shrink`` caps how much of the Step-2 profiling budget corpus
    coverage may replace, and ``min_budget`` is the floor the target task
    always measures itself (the estimator minimum).
    """

    enabled: bool = True
    similarity: str = "feature"
    min_similarity: float = 0.35
    max_donors: int = 4
    max_donor_records: int = 64
    decay: float = 2.0
    min_budget: int = 8
    max_shrink: float = 0.5

    def __post_init__(self) -> None:
        if self.similarity not in SIMILARITY_NAMES:
            raise ValueError(
                f"unknown similarity {self.similarity!r}; "
                f"known: {list(SIMILARITY_NAMES)}"
            )
        if not 0.0 <= self.min_similarity <= 1.0:
            raise ValueError("min_similarity must lie in [0, 1]")
        if self.max_donors < 1:
            raise ValueError("max_donors must be at least 1")
        if self.max_donor_records < 8:
            raise ValueError("max_donor_records must cover the estimator minimum (8)")
        if self.decay <= 0.0:
            raise ValueError("decay must be positive")
        if self.min_budget < 8:
            raise ValueError("min_budget must be at least 8 (estimator minimum)")
        if not 0.0 <= self.max_shrink < 1.0:
            raise ValueError("max_shrink must lie in [0, 1)")

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-friendly encoding (the request spec's ``transfer_policy``)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TransferPolicy":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown transfer policy keys: {sorted(unknown)}")
        return cls(**data)
