"""The transfer corpus: a queryable cross-task index over the result store.

The :class:`~repro.runtime.parallel.ResultStore` holds one JSON record per
measured candidate plus a fingerprint sidecar per record; the corpus folds
those sidecars into an in-memory index grouped by task family
(``fingerprint_id``) and answers *"which stored tasks resemble this one?"*
through a :class:`TaskSimilarity` metric.

Two metrics ship, both behind the same interface:

* :class:`FeatureSpaceSimilarity` — distance in fingerprint feature space
  (graph statistics).  Always answerable, even for a task the corpus has
  never seen.
* :class:`AnchorRankSimilarity` — Spearman rank correlation of measured
  time over shared *anchor configs* (the baseline templates every
  navigation profiles), the *Design Space for GNNs* recipe.  It needs the
  query task's own anchor measurements, so it only refines the ranking for
  returning tasks and falls back to feature space otherwise.

Locking: ``_lock`` guards only the in-memory index dict.  All store I/O —
the directory scan, sidecar reads, record loads — happens outside it, so
the corpus lock is a leaf in the lock-order graph (no edge into the
store's own lock).
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass

import numpy as np

from repro.config.templates import TEMPLATES
from repro.runtime.parallel import ResultStore
from repro.runtime.profiler import GroundTruthRecord
from repro.transfer.fingerprint import TaskFingerprint

__all__ = [
    "CorpusTask",
    "TaskSimilarity",
    "FeatureSpaceSimilarity",
    "AnchorRankSimilarity",
    "get_similarity",
    "TransferCorpus",
]


@dataclass(frozen=True)
class CorpusTask:
    """One task family the corpus knows: its fingerprint and record keys."""

    fingerprint: TaskFingerprint
    keys: tuple[str, ...]

    @property
    def fingerprint_id(self) -> str:
        return self.fingerprint.fingerprint_id

    @property
    def num_records(self) -> int:
        return len(self.keys)


# ---------------------------------------------------------------- similarity
class TaskSimilarity(abc.ABC):
    """Scores how transferable one stored task's records are to a query.

    Implementations return a score in ``[0, 1]`` (1 = same task).  They may
    consult the query task's *own* stored records (``query_records``) when
    the corpus has seen it before; a brand-new task passes an empty list.
    """

    name = "base"

    @abc.abstractmethod
    def score(
        self,
        query: TaskFingerprint,
        donor: TaskFingerprint,
        *,
        query_records: list[GroundTruthRecord],
        donor_records: list[GroundTruthRecord],
    ) -> float:
        """Similarity of ``donor`` to ``query`` in ``[0, 1]``."""


class FeatureSpaceSimilarity(TaskSimilarity):
    """Distance in fingerprint feature space mapped to ``exp(-k * d)``.

    ``d`` is the mean relative per-feature difference, so graphs ten times
    larger are far, and statistically-identical graphs of any name score 1.
    """

    name = "feature"

    def __init__(self, *, sharpness: float = 4.0) -> None:
        if sharpness <= 0:
            raise ValueError("sharpness must be positive")
        self.sharpness = sharpness

    def score(
        self,
        query: TaskFingerprint,
        donor: TaskFingerprint,
        *,
        query_records: list[GroundTruthRecord],
        donor_records: list[GroundTruthRecord],
    ) -> float:
        a, b = query.as_features(), donor.as_features()
        rel = np.abs(a - b) / (1.0 + 0.5 * (np.abs(a) + np.abs(b)))
        return float(np.exp(-self.sharpness * float(rel.mean())))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Fractional ranks: ties share their average rank.

    Naive argsort-of-argsort ranks break ties by position, which makes a
    constant vector look perfectly ordered — and a donor whose anchor times
    are all equal would then correlate perfectly with anything.  Average
    ranks leave a constant vector with zero rank variance instead, which the
    caller treats as "no signal".
    """
    uniq, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    starts = np.cumsum(counts) - counts
    average = starts + (counts - 1) / 2.0
    return average[inverse].astype(np.float64)


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation without scipy (tie-aware fractional ranks)."""
    ra = _ranks(a)
    rb = _ranks(b)
    if ra.std() == 0.0 or rb.std() == 0.0:
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


class AnchorRankSimilarity(TaskSimilarity):
    """Rank correlation of measured time over shared anchor configs.

    The anchors are the baseline templates — every navigation profiles
    them, so returning tasks always share them with every donor.  With
    fewer than ``min_anchors`` shared measurements the metric is undefined
    and the feature-space fallback answers instead.
    """

    name = "anchor"

    def __init__(
        self,
        *,
        min_anchors: int = 3,
        fallback: TaskSimilarity | None = None,
    ) -> None:
        self.min_anchors = min_anchors
        self.fallback = fallback or FeatureSpaceSimilarity()
        self._anchors = frozenset(c.canonical() for c in TEMPLATES.values())

    def _anchor_times(self, records: list[GroundTruthRecord]) -> dict:
        times: dict = {}
        for record in records:
            config = record.config.canonical()
            if config in self._anchors and config not in times:
                times[config] = record.time_s
        return times

    def score(
        self,
        query: TaskFingerprint,
        donor: TaskFingerprint,
        *,
        query_records: list[GroundTruthRecord],
        donor_records: list[GroundTruthRecord],
    ) -> float:
        mine = self._anchor_times(query_records)
        theirs = self._anchor_times(donor_records)
        shared = sorted(
            (c for c in mine if c in theirs),
            key=lambda c: repr(sorted(c.to_dict().items())),
        )
        if len(shared) < self.min_anchors:
            return self.fallback.score(
                query,
                donor,
                query_records=query_records,
                donor_records=donor_records,
            )
        rho = _spearman(
            np.array([mine[c] for c in shared]),
            np.array([theirs[c] for c in shared]),
        )
        return float(np.clip(rho, 0.0, 1.0))


_SIMILARITIES = {
    FeatureSpaceSimilarity.name: FeatureSpaceSimilarity,
    AnchorRankSimilarity.name: AnchorRankSimilarity,
}


def get_similarity(name: str) -> TaskSimilarity:
    """Instantiate a registered similarity metric by policy name."""
    try:
        return _SIMILARITIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown similarity {name!r}; known: {sorted(_SIMILARITIES)}"
        ) from None


# -------------------------------------------------------------------- corpus
class TransferCorpus:
    """Similarity-searchable index of every task family in one store.

    The index maps ``fingerprint_id -> CorpusTask`` and is rebuilt by
    :meth:`refresh` from the store's fingerprint sidecars (backfilling
    sidecars for records written before they existed).  Queries are
    deterministic: ties in similarity break on ``fingerprint_id``.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._tasks: dict[str, CorpusTask] = {}  # guarded-by: _lock

    def refresh(self) -> int:
        """Re-index the store; returns the number of task families.

        The scan (directory glob + sidecar reads) runs outside ``_lock``;
        only the final index swap takes it.  Records whose sidecar cannot
        be derived (record vanished mid-scan, corrupt payload) are skipped —
        they re-appear on the next refresh if they come back.
        """
        grouped: dict[str, tuple[TaskFingerprint, list[str]]] = {}
        for key in self.store.keys():
            payload = self.store.ensure_meta(key)
            if payload is None:
                continue
            try:
                fingerprint = TaskFingerprint.from_dict(payload["fingerprint"])
            except Exception:
                continue
            entry = grouped.setdefault(fingerprint.fingerprint_id, (fingerprint, []))
            entry[1].append(key)
        tasks = {
            fid: CorpusTask(fingerprint=fp, keys=tuple(sorted(keys)))
            for fid, (fp, keys) in grouped.items()
        }
        with self._lock:
            self._tasks = tasks
            return len(self._tasks)

    def tasks(self) -> list[CorpusTask]:
        """Every indexed task family, ordered by ``fingerprint_id``."""
        with self._lock:
            entries = list(self._tasks.values())
        return sorted(entries, key=lambda t: t.fingerprint_id)

    def task(self, fingerprint_id: str) -> CorpusTask | None:
        with self._lock:
            return self._tasks.get(fingerprint_id)

    @property
    def num_tasks(self) -> int:
        with self._lock:
            return len(self._tasks)

    @property
    def num_records(self) -> int:
        with self._lock:
            return sum(t.num_records for t in self._tasks.values())

    def load_records(
        self, fingerprint_id: str, *, limit: int | None = None
    ) -> list[GroundTruthRecord]:
        """Records of one task family, in deterministic (sorted-key) order.

        Keys whose record was evicted between refresh and load are skipped;
        ``limit`` caps how many records are parsed off disk.
        """
        entry = self.task(fingerprint_id)
        if entry is None:
            return []
        records: list[GroundTruthRecord] = []
        for key in entry.keys:
            record = self.store.load(key)
            if record is not None:
                records.append(record)
            if limit is not None and len(records) >= limit:
                break
        return records

    def similar(
        self,
        query: TaskFingerprint,
        *,
        similarity: TaskSimilarity,
        min_similarity: float = 0.0,
        max_donors: int | None = None,
        max_donor_records: int | None = None,
        query_records: list[GroundTruthRecord] | None = None,
    ) -> list[tuple[CorpusTask, float, list[GroundTruthRecord]]]:
        """Donor task families ranked by similarity to ``query``.

        Hard gates first: the query's own family is excluded (its records
        are exact cache hits, not transfer donors) and donors must be
        arch/platform-compatible.  Survivors are scored, thresholded at
        ``min_similarity`` and returned best-first with their loaded
        records — deterministically, ties broken by ``fingerprint_id``.
        """
        if query_records is None:
            query_records = self.load_records(
                query.fingerprint_id, limit=max_donor_records
            )
        scored: list[tuple[CorpusTask, float, list[GroundTruthRecord]]] = []
        for entry in self.tasks():
            if entry.fingerprint_id == query.fingerprint_id:
                continue
            if not query.compatible(entry.fingerprint):
                continue
            donor_records = self.load_records(
                entry.fingerprint_id, limit=max_donor_records
            )
            if not donor_records:
                continue
            value = similarity.score(
                query,
                entry.fingerprint,
                query_records=query_records,
                donor_records=donor_records,
            )
            if value >= min_similarity:
                scored.append((entry, float(value), donor_records))
        scored.sort(key=lambda item: (-item[1], item[0].fingerprint_id))
        if max_donors is not None:
            scored = scored[:max_donors]
        return scored

    def stats(self) -> dict:
        """Corpus summary for the CLI / metrics (no store I/O)."""
        tasks = self.tasks()
        return {
            "tasks": len(tasks),
            "records": sum(t.num_records for t in tasks),
            "families": [
                {
                    "fingerprint_id": t.fingerprint_id,
                    "dataset": t.fingerprint.dataset,
                    "arch": t.fingerprint.arch,
                    "platform": t.fingerprint.platform,
                    "num_nodes": t.fingerprint.num_nodes,
                    "num_edges": t.fingerprint.num_edges,
                    "records": t.num_records,
                }
                for t in tasks
            ],
        }
