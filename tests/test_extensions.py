"""Tests for the extension features: cluster sampler, energy model,
config serialization, time-to-accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TaskSpec, TrainingConfig
from repro.errors import ConfigError, HardwareError, SamplingError
from repro.hardware import EnergyBreakdown, EnergyModel, get_platform
from repro.hardware.memory import MemoryBreakdown
from repro.runtime import RuntimeBackend
from repro.runtime.report import BatchRecord, EpochStats, PerfReport
from repro.sampling import ClusterSampler


class TestClusterSampler:
    def test_batches_are_partition_unions(self, medium_graph, rng):
        sampler = ClusterSampler(8, parts_per_batch=2, seed=0)
        targets = rng.choice(medium_graph.num_nodes, 64, replace=False)
        batch = sampler.sample(medium_graph, targets, rng=rng)
        partition = sampler._partition
        parts_in_batch = np.unique(partition[batch.nodes])
        # Nodes outside the chosen partitions appear only if they were targets.
        chosen = set(batch.meta["partitions"])
        stray = batch.nodes[~np.isin(partition[batch.nodes], list(chosen))]
        assert set(stray.tolist()) <= set(targets.tolist())
        assert len(parts_in_batch) <= 2 + len(set(partition[targets]))

    def test_targets_always_included(self, medium_graph, rng):
        sampler = ClusterSampler(8, parts_per_batch=1, seed=0)
        targets = rng.choice(medium_graph.num_nodes, 32, replace=False)
        batch = sampler.sample(medium_graph, targets, rng=rng)
        assert np.all(np.isin(targets, batch.nodes))

    def test_loss_on_all_partition_nodes(self, medium_graph, rng):
        sampler = ClusterSampler(8, parts_per_batch=2)
        batch = sampler.sample(medium_graph, np.arange(50), rng=rng)
        assert batch.num_targets == batch.num_nodes

    def test_trains_in_backend(self, small_graph):
        cfg = TrainingConfig(
            batch_size=64, sampler="cluster", hop_list=(2,), hidden_channels=16
        )
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        report = RuntimeBackend(task, cfg, graph=small_graph).train()
        assert report.accuracy > 0.2

    def test_rejects_bad_args(self):
        with pytest.raises(SamplingError):
            ClusterSampler(0)
        with pytest.raises(SamplingError):
            ClusterSampler(4, parts_per_batch=0)

    def test_rejects_empty_targets(self, medium_graph, rng):
        with pytest.raises(SamplingError):
            ClusterSampler(4).sample(medium_graph, np.array([]), rng=rng)


def _record(t_sample=1e-3, t_transfer=2e-3, t_replace=0.0, t_compute=1e-3, missed=100):
    return BatchRecord(
        num_targets=32,
        num_nodes=400,
        num_edges=2000,
        num_missed=missed,
        num_admitted=0,
        num_evicted=0,
        t_sample=t_sample,
        t_transfer=t_transfer,
        t_replace=t_replace,
        t_compute=t_compute,
        loss=1.0,
    )


class TestEnergyModel:
    def test_energy_positive_and_additive(self):
        model = EnergyModel(get_platform("rtx4090"))
        one = model.batch_energy(_record(), n_attr=96)
        two = model.records_energy([_record(), _record()], n_attr=96)
        assert one.total_j > 0
        assert two.total_j == pytest.approx(2 * one.total_j)

    def test_link_energy_scales_with_missed(self):
        model = EnergyModel(get_platform("rtx4090"))
        lo = model.batch_energy(_record(missed=10), n_attr=96)
        hi = model.batch_energy(_record(missed=1000), n_attr=96)
        assert hi.link_j > lo.link_j * 50

    def test_edge_platform_cheaper(self):
        rec = _record()
        dc = EnergyModel(get_platform("a100")).batch_energy(rec, 96)
        edge = EnergyModel(get_platform("m90")).batch_energy(rec, 96)
        assert edge.total_j < dc.total_j

    def test_rejects_bad_utilization(self):
        with pytest.raises(HardwareError):
            EnergyModel(get_platform("a100"), utilization=0.0)

    def test_breakdown_add(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = EnergyBreakdown(1.0, 1.0, 1.0)
        assert (a + b).total_j == 9.0


class TestConfigSerialization:
    def test_roundtrip(self):
        cfg = TrainingConfig(
            batch_size=128, sampler="biased", bias_rate=0.7, hop_list=(4, 2)
        )
        assert TrainingConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_compatible(self):
        import json

        cfg = TrainingConfig()
        payload = json.dumps(cfg.to_dict())
        assert TrainingConfig.from_dict(json.loads(payload)) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            TrainingConfig.from_dict({"warp_speed": 9})

    def test_invalid_values_still_validated(self):
        data = TrainingConfig().to_dict()
        data["batch_size"] = -1
        with pytest.raises(ConfigError):
            TrainingConfig.from_dict(data)


class TestTimeToAccuracy:
    def _report(self, accs):
        epochs = [
            EpochStats(
                epoch=i,
                time_s=1.0,
                t_sample=0,
                t_transfer=0,
                t_replace=0,
                t_compute=0,
                mean_batch_nodes=0,
                mean_batch_edges=0,
                hit_rate=0,
                loss=0,
                val_accuracy=a,
                num_batches=1,
            )
            for i, a in enumerate(accs)
        ]
        return PerfReport(
            time_s=1.0,
            memory=MemoryBreakdown(0, 0, 0),
            accuracy=accs[-1],
            epochs=epochs,
        )

    def test_reached_mid_run(self):
        rep = self._report([0.3, 0.6, 0.8])
        assert rep.time_to_accuracy(0.55) == pytest.approx(2.0)

    def test_reached_first_epoch(self):
        rep = self._report([0.9])
        assert rep.time_to_accuracy(0.5) == pytest.approx(1.0)

    def test_never_reached(self):
        rep = self._report([0.3, 0.4])
        assert rep.time_to_accuracy(0.9) is None
