"""Runtime backend tests: Algorithm 1 execution, reports, profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TaskSpec, TrainingConfig, get_template
from repro.errors import ConfigError
from repro.runtime import RuntimeBackend, profile_configs, profile_one
from repro.runtime.backend import make_sampler
from repro.sampling import (
    BiasedNeighborSampler,
    LayerSampler,
    NeighborSampler,
    SaintSampler,
)


@pytest.fixture()
def backend(small_graph, tiny_task, tiny_config) -> RuntimeBackend:
    return RuntimeBackend(tiny_task, tiny_config, graph=small_graph)


class TestMakeSampler:
    def test_sage(self, small_graph):
        s = make_sampler(TrainingConfig(sampler="sage"), small_graph, None)
        assert isinstance(s, NeighborSampler)

    def test_fastgcn_budgets_capped(self, small_graph):
        cfg = TrainingConfig(sampler="fastgcn", hop_list=(10, 5), batch_size=512)
        s = make_sampler(cfg, small_graph, None)
        assert isinstance(s, LayerSampler)
        assert max(s.layer_sizes) <= small_graph.num_nodes // 2

    def test_saint_walk_length(self, small_graph):
        cfg = TrainingConfig(sampler="saint", hop_list=(3, 3))
        s = make_sampler(cfg, small_graph, None)
        assert isinstance(s, SaintSampler)
        assert s.walk_length == 4

    def test_biased_without_cache_uses_hubs(self, small_graph):
        cfg = TrainingConfig(sampler="biased", bias_rate=0.9)
        s = make_sampler(cfg, small_graph, None)
        assert isinstance(s, BiasedNeighborSampler)
        assert s.hot_nodes.size > 0
        # Hot set should be high-degree vertices.
        hot_deg = small_graph.degrees[s.hot_nodes].mean()
        assert hot_deg > small_graph.degrees.mean()


class TestBackendConstruction:
    def test_requires_features(self, tiny_task, tiny_config):
        from repro.graphs import powerlaw_graph

        bare = powerlaw_graph(100, seed=0)
        with pytest.raises(ConfigError):
            RuntimeBackend(tiny_task, tiny_config, graph=bare)

    def test_cache_sized_by_ratio(self, backend, small_graph):
        expected = int(0.2 * small_graph.num_nodes)
        assert backend.cache.capacity == expected

    def test_canonicalises_config(self, small_graph, tiny_task):
        cfg = TrainingConfig(sampler="sage", bias_rate=0.9)
        b = RuntimeBackend(tiny_task, cfg, graph=small_graph)
        assert b.config.bias_rate == 0.0

    def test_splits_are_disjoint(self, backend):
        assert (
            np.intersect1d(backend.train_nodes, backend.test_nodes).size == 0
        )
        assert np.intersect1d(backend.train_nodes, backend.val_nodes).size == 0


class TestTraining:
    def test_perf_report_structure(self, backend, tiny_task):
        report = backend.train()
        assert len(report.epochs) == tiny_task.epochs
        assert report.time_s > 0
        assert report.memory.total > 0
        assert 0.0 <= report.accuracy <= 1.0

    def test_loss_decreases_across_epochs(self, small_graph):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=5, lr=0.02)
        cfg = TrainingConfig(
            batch_size=64, hop_list=(4, 3), hidden_channels=16, dropout=0.2
        )
        report = RuntimeBackend(task, cfg, graph=small_graph).train()
        assert report.epochs[-1].loss < report.epochs[0].loss

    def test_batch_records_kept_when_asked(self, backend):
        report = backend.train(keep_batch_records=True)
        assert len(report.batches) == sum(e.num_batches for e in report.epochs)
        rec = report.batches[0]
        assert rec.num_nodes >= rec.num_targets
        assert rec.time == max(
            rec.t_sample + rec.t_transfer, rec.t_replace + rec.t_compute
        )

    def test_static_cache_produces_hits(self, small_graph, tiny_task):
        cfg = TrainingConfig(
            batch_size=64,
            hop_list=(4, 3),
            cache_ratio=0.5,
            cache_policy="static",
            hidden_channels=16,
        )
        report = RuntimeBackend(tiny_task, cfg, graph=small_graph).train()
        assert report.mean_hit_rate > 0.2

    def test_no_cache_no_hits(self, small_graph, tiny_task):
        cfg = TrainingConfig(batch_size=64, hop_list=(4, 3), hidden_channels=16)
        report = RuntimeBackend(tiny_task, cfg, graph=small_graph).train()
        assert report.mean_hit_rate == 0.0

    def test_cache_reduces_epoch_time(self, small_graph, tiny_task):
        base = TrainingConfig(batch_size=64, hop_list=(4, 3), hidden_channels=16)
        cached = TrainingConfig(
            batch_size=64,
            hop_list=(4, 3),
            cache_ratio=0.5,
            cache_policy="static",
            hidden_channels=16,
        )
        t_base = RuntimeBackend(tiny_task, base, graph=small_graph).train().time_s
        t_cached = RuntimeBackend(tiny_task, cached, graph=small_graph).train().time_s
        assert t_cached < t_base

    def test_cache_increases_memory(self, small_graph, tiny_task):
        base = TrainingConfig(batch_size=64, hop_list=(4, 3), hidden_channels=16)
        cached = TrainingConfig(
            batch_size=64,
            hop_list=(4, 3),
            cache_ratio=0.5,
            cache_policy="static",
            hidden_channels=16,
        )
        m_base = RuntimeBackend(tiny_task, base, graph=small_graph).train().memory
        m_cached = RuntimeBackend(tiny_task, cached, graph=small_graph).train().memory
        assert m_cached.cache > m_base.cache
        assert m_cached.total > m_base.total

    def test_saint_loss_never_uses_eval_labels(self, small_graph):
        """Label-leakage regression test: SAINT targets filtered to train."""
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        cfg = TrainingConfig(batch_size=64, sampler="saint", hop_list=(2, 2))
        backend = RuntimeBackend(task, cfg, graph=small_graph)
        train_mask = backend._train_mask
        for targets in backend.batches.epoch():
            batch = backend.sampler.sample(backend.graph, targets, rng=backend._rng)
            idx = batch.target_index
            filtered = idx[train_mask[batch.nodes[idx]]]
            assert np.all(train_mask[batch.nodes[filtered]])

    def test_gat_task_runs(self, small_graph):
        task = TaskSpec(dataset="tiny", arch="gat", epochs=1)
        cfg = TrainingConfig(
            batch_size=64, hop_list=(4, 3), hidden_channels=16, heads=2
        )
        report = RuntimeBackend(task, cfg, graph=small_graph).train()
        assert report.time_s > 0

    def test_objective_vector_orientation(self, backend):
        report = backend.train()
        vec = report.objective_vector()
        assert vec[0] == report.time_s
        assert vec[2] == -report.accuracy


class TestProfiler:
    def test_profile_one_record(self, small_graph, tiny_task, tiny_config):
        record, report = profile_one(tiny_task, tiny_config, graph=small_graph)
        assert record.time_s == report.time_s
        assert record.accuracy == report.accuracy
        assert record.mean_batch_nodes > 0
        assert record.features().ndim == 1

    def test_profile_configs_batch(self, small_graph, tiny_task):
        configs = [
            TrainingConfig(batch_size=64, hop_list=(3, 2), hidden_channels=16),
            TrainingConfig(
                batch_size=64,
                hop_list=(3, 2),
                cache_ratio=0.3,
                cache_policy="static",
                hidden_channels=16,
            ),
        ]
        records = profile_configs(tiny_task, configs, graph=small_graph)
        assert len(records) == 2
        assert records[1].hit_rate > records[0].hit_rate


class TestEpochStatGuards:
    """Regression tests: NaN batch losses and empty epochs must not poison
    EpochStats (and with it the estimator's ground truth)."""

    def test_no_train_target_batches_do_not_poison_loss(
        self, small_graph, tiny_config
    ):
        import math

        from repro.sampling.batching import BatchIterator

        # Tiny train fraction, and batches scheduled over *validation*
        # vertices: every batch has zero training targets, so _train_step
        # reports NaN for each — the epoch loss must still be finite.
        task = TaskSpec(
            dataset="tiny", arch="sage", epochs=1, lr=0.02, train_frac=0.05
        )
        backend = RuntimeBackend(task, tiny_config, graph=small_graph)
        backend.batches = BatchIterator(
            backend.val_nodes, tiny_config.batch_size, order="sequential"
        )
        stats, records = backend.run_epoch(0)
        assert all(math.isnan(r.loss) for r in records)
        assert math.isfinite(stats.loss)
        assert stats.loss == 0.0

    def test_mixed_nan_batches_average_finite_losses_only(
        self, small_graph, tiny_config
    ):
        import math

        from repro.sampling.batching import BatchIterator

        task = TaskSpec(dataset="tiny", arch="sage", epochs=1, lr=0.02)
        backend = RuntimeBackend(task, tiny_config, graph=small_graph)
        # Sequential batches over train-then-val vertices: early batches
        # carry real losses, trailing all-val batches report NaN.
        mixed = np.concatenate([backend.train_nodes, backend.val_nodes])
        backend.batches = BatchIterator(
            mixed, tiny_config.batch_size, order="sequential"
        )
        stats, records = backend.run_epoch(0)
        finite = [r.loss for r in records if not math.isnan(r.loss)]
        assert finite and len(finite) < len(records)
        assert stats.loss == pytest.approx(float(np.mean(finite)))

    def test_zero_batch_epoch_yields_clean_stats(self, small_graph, tiny_config):
        import warnings

        from repro.sampling.batching import BatchIterator

        task = TaskSpec(dataset="tiny", arch="sage", epochs=1, lr=0.02)
        backend = RuntimeBackend(task, tiny_config, graph=small_graph)
        # drop_last with an oversized batch produces an epoch with zero
        # mini-batches; every mean reduction must degrade to 0.0 silently.
        backend.batches = BatchIterator(
            backend.train_nodes,
            backend.train_nodes.size + 1,
            order="sequential",
            drop_last=True,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stats, records = backend.run_epoch(0)
        assert records == []
        assert stats.num_batches == 0
        assert stats.loss == 0.0
        assert stats.mean_batch_nodes == 0.0
        assert stats.hit_rate == 0.0
