"""Cross-module integration tests on the tiny fixture graph.

These exercise full pipelines end to end: every template trains; the
navigator honours constraints; estimator predictions drive decisions that
hold up when measured.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DesignSpace, TaskSpec, TrainingConfig, template_names, get_template
from repro.explorer import GNNavigator, RuntimeConstraint, get_target
from repro.runtime import RuntimeBackend


@pytest.fixture(scope="module")
def space() -> DesignSpace:
    return DesignSpace(
        {
            "batch_size": (32, 64),
            "sampler": ("sage", "biased", "saint"),
            "bias_rate": (0.0, 0.9),
            "cache_ratio": (0.0, 0.3),
            "cache_policy": ("none", "static", "lru"),
        },
        base=TrainingConfig(hop_list=(3, 2), hidden_channels=16),
    )


class TestTemplatesEndToEnd:
    @pytest.mark.parametrize("name", template_names())
    def test_template_trains(self, name, small_graph):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        config = get_template(name, batch_size=64, hidden_channels=16)
        report = RuntimeBackend(task, config, graph=small_graph).train()
        assert report.time_s > 0
        assert report.accuracy > 0.2, f"{name} failed to learn anything"

    def test_template_signature_tradeoffs(self, small_graph):
        """PaGraph adds memory to save time relative to PyG."""
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        pyg = RuntimeBackend(
            task, get_template("pyg", batch_size=64, hidden_channels=16),
            graph=small_graph,
        ).train()
        pa = RuntimeBackend(
            task, get_template("pagraph_full", batch_size=64, hidden_channels=16),
            graph=small_graph,
        ).train()
        assert pa.time_s < pyg.time_s
        assert pa.memory.total > pyg.memory.total


class TestNavigatorConstraints:
    def test_memory_constraint_respected_in_measurement(self, small_graph, space):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        nav = GNNavigator(
            task, space=space, graph=small_graph,
            profile_budget=10, profile_epochs=1,
        )
        free = nav.explore(priorities=["balance"])
        mems = [p.memory_bytes for p in free.exploration.predictions]
        budget = float(np.percentile(mems, 50))
        constrained = nav.explore(
            constraint=RuntimeConstraint(max_memory_bytes=budget),
            priorities=["balance"],
        )
        guideline = constrained.guidelines["balance"]
        measured = nav.apply(guideline)
        # Allow estimator error; measured memory must be near the budget.
        assert measured.memory.total <= budget * 1.3

    def test_priorities_produce_distinct_tradeoffs(self, small_graph, space):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        nav = GNNavigator(
            task, space=space, graph=small_graph,
            profile_budget=10, profile_epochs=1,
        )
        report = nav.explore(priorities=["ex_tm", "ex_ma"])
        tm = report.guidelines["ex_tm"].predicted
        ma = report.guidelines["ex_ma"].predicted
        # Ex-TM leans fast/lean, Ex-MA leans accurate: orderings must agree
        # with the priorities on at least their emphasised axes.
        assert tm.time_s <= ma.time_s * 1.25
        assert ma.accuracy >= tm.accuracy - 0.02

    def test_navigate_convenience(self, small_graph, space):
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        nav = GNNavigator(
            task, space=space, graph=small_graph,
            profile_budget=10, profile_epochs=1,
        )
        guideline, perf = nav.navigate(priority="balance")
        assert guideline.priority == "balance"
        assert perf.accuracy > 0.2


class TestEstimatorDecisionQuality:
    def test_predicted_time_ordering_mostly_holds(self, small_graph, space):
        """Estimated epoch-time ordering should correlate with measured."""
        task = TaskSpec(dataset="tiny", arch="sage", epochs=2)
        nav = GNNavigator(
            task, space=space, graph=small_graph,
            profile_budget=12, profile_epochs=2,
        )
        nav.fit_estimator()
        candidates = space.sample(8, rng=np.random.default_rng(3))
        preds = nav.estimator.predict(
            candidates, [nav.profile] * len(candidates), nav.platform
        )
        measured = [
            RuntimeBackend(task, c, graph=small_graph).train().time_s
            for c in candidates
        ]
        pred_times = [p.time_s for p in preds]
        # Spearman-like check: correlation of ranks must be positive.
        pr = np.argsort(np.argsort(pred_times))
        mr = np.argsort(np.argsort(measured))
        rho = np.corrcoef(pr, mr)[0, 1]
        assert rho > 0.3, f"rank correlation too weak: {rho:.2f}"
