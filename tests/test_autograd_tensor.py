"""Autograd engine tests: op correctness and numeric gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    as_tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad.ravel()[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare autograd gradient of sum(build(x)) against finite differences."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape)
    with default_dtype(np.float64):
        t = Tensor(x0.copy(), requires_grad=True)
        out = build(t)
        out.sum().backward()
        auto = t.grad.copy()

        def scalar(arr):
            return build(Tensor(arr)).sum().item()

        num = numeric_grad(scalar, x0.copy())
    np.testing.assert_allclose(auto, num, atol=atol, rtol=1e-4)


class TestDtypeControl:
    def test_default_is_float32(self):
        assert get_default_dtype() == np.dtype(np.float32)
        assert Tensor([1.0]).data.dtype == np.float32

    def test_context_manager_restores(self):
        with default_dtype(np.float64):
            assert Tensor([1.0]).data.dtype == np.float64
        assert Tensor([1.0]).data.dtype == np.float32

    def test_rejects_int_dtype(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)


class TestBasicOps:
    def test_add_forward(self):
        c = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(c.numpy(), [4.0, 6.0])

    def test_scalar_broadcast(self):
        c = Tensor([[1.0, 2.0]]) * 3.0
        np.testing.assert_allclose(c.numpy(), [[3.0, 6.0]])

    def test_radd_rsub_rmul(self):
        t = Tensor([2.0])
        np.testing.assert_allclose((1.0 + t).numpy(), [3.0])
        np.testing.assert_allclose((1.0 - t).numpy(), [-1.0])
        np.testing.assert_allclose((3.0 * t).numpy(), [6.0])
        np.testing.assert_allclose((8.0 / t).numpy(), [4.0])

    def test_matmul_shapes(self):
        out = Tensor(np.ones((3, 4))) @ Tensor(np.ones((4, 5)))
        assert out.shape == (3, 5)

    def test_getitem(self):
        t = Tensor(np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(t[1].numpy(), [2.0, 3.0])

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_detach_cuts_tape(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestGradients:
    def test_add(self):
        check_gradient(lambda t: t + t * 2.0, (3, 4))

    def test_mul(self):
        check_gradient(lambda t: t * t, (4,))

    def test_div(self):
        check_gradient(lambda t: t / (t * t + 2.0), (5,))

    def test_pow(self):
        check_gradient(lambda t: t**3, (6,))

    def test_matmul(self):
        w = np.random.default_rng(1).normal(size=(4, 2))
        with default_dtype(np.float64):
            wt = Tensor(w)
            check_gradient(lambda t: t @ wt, (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: t.mean(axis=1), (3, 4))

    def test_max(self):
        # Perturb away from ties for a well-defined subgradient.
        check_gradient(lambda t: t.max(axis=1), (5, 7), seed=3)

    def test_reshape_transpose(self):
        check_gradient(lambda t: (t.reshape(6, 2).T * 2.0), (3, 4))

    def test_getitem_grad(self):
        idx = np.array([0, 2, 2])
        check_gradient(lambda t: t[idx] * 3.0, (4, 2))

    def test_diamond_reuse(self):
        """A tensor consumed twice accumulates both paths' gradients."""
        with default_dtype(np.float64):
            t = Tensor([1.0, 2.0], requires_grad=True)
            y = t * 3.0
            z = (y + y * 2.0).sum()
            z.backward()
            np.testing.assert_allclose(t.grad, [9.0, 9.0])

    def test_grad_accumulates_across_backward(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestNoGrad:
    def test_no_tape_inside_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_nested_restores(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_broadcast_grad_property(rows, cols, seed):
    """Gradient of broadcast ops sums over broadcast axes (shape invariant)."""
    rng = np.random.default_rng(seed)
    with default_dtype(np.float64):
        a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
        b = Tensor(rng.normal(size=(cols,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (rows, cols)
        assert b.grad.shape == (cols,)
        # b's gradient is the column sums of a.
        np.testing.assert_allclose(b.grad, a.data.sum(axis=0), rtol=1e-10)
