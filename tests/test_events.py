"""Progress-event subsystem: ring buffer, metrics, streaming, parity.

The buffer/registry tests are pure unit tests.  The streaming tests run
real (tiny) navigation jobs and exercise the full emission chain — server
-> navigator -> shared profiling service — through the parametrized client
fixture, once in-process and once over a live HTTP socket, so the two
transports can only pass together (the event-parity contract).
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.config import TaskSpec
from repro.errors import UnknownJobError
from repro.serving import (
    EventBuffer,
    JobProgressEvent,
    JobStatus,
    MetricsRegistry,
    NavigationClient,
    NavigationRequest,
    NavigationServer,
)
from repro.serving.events import GAP_PHASE, EventBatch
from repro.serving.transport import (
    NavigationHTTPServer,
    RemoteNavigationClient,
)
from repro.serving.transport.protocol import EventsResponse, ProtocolError


def _task(**kwargs) -> TaskSpec:
    kwargs.setdefault("dataset", "tiny")
    kwargs.setdefault("arch", "sage")
    kwargs.setdefault("epochs", 1)
    return TaskSpec(**kwargs)


def _event(phase: str = "profiling", **fields) -> JobProgressEvent:
    fields.setdefault("job_id", "job-0000")
    fields.setdefault("status", "running")
    return JobProgressEvent(phase=phase, **fields)


# ---------------------------------------------------------------- ring buffer
class TestEventBuffer:
    def test_append_assigns_monotonic_seqs(self):
        buffer = EventBuffer(capacity=8)
        stamped = [buffer.append(_event()) for _ in range(3)]
        assert [e.seq for e in stamped] == [0, 1, 2]
        events, next_seq, gap = buffer.read(since=0, timeout=0)
        assert [e.seq for e in events] == [0, 1, 2]
        assert next_seq == 3 and gap == 0

    def test_read_since_filters(self):
        buffer = EventBuffer(capacity=8)
        for _ in range(5):
            buffer.append(_event())
        events, next_seq, gap = buffer.read(since=3, timeout=0)
        assert [e.seq for e in events] == [3, 4]
        assert gap == 0
        # since == next_seq: nothing yet, no gap — the steady poll state
        events, next_seq, gap = buffer.read(since=5, timeout=0)
        assert events == [] and next_seq == 5 and gap == 0

    def test_capacity_drops_oldest_and_counts_gap(self):
        drops: list[int] = []
        buffer = EventBuffer(capacity=3, on_drop=drops.append)
        for _ in range(10):
            buffer.append(_event())
        assert buffer.dropped == 7 and sum(drops) == 7
        events, next_seq, gap = buffer.read(since=0, timeout=0)
        assert [e.seq for e in events] == [7, 8, 9]
        assert next_seq == 10
        assert gap == 7  # everything between 0 and the horizon is gone

    def test_since_partially_past_horizon(self):
        buffer = EventBuffer(capacity=3)
        for _ in range(10):
            buffer.append(_event())
        events, _, gap = buffer.read(since=5, timeout=0)
        assert gap == 2  # seqs 5 and 6 dropped; 7..9 delivered
        assert [e.seq for e in events] == [7, 8, 9]

    def test_since_beyond_everything_is_not_a_gap(self):
        buffer = EventBuffer(capacity=3)
        buffer.append(_event())
        events, next_seq, gap = buffer.read(since=99, timeout=0)
        assert events == [] and gap == 0 and next_seq == 1

    def test_blocking_read_wakes_on_append(self):
        buffer = EventBuffer(capacity=8)
        threading.Timer(0.05, lambda: buffer.append(_event())).start()
        events, _, _ = buffer.read(since=0, timeout=5.0)
        assert len(events) == 1

    def test_blocking_read_returns_early_when_done(self):
        buffer = EventBuffer(capacity=8)
        events, _, _ = buffer.read(since=0, timeout=5.0, done=lambda: True)
        assert events == []  # returned immediately, not after 5 s

    def test_negative_since_rejected(self):
        buffer = EventBuffer(capacity=8)
        with pytest.raises(ValueError):
            buffer.read(since=-1, timeout=0)
        with pytest.raises(ValueError):
            EventBuffer(capacity=0)


# -------------------------------------------------------------------- metrics
class TestMetricsRegistry:
    def test_counters_create_on_first_inc(self):
        metrics = MetricsRegistry()
        assert metrics.counter("jobs") == 0
        assert metrics.inc("jobs") == 1
        assert metrics.inc("jobs", 4) == 5
        assert metrics.value("jobs") == 5
        with pytest.raises(ValueError):
            metrics.inc("jobs", -1)

    def test_gauges_read_live(self):
        metrics = MetricsRegistry()
        box = {"depth": 3}
        metrics.gauge("queue_depth", lambda: box["depth"])
        assert metrics.value("queue_depth") == 3
        box["depth"] = 7
        assert metrics.snapshot()["queue_depth"] == 7

    def test_namespace_collisions_rejected(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.gauge("b", lambda: 0)
        with pytest.raises(ValueError):
            metrics.gauge("a", lambda: 0)
        with pytest.raises(ValueError):
            metrics.inc("b")
        with pytest.raises(KeyError):
            metrics.value("missing")

    def test_raising_gauge_reports_zero(self):
        metrics = MetricsRegistry()
        metrics.gauge("broken", lambda: 1 / 0)
        assert metrics.snapshot()["broken"] == 0


# ----------------------------------------------------------------- wire forms
class TestEventWire:
    def test_event_round_trips(self):
        original = _event(
            seq=7, batch_index=3, runs_done=3, runs_total=13,
            cache_hits=1, best_objective=0.25, elapsed_s=1.5, message="m",
        )
        assert JobProgressEvent.from_dict(original.to_dict()) == original

    def test_batch_round_trips(self):
        batch = EventBatch(
            events=[_event(seq=1), _event(seq=2)], next_seq=3, gap=1, done=True
        )
        assert EventBatch.from_dict(batch.to_dict()) == batch

    def test_events_response_validation(self):
        with pytest.raises(ProtocolError):
            EventsResponse.from_wire({"done": True})  # no next_seq
        parsed = EventsResponse.from_wire(
            {"protocol": 1, "done": False, "next_seq": 4}
        )
        assert parsed.events == [] and parsed.gap == 0


# ----------------------------------------------------------- streaming parity
@pytest.fixture()
def stack(small_graph, tmp_path):
    server = NavigationServer(
        workers=2,
        graphs={"tiny": small_graph},
        cache_dir=str(tmp_path / "store"),
    )
    http = NavigationHTTPServer(server)
    http.start()
    yield server, http
    http.stop()
    server.stop()


@pytest.fixture(params=["inprocess", "http"])
def client(request, stack):
    server, http = stack
    if request.param == "inprocess":
        return NavigationClient(server, tenant="team-a")
    return RemoteNavigationClient(http.url, tenant="team-a")


def _semantic(event: JobProgressEvent) -> tuple:
    """Everything but the timing — what must match across transports."""
    return (
        event.seq,
        event.phase,
        event.status,
        event.batch_index,
        event.runs_done,
        event.runs_total,
        event.cache_hits,
        event.best_objective,
        event.message,
    )


class TestEventStreamParity:
    """The acceptance suite: both transports, one set of expectations."""

    def test_watch_streams_the_whole_life(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        events = list(handle.watch())
        phases = [e.phase for e in events]
        assert phases[0] == "queued" and events[0].status == "pending"
        assert phases[1] == "started"
        assert "exploring" in phases and "explored" in phases
        assert events[-1].phase == "done" and events[-1].terminal
        # contiguous seqs: nothing dropped at the default capacity
        assert [e.seq for e in events] == list(range(len(events)))
        # profiling progress reached its own advertised total
        profiling = [e for e in events if e.phase == "profiling"]
        assert profiling and profiling[-1].runs_done == profiling[-1].runs_total > 0
        # elapsed never runs backwards
        elapsed = [e.elapsed_s for e in events]
        assert all(a <= b for a, b in zip(elapsed, elapsed[1:], strict=False))
        assert handle.status is JobStatus.DONE

    def test_identical_event_sequences_across_transports(
        self, small_graph, tmp_path
    ):
        """The same job spec produces the same event stream over both
        transports (fresh server + cold store each, so nothing leaks)."""
        streams = {}
        for transport in ("inprocess", "http"):
            server = NavigationServer(
                workers=1,
                graphs={"tiny": small_graph},
                cache_dir=str(tmp_path / transport),
            )
            http = NavigationHTTPServer(server)
            http.start()
            try:
                if transport == "inprocess":
                    tenant = NavigationClient(server, tenant="t")
                else:
                    tenant = RemoteNavigationClient(http.url, tenant="t")
                handle = tenant.submit(_task(), budget=8, profile_epochs=1)
                streams[transport] = [
                    _semantic(e) for e in handle.watch()
                ]
            finally:
                http.stop()
                server.stop()
        assert streams["inprocess"] == streams["http"]

    def test_resume_with_since_after_reconnect(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        full = list(handle.watch())
        # "reconnect": a brand-new client resumes mid-stream by seq alone
        if isinstance(client, RemoteNavigationClient):
            fresh = RemoteNavigationClient(client.url)
            resumed = list(fresh.watch(handle.job_id, since=full[3].seq))
        else:
            resumed = list(handle.watch(since=full[3].seq))
        assert [_semantic(e) for e in resumed] == [
            _semantic(e) for e in full[3:]
        ]

    def test_subscribe_to_already_terminal_job(self, client):
        handle = client.submit(_task(), budget=8, profile_epochs=1)
        handle.result(timeout=240)
        # first touch of the stream happens after the job ended
        batch = handle.events(since=0, timeout=0)
        assert batch.done and batch.gap == 0
        assert batch.events[-1].terminal
        replay = list(handle.watch())
        assert [e.to_dict() for e in replay] == [
            e.to_dict() for e in batch.events
        ]

    def test_failed_job_stream_ends_failed(self, client):
        handle = client.submit(
            _task(dataset="no-such-dataset"), budget=8, profile_epochs=1
        )
        events = list(handle.watch())
        assert events[-1].phase == "failed"
        assert events[-1].status == "failed" and events[-1].terminal

    def test_unknown_job_events_raise(self, client):
        client.submit(_task(), budget=8, profile_epochs=1).result(timeout=240)
        if isinstance(client, RemoteNavigationClient):
            with pytest.raises(UnknownJobError):
                client.events("job-9999", timeout=0)
        else:
            with pytest.raises(UnknownJobError):
                client.server.events("job-9999", timeout=0)


class TestSlowConsumer:
    def test_ring_bound_yields_gap_marker(self, small_graph):
        """A consumer that only shows up after the ring wrapped sees an
        explicit gap marker, then the retained tail — never a silent skip."""
        with NavigationServer(
            workers=1, graphs={"tiny": small_graph}, event_buffer=4
        ) as server:
            tenant = NavigationClient(server)
            handle = tenant.submit(_task(), budget=8, profile_epochs=1)
            handle.result(timeout=240)
            batch = handle.events(since=0, timeout=0)
            assert batch.gap > 0
            assert len(batch.events) <= 4
            assert batch.events[-1].terminal and batch.done
            # the retained tail is seq-contiguous up to the stream end
            seqs = [e.seq for e in batch.events]
            assert seqs == list(range(batch.next_seq - len(seqs), batch.next_seq))
            # the watcher surfaces the loss as a marker event
            events = list(handle.watch())
            assert events[0].phase == GAP_PHASE
            assert str(batch.gap) in events[0].message
            assert [e.seq for e in events[1:]] == seqs
            assert server.metrics.counter("events_dropped") == batch.gap

    def test_gap_reflected_over_http(self, small_graph):
        server = NavigationServer(
            workers=1, graphs={"tiny": small_graph}, event_buffer=4
        )
        http = NavigationHTTPServer(server)
        http.start()
        try:
            client = RemoteNavigationClient(http.url)
            handle = client.submit(_task(), budget=8, profile_epochs=1)
            handle.result(timeout=240)
            batch = handle.events(since=0, timeout=0)
            assert batch.gap > 0 and batch.done
            events = list(handle.watch())
            assert events[0].phase == GAP_PHASE
        finally:
            http.stop()
            server.stop()


class TestMetricsEndpoint:
    def test_metrics_scrape_matches_server_registry(self, stack):
        server, http = stack
        client = RemoteNavigationClient(http.url)
        client.submit(_task(), budget=8, profile_epochs=1).result(timeout=240)
        scraped = client.metrics()
        assert scraped["jobs_submitted"] == 1
        assert scraped["jobs_done"] == 1
        assert scraped["profiling_executed"] == server.stats.executed > 0
        assert scraped["events_emitted"] == server.metrics.counter(
            "events_emitted"
        )
        assert scraped["store_entries"] == len(server.store)
        # /v1/stats is a projection of the same registry
        stats = client.stats()
        assert stats.profiling["executed"] == scraped["profiling_executed"]
        assert stats.jobs["total"] == scraped["jobs_submitted"]
        assert stats.jobs["done"] == scraped["jobs_done"]

    def test_bad_since_is_a_protocol_error(self, stack):
        _, http = stack
        for query in ("since=-1", "since=abc"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{http.url}/v1/jobs/job-0000/events?{query}", timeout=10
                )
            assert excinfo.value.code == 400

    def test_cancelled_pending_job_stream(self, small_graph):
        server = NavigationServer(
            workers=1, graphs={"tiny": small_graph}, autostart=False
        )
        try:
            job_id = server.submit(
                NavigationRequest(task=_task(), budget=8, profile_epochs=1)
            )
            assert server.cancel(job_id)
            batch = server.events(job_id, timeout=0)
            assert [e.phase for e in batch.events] == ["queued", "cancelled"]
            assert batch.done
            assert server.metrics.counter("jobs_cancelled") == 1
        finally:
            server.stop()
