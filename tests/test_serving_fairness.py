"""Scheduler-hardening tests: cooperative cancellation of RUNNING jobs,
per-tenant fair-share scheduling with quotas, and server-wired store
eviction."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import TaskSpec
from repro.config.space import default_space
from repro.errors import JobCancelled, ServingError
from repro.runtime import CancellationToken, ProfilingService
from repro.serving import (
    JobStatus,
    NavigationRequest,
    NavigationServer,
    PriorityJobQueue,
    SharedProfilingService,
)


def _request(task: TaskSpec, **kwargs) -> NavigationRequest:
    kwargs.setdefault("budget", 8)
    kwargs.setdefault("profile_epochs", 1)
    return NavigationRequest(task=task, **kwargs)


def _wait_for(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.01)


@pytest.fixture()
def server_factory(small_graph, tmp_path):
    servers = []

    def build(**kwargs):
        kwargs.setdefault("graphs", {"tiny": small_graph})
        kwargs.setdefault("cache_dir", str(tmp_path / "store"))
        server = NavigationServer(**kwargs)
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()


@pytest.fixture()
def slow_profiling(monkeypatch):
    """Stretch every candidate run so cancellation windows are wide."""
    import repro.runtime.parallel as parallel_mod

    real = parallel_mod.profile_one

    def slow(task, config, *, graph=None):
        time.sleep(0.1)
        return real(task, config, graph=graph)

    monkeypatch.setattr(parallel_mod, "profile_one", slow)


class TestCancellationToken:
    def test_checkpoint_raises_after_cancel(self):
        token = CancellationToken()
        token.raise_if_cancelled()  # no-op before cancel
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        with pytest.raises(JobCancelled):
            token.raise_if_cancelled()

    def test_profile_aborts_at_batch_boundary(self, small_graph, tiny_task):
        service = ProfilingService()
        configs = [
            c.canonical()
            for c in default_space().sample(6, rng=np.random.default_rng(0))
        ]
        token = CancellationToken()
        token.cancel()
        with pytest.raises(JobCancelled):
            service.profile(
                tiny_task, configs, graph=small_graph, cancel=token
            )
        assert service.stats.executed == 0  # aborted before the first run

    def test_cancelled_batch_keeps_completed_runs(
        self, small_graph, tiny_task, monkeypatch
    ):
        """Runs finished before the abort are committed; a retry measures
        only the remainder."""
        import repro.runtime.parallel as parallel_mod

        service = ProfilingService()
        token = CancellationToken()
        real = parallel_mod.profile_one
        calls: list[int] = []

        def cancelling_after_two(task, config, *, graph=None):
            calls.append(1)
            if len(calls) == 2:
                token.cancel()
            return real(task, config, graph=graph)

        monkeypatch.setattr(
            parallel_mod, "profile_one", cancelling_after_two
        )
        configs = [
            c.canonical()
            for c in default_space().sample(6, rng=np.random.default_rng(7))
        ]
        unique = len(set(configs))
        assert unique > 2
        with pytest.raises(JobCancelled):
            service.profile(
                tiny_task, configs, graph=small_graph, cancel=token
            )
        assert service.stats.executed == 2  # the two finished runs landed
        service.profile(tiny_task, configs, graph=small_graph)
        # the retry re-measured only the remainder — nothing twice
        assert service.stats.executed == unique
        assert service.stats.cache_hits == 2

    def test_pool_path_cancellation_commits_finished_futures(
        self, small_graph, tiny_task, slow_profiling
    ):
        """Cancelling a pool batch publishes every run that finished
        (collected or not) before aborting; the retry completes cleanly.

        ``slow_profiling`` stretches each run to ~0.1s (inherited by the
        fork-started pool workers), so the 0.25s timer lands mid-batch.
        """
        service = ProfilingService(max_workers=2)
        token = CancellationToken()
        configs = [
            c.canonical()
            for c in default_space().sample(10, rng=np.random.default_rng(4))
        ]
        timer = threading.Timer(0.25, token.cancel)
        timer.start()
        try:
            with pytest.raises(JobCancelled):
                service.profile(
                    tiny_task, configs, graph=small_graph, cancel=token
                )
        finally:
            timer.cancel()
        # every salvaged/collected commit was counted exactly once
        assert service.stats.executed == len(service._memory)
        records = service.profile(tiny_task, configs, graph=small_graph)
        assert len(records) == len(configs)
        assert service.stats.executed == len(set(configs))  # nothing twice


class TestRunningJobCancellation:
    def test_cancel_running_reaches_cancelled_and_releases_claims(
        self, server_factory, slow_profiling
    ):
        server = server_factory(workers=2, cache_dir=None)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        # Same request twice: whichever job claims the keys first, the other
        # waits on its in-flight events.
        victim = server.submit(_request(task))
        buddy = server.submit(_request(task))
        _wait_for(lambda: server.status(victim) is JobStatus.RUNNING)
        assert server.cancel(victim) is True
        jobs = server.drain(timeout=240)
        assert server.status(victim) is JobStatus.CANCELLED
        # The concurrent waiter must still complete: the cancelled job's
        # claims were released, re-claimed and measured by the survivor.
        assert server.status(buddy) is JobStatus.DONE
        assert server.profiler._inflight == {}
        assert all(j.done for j in jobs)
        with pytest.raises(ServingError):
            server.result(victim)

    def test_cancel_terminal_job_returns_false(self, server_factory):
        server = server_factory(workers=1)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        job_id = server.submit(_request(task))
        server.result(job_id, timeout=240)
        assert server.cancel(job_id) is False
        assert server.status(job_id) is JobStatus.DONE


class TestOwnerDeath:
    def test_dead_owner_releases_claims_and_waiter_reclaims(
        self, small_graph, tiny_task
    ):
        """A claimed owner that raises mid-``_execute`` must release its
        claims; a waiter re-claims and measures the keys itself."""
        svc = ProfilingService()
        shared = SharedProfilingService(svc)
        configs = [
            c.canonical()
            for c in default_space().sample(4, rng=np.random.default_rng(5))
        ]
        real_execute = svc._execute
        owner_started = threading.Event()
        owner_release = threading.Event()
        calls: list[int] = []

        def flaky_execute(task, pending, graph, **kwargs):
            calls.append(len(pending))
            if len(calls) == 1:
                owner_started.set()
                owner_release.wait(10)
                raise RuntimeError("owner died mid-measurement")
            return real_execute(task, pending, graph, **kwargs)

        svc._execute = flaky_execute
        outcome: dict = {}

        def owner():
            try:
                shared.profile(tiny_task, configs, graph=small_graph)
            except RuntimeError as exc:
                outcome["owner"] = exc

        def waiter():
            owner_started.wait(10)
            outcome["waiter"] = shared.profile(
                tiny_task, configs, graph=small_graph
            )

        threads = [
            threading.Thread(target=owner),
            threading.Thread(target=waiter),
        ]
        for t in threads:
            t.start()
        owner_started.wait(10)
        time.sleep(0.1)  # let the waiter park on the in-flight events
        owner_release.set()
        for t in threads:
            t.join(30)

        assert isinstance(outcome.get("owner"), RuntimeError)
        unique = len(set(configs))
        assert len(outcome["waiter"]) == len(configs)
        assert shared._inflight == {}  # no orphaned claims
        assert svc.stats.executed == unique  # waiter measured them itself

    def test_commit_failure_releases_claims(self, small_graph, tiny_task):
        """A commit that dies mid-publish (store I/O) must still release
        the owner's claims; committed keys stay served from memory."""
        svc = ProfilingService()
        shared = SharedProfilingService(svc)
        configs = [
            c.canonical()
            for c in default_space().sample(3, rng=np.random.default_rng(9))
        ]
        real_commit = svc.commit
        fail_once = [True]

        def flaky_commit(key, record):
            if fail_once[0]:
                fail_once[0] = False
                raise OSError("disk full mid-publish")
            real_commit(key, record)

        svc.commit = flaky_commit
        with pytest.raises(OSError):
            shared.profile(tiny_task, configs, graph=small_graph)
        assert shared._inflight == {}  # no orphaned claims
        # a later caller is not hung and measures the unpublished keys
        records = shared.profile(tiny_task, configs, graph=small_graph)
        assert len(records) == len(configs)


class TestFairShareQueue:
    def test_round_robin_across_tenants(self):
        q = PriorityJobQueue(fairness=True)
        for i in range(4):
            q.push(f"a{i}", 9, "a")  # chatty tenant, high priority
        q.push("b0", 0, "b")
        q.push("c0", 0, "c")
        order = [q.pop(0) for _ in range(6)]
        # one pop per tenant per cycle: b and c run inside the first cycle
        # despite tenant a's higher priorities
        assert order[:3] == ["a0", "b0", "c0"]
        assert order[3:] == ["a1", "a2", "a3"]

    def test_priority_within_a_lane(self):
        q = PriorityJobQueue(fairness=True)
        q.push("low", 0, "a")
        q.push("high", 5, "a")
        assert [q.pop(0), q.pop(0)] == ["high", "low"]

    def test_weights_skew_the_interleave(self):
        q = PriorityJobQueue(fairness=True, weights={"a": 2})
        for i in range(4):
            q.push(f"a{i}", 0, "a")
        for i in range(4):
            q.push(f"b{i}", 0, "b")
        first6 = [q.pop(0) for _ in range(6)]
        assert sum(1 for j in first6 if j.startswith("a")) == 4
        assert sum(1 for j in first6 if j.startswith("b")) == 2

    def test_max_inflight_gates_pops_until_task_done(self):
        q = PriorityJobQueue(fairness=True, max_inflight=1)
        q.push("a0", 0, "a")
        q.push("a1", 0, "a")
        q.push("b0", 0, "b")
        assert q.pop(0) == "a0"  # a now at quota
        assert q.pop(0) == "b0"
        assert q.pop(0.02) is None  # a1 blocked behind a0's slot
        q.task_done("a")
        assert q.pop(0) == "a1"

    def test_quota_override_per_tenant(self):
        q = PriorityJobQueue(max_inflight=1, quotas={"vip": 2})
        q.push("v0", 0, "vip")
        q.push("v1", 0, "vip")
        q.push("v2", 0, "vip")
        assert q.pop(0) == "v0"
        assert q.pop(0) == "v1"
        assert q.pop(0.02) is None
        q.task_done("vip")
        assert q.pop(0) == "v2"

    def test_pop_timeout_is_a_deadline_not_a_restart(self):
        """Frequent task_done wakeups must not keep resetting pop's timeout."""
        q = PriorityJobQueue(max_inflight=1)
        q.push("a0", 0, "a")
        q.push("a1", 0, "a")
        assert q.pop(0) == "a0"  # lane now at quota; a1 ineligible
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                q.task_done("b")  # releases nothing, but wakes the popper
                time.sleep(0.02)

        churner = threading.Thread(target=churn)
        churner.start()
        t0 = time.monotonic()
        assert q.pop(0.3) is None
        elapsed = time.monotonic() - t0
        stop.set()
        churner.join(5)
        assert elapsed < 2.0  # returned at the deadline despite the churn

    def test_closed_queue_drains_past_quota(self):
        q = PriorityJobQueue(max_inflight=1)
        q.push("a0", 0, "a")
        q.push("a1", 0, "a")
        assert q.pop(0) == "a0"
        q.close()
        assert q.pop() == "a1"  # quota no longer gates a draining queue
        assert q.pop() is None

    def test_rejects_bad_limits(self):
        with pytest.raises(ServingError):
            PriorityJobQueue(max_inflight=0)
        with pytest.raises(ServingError):
            PriorityJobQueue(weights={"a": 0})
        with pytest.raises(ServingError):
            PriorityJobQueue(quotas={"a": -1})


class TestLazyDiscard:
    def test_discard_absent_id_is_tolerated(self):
        q = PriorityJobQueue()
        q.discard("ghost")  # never queued: stale mark, no error
        assert len(q) == 0
        q.push("a", 0)
        assert len(q) == 1  # stale mark does not eat live entries
        assert q.pop(0) == "a"
        assert q.pop(0.01) is None

    def test_push_clears_stale_mark(self):
        q = PriorityJobQueue()
        q.discard("x")
        q.push("x", 0)
        assert q.pop(0) == "x"  # the later push supersedes the stale mark

    def test_push_rejects_still_queued_id(self):
        q = PriorityJobQueue()
        q.push("x", 0)
        with pytest.raises(ServingError):
            q.push("x", 1)  # live duplicate
        q.discard("x")
        with pytest.raises(ServingError):
            q.push("x", 1)  # discarded but still in the heap
        assert q.pop(0.01) is None  # the discarded entry never dispatches
        q.push("x", 0)  # gone from the heap now: re-push is legal again
        assert q.pop(0) == "x"

    def test_len_never_negative(self):
        q = PriorityJobQueue()
        for ghost in ("g1", "g2", "g3"):
            q.discard(ghost)
        assert len(q) == 0
        q.push("a", 0)
        q.discard("a")
        q.discard("a")  # double discard of a queued id
        assert len(q) == 0

    def test_discard_is_constant_time_marking(self):
        q = PriorityJobQueue()
        for i in range(100):
            q.push(f"j{i}", i % 3)
        q.discard("j50")
        popped = [q.pop(0) for _ in range(99)]
        assert "j50" not in popped
        assert len(q) == 0


class TestServerFairness:
    def test_fair_share_starts_starved_tenant_early(self, server_factory):
        server = server_factory(workers=1, autostart=False, fairness=True)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        chatty = [
            server.submit(
                _request(task, priority=9, seed=i, tenant="burst")
            )
            for i in range(3)
        ]
        quiet = server.submit(
            _request(task, priority=0, seed=50, tenant="quiet")
        )
        server.start()
        server.drain(timeout=480)
        # under pure priority the quiet job would start last (priority 0
        # behind three 9s); fair-share hands it the second slot
        assert server.job(quiet).started_seq == 1
        assert {server.status(j) for j in chatty + [quiet]} == {JobStatus.DONE}

    def test_max_inflight_quota_respected(self, server_factory):
        server = server_factory(
            workers=2, autostart=False, max_inflight=1
        )
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        ids = [
            server.submit(_request(task, seed=i, tenant="solo"))
            for i in range(3)
        ]
        running_peak: list[int] = []

        def watch():
            while not all(server.job(j).done for j in ids):
                running_peak.append(
                    sum(
                        1
                        for j in ids
                        if server.status(j) is JobStatus.RUNNING
                    )
                )
                time.sleep(0.01)

        watcher = threading.Thread(target=watch)
        watcher.start()
        server.start()
        server.drain(timeout=480)
        watcher.join(10)
        assert max(running_peak, default=0) <= 1  # quota capped concurrency
        assert all(server.status(j) is JobStatus.DONE for j in ids)


class TestStopDrain:
    def test_stop_with_queued_jobs_leaves_no_pending(self, server_factory):
        server = server_factory(workers=1, autostart=False)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        ids = [server.submit(_request(task, seed=i)) for i in range(4)]
        server.stop()
        assert [server.status(j) for j in ids] == [JobStatus.CANCELLED] * 4

    def test_stop_on_live_server_drains_deterministically(
        self, server_factory, slow_profiling
    ):
        server = server_factory(workers=2, cache_dir=None)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        ids = [server.submit(_request(task, seed=i)) for i in range(6)]
        _wait_for(
            lambda: any(
                server.status(j) is JobStatus.RUNNING for j in ids
            )
        )
        server.stop()
        statuses = [server.status(j) for j in ids]
        assert JobStatus.PENDING not in statuses
        assert JobStatus.RUNNING not in statuses

    def test_submit_racing_stop_never_orphans(self, server_factory):
        server = server_factory(workers=1)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        # simulate stop() winning the race after submit's admission check:
        # the queue is closed but _stopping is not yet visible
        server.queue.close()
        with pytest.raises(ServingError):
            server.submit(_request(task))
        assert server.jobs()[-1].status is JobStatus.CANCELLED


class TestStoreEviction:
    def test_store_never_exceeds_budget_after_any_save(
        self, small_graph, tiny_task, tmp_path
    ):
        budget = 4
        svc = ProfilingService(
            cache_dir=tmp_path / "store", store_budget=budget
        )
        configs = [
            c.canonical()
            for c in default_space().sample(10, rng=np.random.default_rng(2))
        ]
        svc.profile(tiny_task, configs, graph=small_graph)
        assert len(svc.store.keys()) <= budget
        unique = len(set(configs))
        assert svc.stats.evictions == unique - budget

    def test_server_wires_budget_and_reports_evictions(self, server_factory):
        budget = 5
        server = server_factory(workers=1, store_budget=budget)
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        job_id = server.submit(_request(task))
        server.result(job_id, timeout=240)
        measured = server.result(job_id).report.num_ground_truth
        assert measured > budget  # budget actually binding for this job
        assert len(server.store.keys()) <= budget
        assert server.stats.evictions == measured - budget

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            ProfilingService(store_budget=0)


class TestTenantRequests:
    def test_tenant_round_trips_through_spec(self):
        request = NavigationRequest(
            task=TaskSpec(dataset="tiny", epochs=2),
            budget=8,
            tenant="team-a",
        )
        clone = NavigationRequest.from_dict(request.to_dict())
        assert clone == request
        assert clone.tenant == "team-a"

    def test_client_tags_tenant_lane(self, server_factory):
        from repro.serving import NavigationClient

        server = server_factory(workers=1)
        client = NavigationClient(server, tenant="team-c")
        task = TaskSpec(dataset="tiny", arch="sage", epochs=1)
        handle = client.submit(task, budget=8, profile_epochs=1)
        handle.result(timeout=240)
        request = server.job(handle.job_id).request
        assert request.tenant == "team-c"
        assert request.tag == "team-c"


class TestServeCLIFlags:
    def test_fairness_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--jobs",
                "-",
                "--fair",
                "--max-inflight-per-tenant",
                "2",
                "--store-budget",
                "64",
            ]
        )
        assert args.fair
        assert args.max_inflight_per_tenant == 2
        assert args.store_budget == 64

    def test_fairness_defaults_off(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--jobs", "-"])
        assert not args.fair
        assert args.max_inflight_per_tenant is None
        assert args.store_budget is None


class TestGraphMemoization:
    def test_on_demand_dataset_loads_once(self, server_factory, monkeypatch):
        import repro.serving.server as server_mod
        from repro.graphs.generators import powerlaw_community_graph

        loads: list[str] = []
        fixture = powerlaw_community_graph(
            300, num_classes=4, feature_dim=8, seed=3, name="ondemand"
        )

        def counting_load(name):
            loads.append(name)
            return fixture

        monkeypatch.setattr(server_mod, "load_dataset", counting_load)
        server = server_factory(workers=1, graphs={})
        task = TaskSpec(dataset="ondemand", arch="sage", epochs=1)
        for seed in (0, 1):
            job_id = server.submit(_request(task, seed=seed))
            server.result(job_id, timeout=240)
        assert loads == ["ondemand"]  # second job hit the memo
