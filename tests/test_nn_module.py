"""Module/Parameter discovery edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))

    def forward(self, x):
        return x @ self.w


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.children = [Leaf(), Leaf()]
        self.extras = (Parameter(np.ones(3)),)

    def forward(self, x):
        return self.a(x)


class TestDiscovery:
    def test_counts_nested_and_sequence_params(self):
        tree = Tree()
        params = list(tree.parameters())
        # 3 leaves x 1 param + 1 loose parameter in a tuple.
        assert len(params) == 4
        assert tree.num_parameters() == 3 * 4 + 3

    def test_shared_parameter_yielded_once(self):
        tree = Tree()
        tree.b = tree.a  # alias the same module
        assert len(list(tree.parameters())) == 4

    def test_named_modules_paths(self):
        names = dict(Tree().named_modules())
        assert any(".a" in n or n == "a" for n in names)
        assert any("[0]" in n for n in names)

    def test_zero_grad_clears_all(self):
        tree = Tree()
        for p in tree.parameters():
            p.grad = np.ones_like(p.data)
        tree.zero_grad()
        assert all(p.grad is None for p in tree.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))

    def test_state_dict_shape_guard(self):
        tree = Tree()
        state = tree.state_dict()
        state["param_0"] = np.ones((5, 5))
        with pytest.raises(ValueError):
            tree.load_state_dict(state)

    def test_state_dict_count_guard(self):
        tree = Tree()
        state = tree.state_dict()
        del state["param_0"]
        with pytest.raises(ValueError):
            tree.load_state_dict(state)
