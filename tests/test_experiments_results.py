"""Result-type tests for fig1/fig6 helpers using synthetic records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import TaskSpec, TrainingConfig
from repro.experiments.fig6 import Fig6Result
from repro.graphs.profiling import GraphProfile
from repro.runtime.profiler import GroundTruthRecord


def _profile() -> GraphProfile:
    return GraphProfile(
        name="synthetic",
        num_nodes=1000,
        num_edges=8000,
        feature_dim=32,
        num_classes=8,
        avg_degree=8.0,
        max_degree=100,
        degree_std=10.0,
        degree_skew=3.0,
        powerlaw_exponent=2.2,
        feature_bytes=128000,
    )


def _record(config: TrainingConfig, time_s, mem, acc) -> GroundTruthRecord:
    return GroundTruthRecord(
        config=config,
        task=TaskSpec(dataset="synthetic", arch="sage", epochs=1),
        graph_profile=_profile(),
        time_s=time_s,
        memory_bytes=mem,
        accuracy=acc,
        mean_batch_nodes=500.0,
        mean_batch_edges=2500.0,
        hit_rate=0.5,
        t_sample=1e-3,
        t_transfer=1e-3,
        t_replace=0.0,
        t_compute=1e-3,
        num_batches=4,
    )


@pytest.fixture()
def fig6_result() -> Fig6Result:
    configs = [
        TrainingConfig(batch_size=128),
        TrainingConfig(batch_size=256),
        TrainingConfig(batch_size=512),
    ]
    records = [
        _record(configs[0], 1.0, 100.0, 0.9),   # slow, lean, accurate
        _record(configs[1], 0.5, 200.0, 0.8),   # fast, mid
        _record(configs[2], 2.0, 400.0, 0.7),   # dominated everywhere
    ]
    result = Fig6Result(
        records=records,
        guideline_configs={"balance": configs[0], "ex_tm": configs[2]},
    )
    result.guideline_indices = {"balance": 0, "ex_tm": 2}
    return result


class TestFig6Result:
    def test_objectives_orientation(self, fig6_result):
        objs = fig6_result.objectives()
        assert objs.shape == (3, 3)
        # error rate column: 1 - accuracy.
        np.testing.assert_allclose(objs[:, 2], [0.1, 0.2, 0.3])

    def test_plane_projection(self, fig6_result):
        plane = fig6_result.plane((0, 1))
        np.testing.assert_allclose(plane[:, 0], [1.0, 0.5, 2.0])

    def test_front_excludes_dominated(self, fig6_result):
        front = fig6_result.front_indices((0, 1))
        assert 2 not in front
        assert set(front) == {0, 1}

    def test_guideline_on_front_detection(self, fig6_result):
        assert fig6_result.guideline_on_front("balance", (0, 1))
        assert not fig6_result.guideline_on_front("ex_tm", (0, 1))

    def test_accuracy_plane_front(self, fig6_result):
        # memory vs error: (100, .1), (200, .2), (400, .3):
        # the first dominates both others.
        front = fig6_result.front_indices((1, 2))
        assert list(front) == [0]

    def test_3d_nondominance(self, fig6_result):
        # balance's record (1.0, 100, 0.1err) is 3-D Pareto-optimal;
        # ex_tm's record (2.0, 400, 0.3err) is dominated by it everywhere.
        assert fig6_result.guideline_nondominated("balance")
        assert not fig6_result.guideline_nondominated("ex_tm")
