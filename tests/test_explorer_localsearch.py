"""Local-search explorer tests."""

from __future__ import annotations

import pytest

from repro.errors import ExplorationError
from repro.explorer import LocalSearchExplorer, PRIORITY_PRESETS, RuntimeConstraint
from repro.explorer.dfs import DFSExplorer
from repro.graphs.profiling import profile_graph
from repro.hardware import get_platform
from tests.test_explorer import fitted_estimator, tiny_space  # fixtures


class TestLocalSearch:
    def test_finds_feasible_candidates(self, tiny_space, fitted_estimator, small_graph):
        explorer = LocalSearchExplorer(
            tiny_space,
            fitted_estimator,
            profile_graph(small_graph),
            get_platform("rtx4090"),
            restarts=3,
            max_steps=8,
        )
        result = explorer.explore([PRIORITY_PRESETS["balance"]])
        assert result.candidates
        assert result.stats["estimator_calls"] > 0

    def test_cheaper_than_dfs_on_larger_space(
        self, fitted_estimator, small_graph
    ):
        from repro.config import default_space

        profile = profile_graph(small_graph)
        platform = get_platform("rtx4090")
        space = default_space()
        dfs = DFSExplorer(space, fitted_estimator, profile, platform)
        dfs_result = dfs.explore()
        local = LocalSearchExplorer(
            space, fitted_estimator, profile, platform, restarts=2, max_steps=6
        )
        local_result = local.explore([PRIORITY_PRESETS["ex_tm"]])
        assert local_result.stats["estimator_calls"] < dfs_result.evaluated

    def test_best_candidate_competitive_with_dfs(
        self, tiny_space, fitted_estimator, small_graph
    ):
        """On the tiny space local search should find the DFS optimum."""
        from repro.explorer import DecisionMaker, get_target

        profile = profile_graph(small_graph)
        platform = get_platform("rtx4090")
        target = get_target("ex_tm")
        dfs_best = DecisionMaker(
            DFSExplorer(tiny_space, fitted_estimator, profile, platform).explore()
        ).choose(target)
        local = LocalSearchExplorer(
            tiny_space, fitted_estimator, profile, platform,
            restarts=6, max_steps=12,
        )
        local_best = DecisionMaker(
            local.explore([target])
        ).choose(target)
        assert local_best.predicted.time_s <= dfs_best.predicted.time_s * 1.5

    def test_infeasible_constraint_raises(
        self, tiny_space, fitted_estimator, small_graph
    ):
        explorer = LocalSearchExplorer(
            tiny_space,
            fitted_estimator,
            profile_graph(small_graph),
            get_platform("rtx4090"),
            restarts=2,
            max_steps=4,
        )
        with pytest.raises(ExplorationError):
            explorer.explore(
                [PRIORITY_PRESETS["balance"]],
                constraint=RuntimeConstraint(max_memory_bytes=1.0),
            )

    def test_rejects_bad_budgets(self, tiny_space, fitted_estimator, small_graph):
        with pytest.raises(ExplorationError):
            LocalSearchExplorer(
                tiny_space,
                fitted_estimator,
                profile_graph(small_graph),
                get_platform("rtx4090"),
                restarts=0,
            )
