"""Unit and property tests for the CSR graph container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph


def _triangle() -> CSRGraph:
    return CSRGraph.from_edges(3, np.array([0, 1, 2]), np.array([1, 2, 0]))


class TestConstruction:
    def test_from_edges_symmetrises(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]))
        assert g.num_edges == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_from_edges_drops_self_loops(self):
        g = CSRGraph.from_edges(3, np.array([0, 1]), np.array([0, 2]))
        assert g.num_edges == 2  # only 1-2 kept, symmetrised

    def test_from_edges_deduplicates(self):
        g = CSRGraph.from_edges(2, np.array([0, 0, 0]), np.array([1, 1, 1]))
        assert g.num_edges == 2

    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]))

    def test_rejects_mismatched_tail(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([0, 0]))

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            CSRGraph(indptr=np.array([0, 1]), indices=np.array([5]))

    def test_rejects_feature_row_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(
                3,
                np.array([0]),
                np.array([1]),
                features=np.zeros((2, 4), dtype=np.float32),
            )

    def test_rejects_edge_shape_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, np.array([0, 1]), np.array([1]))


class TestViews:
    def test_degree_matches_neighbors(self):
        g = _triangle()
        for v in range(3):
            assert g.degree(v) == g.neighbors(v).size == 2

    def test_degrees_vector(self):
        g = _triangle()
        assert np.array_equal(g.degrees, [2, 2, 2])

    def test_neighbors_out_of_range(self):
        with pytest.raises(GraphError):
            _triangle().neighbors(3)

    def test_degree_out_of_range(self):
        with pytest.raises(GraphError):
            _triangle().degree(-1)

    def test_to_coo_roundtrip(self):
        g = _triangle()
        src, dst = g.to_coo()
        g2 = CSRGraph.from_edges(3, src, dst, symmetrize=False)
        assert np.array_equal(g.indptr, g2.indptr)
        assert np.array_equal(g.indices, g2.indices)

    def test_memory_bytes_counts_everything(self):
        g = CSRGraph.from_edges(
            3,
            np.array([0]),
            np.array([1]),
            features=np.zeros((3, 4), dtype=np.float32),
            labels=np.zeros(3, dtype=np.int64),
        )
        expected = g.indptr.nbytes + g.indices.nbytes + 3 * 4 * 4 + 3 * 8
        assert g.memory_bytes() == expected


class TestGatherNeighborhoods:
    def test_empty_input(self, medium_graph):
        src, dst = medium_graph.gather_neighborhoods(np.array([], dtype=np.int64))
        assert src.size == dst.size == 0

    def test_matches_python_loop(self, medium_graph, rng):
        nodes = rng.choice(medium_graph.num_nodes, 50, replace=False)
        nodes = np.sort(nodes)
        src, dst = medium_graph.gather_neighborhoods(nodes)
        expected_dst = np.concatenate(
            [medium_graph.neighbors(int(v)) for v in nodes]
        )
        expected_src = np.concatenate(
            [np.full(medium_graph.degree(int(v)), v) for v in nodes]
        )
        assert np.array_equal(dst, expected_dst)
        assert np.array_equal(src, expected_src)


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = CSRGraph.from_edges(
            4, np.array([0, 1, 2]), np.array([1, 2, 3])
        )
        sub, nodes = g.induced_subgraph(np.array([0, 1, 2]))
        assert np.array_equal(nodes, [0, 1, 2])
        assert sub.num_nodes == 3
        # edges 0-1 and 1-2 survive (symmetrised), 2-3 is cut.
        assert sub.num_edges == 4

    def test_relabelling_consistent(self, medium_graph, rng):
        nodes = np.sort(rng.choice(medium_graph.num_nodes, 120, replace=False))
        sub, kept = medium_graph.induced_subgraph(nodes)
        for local in range(0, sub.num_nodes, 17):
            global_id = kept[local]
            local_nbrs = kept[sub.neighbors(local)]
            expected = np.intersect1d(medium_graph.neighbors(int(global_id)), kept)
            assert np.array_equal(np.sort(local_nbrs), expected)

    def test_slices_features_and_labels(self, small_graph):
        sub, nodes = small_graph.induced_subgraph(np.arange(10))
        assert sub.features.shape == (10, small_graph.feature_dim)
        assert np.array_equal(sub.labels, small_graph.labels[nodes])

    def test_rejects_out_of_range(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.induced_subgraph(np.array([small_graph.num_nodes]))

    def test_rows_remain_sorted(self, medium_graph, rng):
        nodes = np.sort(rng.choice(medium_graph.num_nodes, 200, replace=False))
        sub, _ = medium_graph.induced_subgraph(nodes)
        for v in range(0, sub.num_nodes, 23):
            row = sub.neighbors(v)
            assert np.all(np.diff(row) >= 0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    edges=st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)), min_size=1, max_size=80
    ),
)
def test_from_edges_properties(n, edges):
    """Symmetry, dedup and degree-sum invariants on arbitrary edge lists."""
    src = np.array([min(a, n - 1) for a, _ in edges])
    dst = np.array([min(b, n - 1) for _, b in edges])
    g = CSRGraph.from_edges(n, src, dst)
    # Degree sum equals edge slots.
    assert int(g.degrees.sum()) == g.num_edges
    # Symmetry: u in N(v) <=> v in N(u); no self loops; no duplicates.
    for v in range(n):
        nbrs = g.neighbors(v)
        assert v not in nbrs
        assert np.unique(nbrs).size == nbrs.size
        for u in nbrs:
            assert v in g.neighbors(int(u))


class TestDedupEdges:
    """np.lexsort-based dedup: immune to the int64 overflow of the old
    ``src * num_nodes + dst`` flat key."""

    def test_sorted_and_unique(self):
        from repro.graphs.csr import dedup_edges

        src = np.array([2, 0, 2, 0, 1, 2], dtype=np.int64)
        dst = np.array([1, 3, 1, 3, 0, 0], dtype=np.int64)
        s, d = dedup_edges(src, dst)
        assert s.tolist() == [0, 1, 2, 2]
        assert d.tolist() == [3, 0, 0, 1]

    def test_adversarially_large_node_ids(self):
        from repro.graphs.csr import dedup_edges

        # Ids near 2**62: any flat key src * N + dst overflows int64 for
        # every N > 1, silently colliding distinct pairs.  Lexsort must
        # keep these edges distinct and correctly ordered.
        big = np.int64(2**62)
        src = np.array([big, big - 1, big, big - 1, 0], dtype=np.int64)
        dst = np.array([big - 1, big, big - 1, 0, big], dtype=np.int64)
        s, d = dedup_edges(src, dst)
        assert s.tolist() == [0, big - 1, big - 1, big]
        assert d.tolist() == [big, 0, big, big - 1]

    def test_empty(self):
        from repro.graphs.csr import dedup_edges

        s, d = dedup_edges(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert s.size == 0 and d.size == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=0,
            max_size=80,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_set_reference(self, pairs):
        from repro.graphs.csr import dedup_edges

        src = np.array([p[0] for p in pairs], dtype=np.int64)
        dst = np.array([p[1] for p in pairs], dtype=np.int64)
        s, d = dedup_edges(src, dst)
        assert sorted(set(pairs)) == list(zip(s.tolist(), d.tolist(), strict=True))
