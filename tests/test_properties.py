"""Hypothesis property tests for cross-cutting invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimator.validation import r2_score
from repro.explorer.pareto import pareto_mask
from repro.hardware import DeviceCache, get_platform, t_sample, t_transfer
from repro.hardware.costmodel import model_costing, t_compute


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(0, 50),
    policy=st.sampled_from(["none", "fifo", "lru"]),
    ops=st.lists(
        st.lists(st.integers(0, 99), min_size=1, max_size=20),
        min_size=1,
        max_size=15,
    ),
)
def test_cache_occupancy_never_exceeds_capacity(capacity, policy, ops):
    """Under any lookup/update sequence the cache respects its capacity."""
    cache = DeviceCache(100, capacity, policy=policy)
    for batch in ops:
        nodes = np.array(batch, dtype=np.int64)
        mask = cache.lookup(nodes)
        cache.update(nodes[~mask])
        assert cache.occupancy <= cache.capacity
        assert cache.hot_nodes().size == cache.occupancy


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(1, 50),
    batches=st.lists(
        st.lists(st.integers(0, 99), min_size=1, max_size=10),
        min_size=2,
        max_size=10,
    ),
)
def test_cache_hits_only_resident_vertices(capacity, batches):
    """A lookup hit implies the vertex was admitted earlier and not evicted."""
    cache = DeviceCache(100, capacity, policy="lru")
    ever_admitted: set[int] = set()
    for batch in batches:
        nodes = np.array(batch, dtype=np.int64)
        mask = cache.lookup(nodes)
        for node, hit in zip(nodes, mask, strict=True):
            if hit:
                assert int(node) in ever_admitted
        cache.update(nodes[~mask])
        ever_admitted.update(cache.hot_nodes().tolist())


@settings(max_examples=30, deadline=None)
@given(
    expanded=st.integers(0, 100_000),
    missed=st.integers(0, 50_000),
    n_attr=st.integers(1, 600),
)
def test_cost_functions_nonnegative_and_monotone(expanded, missed, n_attr):
    platform = get_platform("rtx4090")
    t1 = t_sample(expanded, platform)
    t2 = t_sample(expanded + 1000, platform)
    assert 0 <= t1 <= t2
    tr1 = t_transfer(missed, n_attr, platform)
    tr2 = t_transfer(missed + 100, n_attr, platform)
    assert 0 <= tr1 <= tr2


@settings(max_examples=30, deadline=None)
@given(
    nodes=st.integers(1, 20_000),
    edges=st.integers(0, 200_000),
    hidden=st.sampled_from([16, 32, 64, 128]),
    arch=st.sampled_from(["gcn", "sage", "gat"]),
)
def test_compute_time_monotone_in_graph_size(nodes, edges, hidden, arch):
    platform = get_platform("a100")
    kwargs = dict(in_dim=64, hidden_dim=hidden, out_dim=16, num_layers=2)
    small = t_compute(model_costing(arch, nodes, edges, **kwargs), platform)
    large = t_compute(
        model_costing(arch, nodes * 2, edges * 2 + 1, **kwargs), platform
    )
    assert 0 < small <= large


@settings(max_examples=40, deadline=None)
@given(
    points=st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)),
        min_size=1,
        max_size=40,
    )
)
def test_pareto_mask_properties(points):
    """Front is non-empty; no front point dominates another front point."""
    objs = np.array(points)
    mask = pareto_mask(objs)
    assert mask.any()
    front = objs[mask]
    for i in range(front.shape[0]):
        for j in range(front.shape[0]):
            if i == j:
                continue
            strictly_better = np.all(front[i] <= front[j]) and np.any(
                front[i] < front[j]
            )
            assert not strictly_better


@settings(max_examples=30, deadline=None)
@given(
    y=st.lists(st.floats(-100, 100), min_size=3, max_size=30),
    noise=st.floats(0, 1),
)
def test_r2_upper_bound(y, noise):
    """R2 of any prediction never exceeds 1."""
    y_true = np.array(y)
    rng = np.random.default_rng(0)
    y_pred = y_true + noise * rng.normal(size=y_true.size)
    assert r2_score(y_true, y_pred) <= 1.0 + 1e-12
