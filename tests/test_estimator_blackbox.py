"""CART / random-forest regressor tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimatorError
from repro.estimator import DecisionTreeRegressor, RandomForestRegressor
from repro.estimator.validation import mse, r2_score


def _piecewise_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 3))
    y = np.where(x[:, 0] > 0, 5.0, -5.0) + 0.5 * (x[:, 1] > 1)
    return x, y


class TestDecisionTree:
    def test_fits_piecewise_constant(self):
        x, y = _piecewise_data()
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        pred = tree.predict(x)
        assert r2_score(y, pred) > 0.95

    def test_single_leaf_predicts_mean(self):
        x = np.zeros((10, 2))
        y = np.arange(10.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        np.testing.assert_allclose(tree.predict(np.zeros((1, 2))), y.mean())

    def test_depth_limited(self):
        x, y = _piecewise_data(500, seed=1)
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf_respected(self):
        x, y = _piecewise_data(40, seed=2)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=15).fit(x, y)
        # With leaves of >=15 of 40 samples, at most 2 levels of splits fit.
        assert tree.depth() <= 2

    def test_predict_before_fit(self):
        with pytest.raises(EstimatorError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_feature_count_checked(self):
        x, y = _piecewise_data(50)
        tree = DecisionTreeRegressor().fit(x, y)
        with pytest.raises(EstimatorError):
            tree.predict(np.zeros((1, 5)))

    def test_rejects_empty(self):
        with pytest.raises(EstimatorError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(EstimatorError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(EstimatorError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_1d_predict_input(self):
        x, y = _piecewise_data(50)
        tree = DecisionTreeRegressor().fit(x, y)
        assert tree.predict(x[0]).shape == (1,)

    def test_handles_infinite_feature(self):
        x = np.array([[0.0], [1.0], [np.inf], [np.inf]])
        y = np.array([0.0, 0.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(x, y)
        assert np.all(np.isfinite(tree.predict(x[:2])))


class TestRandomForest:
    def test_beats_single_tree_on_noise(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-2, 2, size=(400, 4))
        y = x[:, 0] * 2 + np.sin(3 * x[:, 1]) + rng.normal(0, 0.3, 400)
        x_test = rng.uniform(-2, 2, size=(200, 4))
        y_test = x_test[:, 0] * 2 + np.sin(3 * x_test[:, 1])
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=1).fit(x, y)
        forest = RandomForestRegressor(n_estimators=25, max_depth=10).fit(x, y)
        assert mse(y_test, forest.predict(x_test)) < mse(y_test, tree.predict(x_test))

    def test_deterministic_given_seed(self):
        x, y = _piecewise_data(200, seed=4)
        f1 = RandomForestRegressor(n_estimators=5, random_state=7).fit(x, y)
        f2 = RandomForestRegressor(n_estimators=5, random_state=7).fit(x, y)
        np.testing.assert_array_equal(f1.predict(x), f2.predict(x))

    def test_rejects_bad_params(self):
        with pytest.raises(EstimatorError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(EstimatorError):
            RandomForestRegressor(max_features=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(EstimatorError):
            RandomForestRegressor().predict(np.zeros((1, 2)))


class TestMetrics:
    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_mse_basic(self):
        assert mse(np.array([0.0, 0.0]), np.array([1.0, 1.0])) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(EstimatorError):
            r2_score(np.zeros(3), np.zeros(4))
        with pytest.raises(EstimatorError):
            mse(np.zeros(3), np.zeros(4))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), depth=st.integers(1, 8))
def test_tree_predictions_within_target_range(seed, depth):
    """Tree predictions are convex combinations of training targets."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(60, 3))
    y = rng.normal(size=60)
    tree = DecisionTreeRegressor(max_depth=depth).fit(x, y)
    pred = tree.predict(rng.normal(size=(30, 3)))
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9
