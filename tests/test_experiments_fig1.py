"""Fig. 1 experiment functions on the tiny fixture (fast integration)."""

from __future__ import annotations

import pytest

import repro.runtime.backend as backend_mod
from repro.experiments.fig1 import run_fig1a, run_fig1b


@pytest.fixture(autouse=True)
def _tiny_dataset(monkeypatch, small_graph):
    """Route dataset loading to the 400-node fixture so the sweeps are fast."""
    monkeypatch.setattr(backend_mod, "load_dataset", lambda name: small_graph)


class TestFig1a:
    def test_tradeoff_monotone(self):
        points = run_fig1a(epochs=1, cache_ratios=(0.0, 0.3, 0.6))
        times = [p.epoch_time_ms for p in points]
        mems = [p.memory_mib for p in points]
        assert times[0] > times[-1]
        assert mems[0] < mems[-1]

    def test_hit_rate_tracks_ratio(self):
        points = run_fig1a(epochs=1, cache_ratios=(0.0, 0.5))
        assert points[0].hit_rate == 0.0
        assert points[1].hit_rate > 0.2


class TestFig1b:
    def test_curves_have_per_epoch_series(self):
        curves = run_fig1b(epochs=2)
        assert {c.method for c in curves} == {"pagraph_low", "2pgraph"}
        for c in curves:
            assert len(c.epoch_times_ms) == 2
            assert len(c.accuracies) == 2

    def test_2pgraph_faster(self):
        curves = run_fig1b(epochs=2)
        by = {c.method: c for c in curves}
        assert (
            sum(by["2pgraph"].epoch_times_ms)
            < sum(by["pagraph_low"].epoch_times_ms)
        )
