"""Shared fixtures: small deterministic graphs and tasks.

Also the runtime-lockdep hook-up: ``pytest --sanitize-locks`` (or
``REPRO_SANITIZE=1``) runs the whole session under
:mod:`repro.analysis.sanitizer` and ``--sanitize-report PATH`` (or
``REPRO_SANITIZE_REPORT``) writes the observed lock graph for
``repro lint --verify-dynamic PATH``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.settings import TaskSpec, TrainingConfig
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import powerlaw_community_graph


def pytest_addoption(parser: pytest.Parser) -> None:
    group = parser.getgroup("repro")
    group.addoption(
        "--sanitize-locks",
        action="store_true",
        default=False,
        help="run the suite under the repro runtime lock sanitizer",
    )
    group.addoption(
        "--sanitize-report",
        default=None,
        metavar="PATH",
        help="write the observed lock graph (implies --sanitize-locks)",
    )


@pytest.fixture(scope="session", autouse=True)
def lock_sanitizer(request: pytest.FixtureRequest):
    """Session-wide sanitizer when asked for; a no-op (zero overhead,
    nothing patched) otherwise."""
    from repro.analysis import sanitizer

    report = request.config.getoption("--sanitize-report")
    wanted = (
        request.config.getoption("--sanitize-locks")
        or report is not None
        or sanitizer.enabled_from_env()
    )
    if not wanted:
        yield None
        return
    san = sanitizer.enable()
    try:
        yield san
    finally:
        sanitizer.disable()
        import os

        report = report or os.environ.get("REPRO_SANITIZE_REPORT") or None
        if report:
            san.write_report(report)


@pytest.fixture(scope="session")
def small_graph() -> CSRGraph:
    """A 400-node labelled power-law community graph (fast to train on)."""
    return powerlaw_community_graph(
        400,
        num_classes=5,
        feature_dim=16,
        min_degree=3,
        max_degree=40,
        homophily=0.8,
        feature_noise=0.8,
        seed=7,
        name="tiny",
    )


@pytest.fixture(scope="session")
def medium_graph() -> CSRGraph:
    """A 2000-node graph for sampler/cache statistics tests."""
    return powerlaw_community_graph(
        2000,
        num_classes=8,
        feature_dim=24,
        min_degree=4,
        max_degree=100,
        homophily=0.7,
        feature_noise=1.5,
        seed=11,
        name="medium",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture()
def tiny_task() -> TaskSpec:
    return TaskSpec(dataset="tiny", arch="sage", epochs=2, lr=0.02)


@pytest.fixture()
def tiny_config() -> TrainingConfig:
    return TrainingConfig(
        batch_size=64,
        sampler="sage",
        hop_list=(4, 3),
        cache_ratio=0.2,
        cache_policy="static",
        hidden_channels=16,
    )
