"""The static analysis pass: every rule has a triggering fixture and a
passing fixture, the baseline round-trips deterministically, and — the
self-check — the repository itself lints clean with an acyclic lock graph."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    default_baseline_path,
    default_paths,
    default_root,
    run_analysis,
)
from repro.analysis.baseline import (
    load_baseline,
    render_baseline,
    split_findings,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.core import Finding


def analyze_source(tmp_path: Path, source: str, name: str = "mod.py"):
    """Write one fixture module and run the full analysis over it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_analysis([path], tmp_path)


def rules_fired(result) -> set[str]:
    return {finding.rule for finding in result.findings}


# ------------------------------------------------------------------- LOCK001
class TestGuardedFields:
    def test_unguarded_write_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    self._n += 1
            """,
        )
        assert [f.rule for f in result.findings] == ["LOCK001"]
        assert "Counter._n" in result.findings[0].message

    def test_unguarded_read_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def peek(self):
                    return self._n
            """,
        )
        assert rules_fired(result) == {"LOCK001"}

    def test_guarded_access_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._n += 1
                    return True
            """,
        )
        assert result.findings == []

    def test_condition_alias_satisfies_guard(self, tmp_path):
        # Holding Condition(self._lock) IS holding self._lock.
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._item = None  # guarded-by: _lock

                def put(self, item):
                    with self._cond:
                        self._item = item
                        self._cond.notify()
            """,
        )
        assert result.findings == []

    def test_holds_annotation_trusts_helper(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = []  # guarded-by: _lock

                def _head(self):  # holds: _lock
                    return self._rows[0]

                def head(self):
                    with self._lock:
                        return self._head()
            """,
        )
        assert result.findings == []

    def test_nested_closure_inherits_held_lock(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rows = []  # guarded-by: _lock

                def snapshot(self):
                    with self._lock:
                        return [row for row in self._rows]
            """,
        )
        assert result.findings == []

    def test_inline_suppression(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def racy_peek(self):
                    return self._n  # lint: disable=LOCK001
            """,
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_init_is_exempt(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock
                    self._n = 1
            """,
        )
        assert result.findings == []


# ------------------------------------------------------------------- LOCK002
class TestLockOrder:
    def test_cycle_detected(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading


            class Alpha:
                def __init__(self, beta: "Beta"):
                    self._lock = threading.Lock()
                    self.beta = beta

                def poke(self):
                    with self._lock:
                        self.beta.poke_back(self)

                def touch(self):
                    with self._lock:
                        pass


            class Beta:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke_back(self, alpha: Alpha):
                    with self._lock:
                        alpha.touch()
            """,
        )
        assert "LOCK002" in rules_fired(result)
        assert not result.graph.acyclic
        labels = {
            (edge.src.label, edge.dst.label) for edge in result.graph.edges
        }
        assert ("Alpha._lock", "Beta._lock") in labels
        assert ("Beta._lock", "Alpha._lock") in labels

    def test_consistent_order_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading


            class Outer:
                def __init__(self, inner: "Inner"):
                    self._lock = threading.Lock()
                    self.inner = inner

                def work(self):
                    with self._lock:
                        self.inner.bump()


            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._n += 1
            """,
        )
        assert result.findings == []
        assert result.graph.acyclic
        labels = {
            (edge.src.label, edge.dst.label) for edge in result.graph.edges
        }
        assert labels == {("Outer._lock", "Inner._lock")}
        order = [node.label for node in result.graph.topological_order()]
        assert order.index("Outer._lock") < order.index("Inner._lock")

    def test_reacquire_nonreentrant_lock_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def _flush(self):
                    with self._lock:
                        pass

                def save(self):
                    with self._lock:
                        self._flush()
            """,
        )
        assert "LOCK002" in rules_fired(result)
        assert "re-acquired" in result.findings[0].message

    def test_reacquire_rlock_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.RLock()

                def _flush(self):
                    with self._lock:
                        pass

                def save(self):
                    with self._lock:
                        self._flush()
            """,
        )
        assert result.findings == []

    def test_graph_report_renders(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading


            class Outer:
                def __init__(self, inner: "Inner"):
                    self._lock = threading.Lock()
                    self.inner = inner

                def work(self):
                    with self._lock:
                        self.inner.bump()


            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        pass
            """,
        )
        report = result.graph.render()
        assert "Outer._lock -> Inner._lock" in report
        assert "acyclic" in report


# ------------------------------------------------------------------- LOCK003
class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def spin(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
        )
        assert rules_fired(result) == {"LOCK003"}
        assert "time.sleep" in result.findings[0].message

    def test_wait_without_timeout_under_lock_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def block(self):
                    with self._cond:
                        self._cond.wait()
            """,
        )
        assert rules_fired(result) == {"LOCK003"}

    def test_wait_with_timeout_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)

                def block(self):
                    with self._cond:
                        self._cond.wait(1.0)
            """,
        )
        assert result.findings == []

    def test_sleep_outside_lock_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading
            import time

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()

                def spin(self):
                    with self._lock:
                        pass
                    time.sleep(0.1)
            """,
        )
        assert result.findings == []

    def test_profiling_call_under_lock_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Scheduler:
                def __init__(self, service):
                    self._lock = threading.Lock()
                    self.service = service

                def run(self, task):
                    with self._lock:
                        return self.service.profile(task)
            """,
        )
        assert rules_fired(result) == {"LOCK003"}


# ------------------------------------------------------------------ WIRE00x
class TestWireDrift:
    def test_unserialized_field_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Msg:
                a: int
                b: int

                def to_dict(self):
                    return {"a": self.a}

                @classmethod
                def from_dict(cls, payload):
                    return cls(a=payload["a"], b=payload.get("b", 0))
            """,
        )
        assert "WIRE001" in rules_fired(result)
        assert any("Msg.b" in f.message for f in result.findings)

    def test_unparsed_field_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Msg:
                a: int
                b: int = 0

                def to_dict(self):
                    return {"a": self.a, "b": self.b}

                @classmethod
                def from_dict(cls, payload):
                    return cls(a=payload["a"])
            """,
        )
        fired = rules_fired(result)
        assert "WIRE002" in fired
        assert "WIRE001" not in fired

    def test_symmetric_codec_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Msg:
                a: int
                b: int

                def to_dict(self):
                    return {"a": self.a, "b": self.b}

                @classmethod
                def from_dict(cls, payload):
                    return cls(a=payload["a"], b=payload["b"])
            """,
        )
        assert result.findings == []

    def test_generic_codec_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from dataclasses import asdict, dataclass

            @dataclass
            class Msg:
                a: int
                b: int

                def to_dict(self):
                    return asdict(self)

                @classmethod
                def from_dict(cls, payload):
                    return cls(**payload)
            """,
        )
        assert result.findings == []

    def test_one_sided_key_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Msg:
                a: int

                def to_dict(self):
                    return {"a": self.a, "stamp": 1}

                @classmethod
                def from_dict(cls, payload):
                    return cls(a=payload["a"])
            """,
        )
        assert rules_fired(result) == {"WIRE003"}
        assert "stamp" in result.findings[0].message

    def test_dynamic_key_loop_counts_as_mention(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Msg:
                a: int
                b: int

                def to_dict(self):
                    return {"a": self.a, "b": self.b}

                @classmethod
                def from_dict(cls, payload):
                    kwargs = {}
                    for key in ("a", "b"):
                        kwargs[key] = payload[key]
                    return cls(a=kwargs["a"], b=kwargs["b"])
            """,
        )
        assert result.findings == []


# ----------------------------------------------------------------- PLUMB001
class TestPlumbing:
    def test_dropped_seat_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def inner(task, cancel=None):
                return task

            def outer(task, cancel=None):
                return inner(task)
            """,
        )
        assert rules_fired(result) == {"PLUMB001"}
        assert "'cancel'" in result.findings[0].message

    def test_forwarded_seat_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def inner(task, cancel=None, on_progress=None):
                return task

            def outer(task, cancel=None, on_progress=None):
                return inner(task, cancel=cancel, on_progress=on_progress)
            """,
        )
        assert result.findings == []

    def test_positional_forward_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def inner(task, cancel=None):
                return task

            def outer(task, cancel=None):
                return inner(task, cancel)
            """,
        )
        assert result.findings == []

    def test_kwargs_splat_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def inner(task, cancel=None):
                return task

            def outer(task, cancel=None, **kwargs):
                return inner(task, **kwargs)
            """,
        )
        assert result.findings == []

    def test_callee_without_seat_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def inner(task):
                return task

            def outer(task, cancel=None):
                if cancel is not None:
                    cancel.raise_if_cancelled()
                return inner(task)
            """,
        )
        assert result.findings == []

    def test_method_seat_resolved_by_type(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            class Service:
                def profile(self, task, cancel=None):
                    return task

            class Facade:
                def __init__(self):
                    self.service = Service()

                def profile(self, task, cancel=None):
                    return self.service.profile(task)
            """,
        )
        assert rules_fired(result) == {"PLUMB001"}


def analyze_files(tmp_path: Path, files: dict[str, str]):
    """Write a multi-module fixture project and analyze the whole tree."""
    for name, source in files.items():
        path = tmp_path / name
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_analysis([tmp_path], tmp_path)


_ENDPT_PROTOCOL = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class PingRequest:
        nonce: int

    @dataclass(frozen=True)
    class PingResponse:
        nonce: int
"""


# ---------------------------------------------------------------- ENDPT001/2
class TestEndpointParity:
    def test_unrouted_request_and_response_fire(self, tmp_path):
        result = analyze_files(
            tmp_path,
            {
                "protocol.py": _ENDPT_PROTOCOL,
                "handler.py": """
                    from http.server import BaseHTTPRequestHandler

                    class Handler(BaseHTTPRequestHandler):
                        def do_GET(self):
                            pass
                """,
                "client.py": """
                    class Client:
                        def _call(self, method, path):
                            return {}
                """,
            },
        )
        assert rules_fired(result) == {"ENDPT001", "ENDPT002"}
        messages = " ".join(f.message for f in result.findings)
        assert "PingRequest" in messages
        assert "PingResponse" in messages
        assert len(result.findings) == 4  # both sides of both dataclasses

    def test_orphan_dict_literal_route_fires(self, tmp_path):
        result = analyze_files(
            tmp_path,
            {
                "handler.py": """
                    from http.server import BaseHTTPRequestHandler

                    class Handler(BaseHTTPRequestHandler):
                        def do_GET(self):
                            self._reply(200, {"ok": True})
                """,
                "protocol.py": "",
            },
        )
        assert rules_fired(result) == {"ENDPT002"}
        assert "raw dict literal" in result.findings[0].message

    def test_full_parity_passes(self, tmp_path):
        result = analyze_files(
            tmp_path,
            {
                "protocol.py": _ENDPT_PROTOCOL,
                "handler.py": """
                    from http.server import BaseHTTPRequestHandler
                    from protocol import PingRequest, PingResponse

                    class Handler(BaseHTTPRequestHandler):
                        def do_POST(self):
                            request = PingRequest.from_wire({})
                            self._reply(
                                200, PingResponse(request.nonce).to_wire()
                            )
                """,
                "client.py": """
                    from protocol import PingRequest, PingResponse

                    class Client:
                        def _call(self, method, path, body):
                            return {}

                        def ping(self, nonce):
                            payload = self._call(
                                "POST", "/ping", PingRequest(nonce).to_wire()
                            )
                            return PingResponse.from_wire(payload)
                """,
            },
        )
        assert rules_fired(result) == set()

    def test_client_subclass_counts(self, tmp_path):
        # FleetClient(RemoteNavigationClient) has no _call of its own; the
        # base's makes its module a client module.
        result = analyze_files(
            tmp_path,
            {
                "protocol.py": _ENDPT_PROTOCOL,
                "handler.py": """
                    from http.server import BaseHTTPRequestHandler
                    from protocol import PingRequest, PingResponse

                    class Handler(BaseHTTPRequestHandler):
                        def do_POST(self):
                            request = PingRequest.from_wire({})
                            self._reply(
                                200, PingResponse(request.nonce).to_wire()
                            )
                """,
                "client.py": """
                    class BaseClient:
                        def _call(self, method, path, body):
                            return {}
                """,
                "subclient.py": """
                    from client import BaseClient
                    from protocol import PingRequest, PingResponse

                    class PingClient(BaseClient):
                        def ping(self, nonce):
                            payload = self._call(
                                "POST", "/ping", PingRequest(nonce).to_wire()
                            )
                            return PingResponse.from_wire(payload)
                """,
            },
        )
        assert rules_fired(result) == set()


# --------------------------------------------------------------- METRIC001/2
class TestMetricHygiene:
    def test_bad_name_and_kind_conflict_fire(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            class Service:
                def observe(self):
                    self.metrics.inc("BadName")
                    self.metrics.inc("requests")
                    self.metrics.gauge("requests", lambda: 0)
            """,
        )
        assert rules_fired(result) == {"METRIC001"}
        messages = " ".join(f.message for f in result.findings)
        assert "not snake_case" in messages
        assert "both a counter" in messages

    def test_duplicate_gauge_registration_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            class Service:
                def bind_a(self):
                    self.metrics.gauge("depth", lambda: 1)

                def bind_b(self):
                    self.metrics.gauge("depth", lambda: 2)
            """,
        )
        assert rules_fired(result) == {"METRIC001"}
        assert "2 sites" in result.findings[0].message

    def test_label_mixing_and_leak_fire(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def labeled(name, **labels):
                return name

            class Service:
                def observe(self, executor_id):
                    self.metrics.inc("claims")
                    self.metrics.inc(labeled("claims", executor=executor_id))
            """,
        )
        assert rules_fired(result) == {"METRIC002"}
        messages = " ".join(f.message for f in result.findings)
        assert "inconsistent label sets" in messages
        assert "never removed" in messages

    def test_removed_labeled_family_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            def labeled(name, **labels):
                return name

            class Service:
                def observe(self, executor_id):
                    self.metrics.inc(labeled("claims", executor=executor_id))

                def forget(self, executor_id):
                    self.metrics.remove(
                        labeled("claims", executor=executor_id)
                    )
            """,
        )
        assert rules_fired(result) == set()

    def test_fstring_loop_family_resolved(self, tmp_path):
        # The f-string-over-constant-tuple idiom the server's gauge
        # binding uses must resolve to concrete names.
        result = analyze_source(
            tmp_path,
            """
            class Service:
                def bind(self):
                    for name in ("executed", "Hits"):
                        self.metrics.gauge(f"profiling_{name}", lambda: 0)
            """,
        )
        assert rules_fired(result) == {"METRIC001"}
        assert "profiling_Hits" in result.findings[0].message

    def test_dynamic_names_skipped(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            class Service:
                def observe(self, status):
                    self.metrics.inc(f"jobs_{status.value}")
            """,
        )
        assert rules_fired(result) == set()


# -------------------------------------------------------------------- RES001
class TestResourceLifecycle:
    def test_unjoined_thread_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Runner:
                def launch(self):
                    self._worker = threading.Thread(target=self._loop)
                    self._worker.start()
            """,
        )
        assert rules_fired(result) == {"RES001"}
        assert "without daemon=True" in result.findings[0].message

    def test_daemon_thread_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Runner:
                def launch(self):
                    self._worker = threading.Thread(
                        target=self._loop, daemon=True
                    )
                    self._worker.start()
            """,
        )
        assert rules_fired(result) == set()

    def test_joined_elsewhere_in_class_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            import threading

            class Runner:
                def launch(self):
                    self._worker = threading.Thread(target=self._loop)
                    self._worker.start()

                def close(self):
                    self._worker.join()
            """,
        )
        assert rules_fired(result) == set()

    def test_unshutdown_pool_fires(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(fn):
                pool = ThreadPoolExecutor(max_workers=2)
                return pool.submit(fn)
            """,
        )
        assert rules_fired(result) == {"RES001"}
        assert "ThreadPoolExecutor" in result.findings[0].message

    def test_pool_with_block_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(fn):
                with ThreadPoolExecutor(max_workers=2) as pool:
                    return pool.submit(fn).result()
            """,
        )
        assert rules_fired(result) == set()

    def test_pool_shutdown_in_scope_passes(self, tmp_path):
        result = analyze_source(
            tmp_path,
            """
            from concurrent.futures import ThreadPoolExecutor

            def run(fn):
                pool = ThreadPoolExecutor(max_workers=2)
                try:
                    return pool.submit(fn).result()
                finally:
                    pool.shutdown()
            """,
        )
        assert rules_fired(result) == set()


# ------------------------------------------------------------------ baseline
class TestBaseline:
    def _findings(self):
        return [
            Finding("b.py", 9, "LOCK001", "msg two"),
            Finding("a.py", 3, "WIRE001", "msg one"),
        ]

    def test_render_is_deterministic(self):
        forward = render_baseline(self._findings())
        backward = render_baseline(list(reversed(self._findings())))
        assert forward == backward
        payload = json.loads(forward)
        assert [e["path"] for e in payload["findings"]] == ["a.py", "b.py"]

    def test_split_findings_partitions(self):
        findings = self._findings()
        baseline = json.loads(render_baseline(findings[:1]))
        accepted = {
            entry["fingerprint"]: entry for entry in baseline["findings"]
        }
        new, baselined, stale = split_findings(findings, accepted)
        assert [f.path for f in new] == ["a.py"]
        assert [f.path for f in baselined] == ["b.py"]
        assert stale == []

    def test_stale_entries_reported(self):
        baseline = json.loads(render_baseline(self._findings()))
        accepted = {
            entry["fingerprint"]: entry for entry in baseline["findings"]
        }
        new, baselined, stale = split_findings([], accepted)
        assert new == [] and baselined == []
        assert len(stale) == 2

    def test_fingerprint_survives_line_drift(self):
        moved = Finding("a.py", 300, "WIRE001", "msg one")
        assert moved.fingerprint == self._findings()[1].fingerprint

    def test_fix_baseline_roundtrip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            textwrap.dedent(
                """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._n = 0  # guarded-by: _lock

                    def bump(self):
                        self._n += 1
                """
            ),
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        args = [str(bad), "--root", str(tmp_path), "--baseline", str(baseline)]
        assert lint_main(args) == 1
        assert lint_main([*args, "--fix-baseline"]) == 0
        first = baseline.read_text(encoding="utf-8")
        assert lint_main(args) == 0  # baselined now
        assert lint_main([*args, "--fix-baseline"]) == 0
        assert baseline.read_text(encoding="utf-8") == first  # no churn
        capsys.readouterr()

    def test_load_baseline_missing_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}
        assert load_baseline(None) == {}


# ----------------------------------------------------------------------- CLI
class TestCli:
    def test_json_format(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")
        code = lint_main(
            [str(good), "--root", str(tmp_path), "--no-baseline",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["lock_order"]["acyclic"] is True

    def test_graph_artifact_written(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n", encoding="utf-8")
        graph = tmp_path / "out" / "graph.txt"
        code = lint_main(
            [str(good), "--root", str(tmp_path), "--no-baseline",
             "--graph", str(graph)]
        )
        assert code == 0
        assert "acyclic" in graph.read_text(encoding="utf-8")
        capsys.readouterr()

    def test_repro_cli_exposes_lint(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["lint", "--rules"])
        assert args.command == "lint"
        assert args.rules is True


# ---------------------------------------------------------------- self-check
class TestSelfCheck:
    @pytest.fixture(scope="class")
    def repo_result(self):
        root = default_root()
        return run_analysis(
            default_paths(root),
            root,
            baseline_path=default_baseline_path(root),
        )

    def test_repo_is_clean(self, repo_result):
        assert repo_result.new == [], [
            finding.render() for finding in repo_result.new
        ]

    def test_lock_graph_is_acyclic(self, repo_result):
        assert repo_result.graph.acyclic
        assert repo_result.graph.topological_order() is not None

    def test_known_edges_present(self, repo_result):
        labels = {
            (edge.src.label, edge.dst.label)
            for edge in repo_result.graph.edges
        }
        # The server cancels under its own lock and discards from the queue;
        # the shared scheduler bumps stats under its claim lock.
        assert ("NavigationServer._lock", "PriorityJobQueue._lock") in labels
        assert (
            "SharedProfilingService._lock",
            "ProfilingStats._lock",
        ) in labels
        # The fleet dispatcher touches registry liveness and releases
        # leases under its own lock; both are leaves, so the order stays
        # acyclic with the rest of the serving stack.
        assert (
            "FleetDispatcher._lock",
            "ExecutorRegistry._lock",
        ) in labels
        assert ("FleetDispatcher._lock", "LeaseTable._lock") in labels
        # The lease sweeper bumps expiry counters under the dispatcher
        # lock; the typed ``metrics`` parameter is what lets LOCK002
        # resolve the call (the runtime sanitizer observes this edge).
        assert (
            "FleetDispatcher._lock",
            "MetricsRegistry._lock",
        ) in labels

    def test_known_locks_modeled(self, repo_result):
        locks = {node.label for node in repo_result.graph.nodes}
        assert {
            "NavigationServer._lock",
            "PriorityJobQueue._lock",
            "EventBuffer._cond",
            "MetricsRegistry._lock",
            "ResultStore._lock",
            "SharedProfilingService._lock",
            "ProfilingStats._lock",
            "FleetDispatcher._lock",
            "ExecutorRegistry._lock",
            "LeaseTable._lock",
        } <= locks
