"""Generator, dataset, profiling, partition and reorder tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    DATASETS,
    apply_order,
    bfs_order,
    bfs_partition,
    cache_priority_order,
    degree_histogram,
    degree_order,
    load_dataset,
    locality_score,
    partition_locality,
    powerlaw_community_graph,
    powerlaw_degrees,
    powerlaw_exponent_mle,
    powerlaw_graph,
    profile_graph,
    reorder_graph,
    train_val_test_split,
)


class TestPowerlawDegrees:
    def test_range_respected(self):
        rng = np.random.default_rng(0)
        deg = powerlaw_degrees(1000, min_degree=3, max_degree=50, rng=rng)
        assert deg.min() >= 3 and deg.max() <= 50

    def test_even_sum(self):
        rng = np.random.default_rng(1)
        deg = powerlaw_degrees(999, rng=rng)
        assert deg.sum() % 2 == 0

    def test_heavier_tail_with_smaller_exponent(self):
        rng = np.random.default_rng(2)
        flat = powerlaw_degrees(5000, exponent=1.5, max_degree=100, rng=rng)
        steep = powerlaw_degrees(5000, exponent=3.5, max_degree=100, rng=rng)
        assert flat.mean() > steep.mean()

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GraphError):
            powerlaw_degrees(0, rng=rng)
        with pytest.raises(GraphError):
            powerlaw_degrees(10, exponent=0.5, rng=rng)
        with pytest.raises(GraphError):
            powerlaw_degrees(10, min_degree=20, max_degree=5, rng=rng)


class TestCommunityGraph:
    def test_reproducible(self):
        g1 = powerlaw_community_graph(300, seed=5)
        g2 = powerlaw_community_graph(300, seed=5)
        assert np.array_equal(g1.indices, g2.indices)
        assert np.array_equal(g1.features, g2.features)

    def test_homophily_raises_intra_edges(self):
        lo = powerlaw_community_graph(2000, homophily=0.1, num_classes=4, seed=1)
        hi = powerlaw_community_graph(2000, homophily=0.9, num_classes=4, seed=1)

        def intra_fraction(g):
            src, dst = g.to_coo()
            return float(np.mean(g.labels[src] == g.labels[dst]))

        assert intra_fraction(hi) > intra_fraction(lo) + 0.2

    def test_feature_noise_controls_separability(self):
        clean = powerlaw_community_graph(500, feature_noise=0.1, seed=2)
        noisy = powerlaw_community_graph(500, feature_noise=5.0, seed=2)

        def centroid_spread(g):
            spread = 0.0
            for c in range(g.num_classes):
                members = g.features[g.labels == c]
                if members.shape[0] > 1:
                    spread += float(members.std())
            return spread

        assert centroid_spread(noisy) > centroid_spread(clean)

    def test_rejects_bad_homophily(self):
        with pytest.raises(GraphError):
            powerlaw_community_graph(100, homophily=1.5)

    def test_rejects_single_class(self):
        with pytest.raises(GraphError):
            powerlaw_community_graph(100, num_classes=1)

    def test_topology_only_variant(self):
        g = powerlaw_graph(500, seed=3)
        assert g.features is None and g.labels is None
        assert g.num_edges > 0


class TestDatasets:
    def test_aliases_resolve(self):
        assert load_dataset("ar") is load_dataset("ogbn-arxiv")
        assert load_dataset("pr") is load_dataset("products")

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            load_dataset("cora")

    def test_relative_scale_ordering(self):
        pr = load_dataset("pr")
        ar = load_dataset("ar")
        rd = load_dataset("rd")
        rd2 = load_dataset("rd2")
        assert pr.num_nodes > rd.num_nodes > ar.num_nodes
        # Reddit denser than its sparsified re-release Reddit2.
        assert rd.num_edges / rd.num_nodes > rd2.num_edges / rd2.num_nodes

    def test_registry_has_class_counts(self):
        for spec in set(DATASETS.values()):
            assert spec.num_classes >= 2

    def test_split_disjoint_and_complete(self):
        train, val, test = train_val_test_split(100, seed=1)
        merged = np.concatenate([train, val, test])
        assert np.array_equal(np.sort(merged), np.arange(100))

    def test_split_fractions(self):
        train, val, test = train_val_test_split(1000, train_frac=0.5, val_frac=0.25)
        assert train.size == 500 and val.size == 250 and test.size == 250

    def test_split_rejects_overflow(self):
        with pytest.raises(GraphError):
            train_val_test_split(10, train_frac=0.8, val_frac=0.3)


class TestProfiling:
    def test_profile_fields(self, medium_graph):
        p = profile_graph(medium_graph)
        assert p.num_nodes == medium_graph.num_nodes
        assert p.avg_degree == pytest.approx(medium_graph.degrees.mean())
        assert p.max_degree == medium_graph.degrees.max()
        assert p.feature_dim == medium_graph.feature_dim

    def test_degree_histogram_counts(self, medium_graph):
        values, counts = degree_histogram(medium_graph)
        assert counts.sum() == medium_graph.num_nodes
        assert np.all(counts > 0)

    def test_mle_recovers_exponent_roughly(self):
        rng = np.random.default_rng(4)
        deg = powerlaw_degrees(
            50_000, exponent=2.5, min_degree=2, max_degree=500, rng=rng
        )
        est = powerlaw_exponent_mle(deg, k_min=2)
        assert 2.0 < est < 3.0

    def test_mle_degenerate_returns_inf(self):
        # No degree reaches k_min => nothing to estimate from.
        assert powerlaw_exponent_mle(np.array([1, 1, 1]), k_min=5) == float("inf")

    def test_as_features_finite_for_real_graph(self, medium_graph):
        feats = profile_graph(medium_graph).as_features()
        assert np.all(np.isfinite(feats))


class TestPartition:
    def test_partition_covers_all(self, medium_graph):
        part = bfs_partition(medium_graph, 8)
        assert part.min() >= 0 and part.max() < 8
        assert part.shape == (medium_graph.num_nodes,)

    def test_partition_balanced(self, medium_graph):
        # BFS growth respects the per-region target; the round-robin fill of
        # unreached vertices may overshoot slightly.
        part = bfs_partition(medium_graph, 4)
        sizes = np.bincount(part)
        target = -(-medium_graph.num_nodes // 4)
        assert sizes.max() <= int(target * 1.1)

    def test_locality_better_than_random(self, medium_graph):
        part = bfs_partition(medium_graph, 8)
        rng = np.random.default_rng(0)
        random_part = rng.integers(0, 8, medium_graph.num_nodes)
        assert partition_locality(part, medium_graph) > partition_locality(
            random_part, medium_graph
        )

    def test_rejects_bad_counts(self, medium_graph):
        with pytest.raises(GraphError):
            bfs_partition(medium_graph, 0)
        with pytest.raises(GraphError):
            bfs_partition(medium_graph, medium_graph.num_nodes + 1)

    def test_cache_priority_is_degree_descending(self, medium_graph):
        order = cache_priority_order(medium_graph)
        degs = medium_graph.degrees[order]
        assert np.all(np.diff(degs) <= 0)


class TestReorder:
    def test_degree_order_permutation(self, medium_graph):
        order = degree_order(medium_graph)
        assert np.unique(order).size == medium_graph.num_nodes

    def test_bfs_order_covers_components(self, medium_graph):
        order = bfs_order(medium_graph)
        assert np.unique(order).size == medium_graph.num_nodes

    def test_bfs_order_isolated_tail_full_permutation(self):
        # A connected head component followed by a tail of isolated
        # vertices: BFS exhausts the head, then the scan loop must pick up
        # every isolated trailing vertex — a truncated (non-permutation)
        # order would make apply_order reject a perfectly valid graph.
        from repro.graphs.csr import CSRGraph

        head = np.array([0, 1, 2, 3])
        g = CSRGraph.from_edges(
            10, head, np.roll(head, 1), symmetrize=True
        )  # vertices 4..9 are isolated
        order = bfs_order(g)
        assert order.shape == (10,)
        assert np.array_equal(np.sort(order), np.arange(10))
        reordered = apply_order(g, order)
        assert reordered.num_edges == g.num_edges

    def test_bfs_order_empty_graph(self):
        from repro.graphs.csr import CSRGraph

        g = CSRGraph(indptr=np.zeros(1, dtype=np.int64), indices=np.empty(0, dtype=np.int64))
        order = bfs_order(g)
        assert order.shape == (0,)
        assert order.dtype == np.int64

    def test_apply_order_preserves_structure(self, small_graph):
        order = degree_order(small_graph)
        reordered = apply_order(small_graph, order)
        assert reordered.num_nodes == small_graph.num_nodes
        assert reordered.num_edges == small_graph.num_edges
        # Degree multiset preserved.
        assert np.array_equal(
            np.sort(reordered.degrees), np.sort(small_graph.degrees)
        )

    def test_apply_order_moves_features(self, small_graph):
        order = degree_order(small_graph)
        reordered = apply_order(small_graph, order)
        np.testing.assert_array_equal(reordered.features[0], small_graph.features[order[0]])
        np.testing.assert_array_equal(reordered.labels, small_graph.labels[order])

    def test_apply_order_rejects_non_permutation(self, small_graph):
        with pytest.raises(GraphError):
            apply_order(small_graph, np.zeros(small_graph.num_nodes, dtype=np.int64))

    def test_bfs_improves_locality(self, medium_graph):
        shuffled = apply_order(
            medium_graph, np.random.default_rng(5).permutation(medium_graph.num_nodes)
        )
        improved = reorder_graph(shuffled, "bfs")
        assert locality_score(improved) > locality_score(shuffled)

    def test_reorder_none_is_identity(self, small_graph):
        assert reorder_graph(small_graph, "none") is small_graph

    def test_unknown_strategy(self, small_graph):
        with pytest.raises(GraphError):
            reorder_graph(small_graph, "hilbert")


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(50, 400),
    classes=st.integers(2, 8),
    seed=st.integers(0, 100),
)
def test_community_graph_properties(n, classes, seed):
    """Generated graphs are valid CSR with consistent labels/features."""
    g = powerlaw_community_graph(
        n, num_classes=classes, feature_dim=8, seed=seed
    )
    assert g.num_nodes == n
    assert g.labels.min() >= 0 and g.labels.max() < classes
    assert g.features.shape == (n, 8)
    assert int(g.degrees.sum()) == g.num_edges
