"""Sampler tests: unified abstraction invariants and per-strategy behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.sampling import (
    BatchIterator,
    BiasedNeighborSampler,
    LayerSampler,
    NeighborSampler,
    SaintSampler,
    fanout_step,
    hot_set_weights,
    saturating_expectation,
    tree_growth_bound,
)


class TestFanoutStep:
    def test_respects_k(self, medium_graph, rng):
        frontier = np.arange(50)
        out = fanout_step(medium_graph, frontier, 3, rng=rng)
        # Every output vertex is a neighbour of some frontier vertex.
        all_nbrs = np.unique(
            np.concatenate([medium_graph.neighbors(int(v)) for v in frontier])
        )
        assert np.all(np.isin(out, all_nbrs))

    def test_k_larger_than_degree_takes_all(self, medium_graph, rng):
        frontier = np.array([0])
        out = fanout_step(medium_graph, frontier, 10_000, rng=rng)
        assert np.array_equal(out, np.unique(medium_graph.neighbors(0)))

    def test_per_vertex_cap(self, medium_graph, rng):
        # With k=1 the output size cannot exceed the frontier size.
        frontier = np.arange(40)
        out = fanout_step(medium_graph, frontier, 1, rng=rng)
        assert out.size <= frontier.size

    def test_rejects_nonpositive_k(self, medium_graph, rng):
        with pytest.raises(SamplingError):
            fanout_step(medium_graph, np.array([0]), 0, rng=rng)

    def test_weights_bias_selection(self, medium_graph):
        """Heavily-weighted vertices should be picked far more often."""
        rng = np.random.default_rng(5)
        hot = np.arange(200)
        weights = hot_set_weights(medium_graph.num_nodes, hot, 1.0)
        frontier = np.arange(200, 400)
        hot_hits = cold_hits = 0
        for _ in range(30):
            picked = fanout_step(medium_graph, frontier, 2, weights=weights, rng=rng)
            hot_hits += int(np.isin(picked, hot).sum())
            cold_hits += int((~np.isin(picked, hot)).sum())
        unbiased_hot = unbiased_cold = 0
        rng2 = np.random.default_rng(6)
        for _ in range(30):
            picked = fanout_step(medium_graph, frontier, 2, rng=rng2)
            unbiased_hot += int(np.isin(picked, hot).sum())
            unbiased_cold += int((~np.isin(picked, hot)).sum())
        biased_ratio = hot_hits / max(hot_hits + cold_hits, 1)
        unbiased_ratio = unbiased_hot / max(unbiased_hot + unbiased_cold, 1)
        assert biased_ratio > unbiased_ratio

    def test_rejects_nonpositive_weights(self, medium_graph, rng):
        weights = np.zeros(medium_graph.num_nodes)
        with pytest.raises(SamplingError):
            fanout_step(medium_graph, np.array([0]), 2, weights=weights, rng=rng)


class TestNeighborSampler:
    def test_targets_inside_subgraph(self, medium_graph, rng):
        sampler = NeighborSampler([5, 3])
        targets = rng.choice(medium_graph.num_nodes, 64, replace=False)
        batch = sampler.sample(medium_graph, targets, rng=rng)
        recovered = batch.nodes[batch.target_index]
        assert np.array_equal(np.sort(recovered), np.unique(targets))

    def test_batch_grows_with_fanout(self, medium_graph, rng):
        targets = rng.choice(medium_graph.num_nodes, 64, replace=False)
        small = NeighborSampler([2]).sample(medium_graph, targets, rng=rng)
        large = NeighborSampler([8, 4]).sample(medium_graph, targets, rng=rng)
        assert large.num_nodes > small.num_nodes

    def test_rejects_empty_fanouts(self):
        with pytest.raises(SamplingError):
            NeighborSampler([])

    def test_rejects_empty_targets(self, medium_graph, rng):
        with pytest.raises(SamplingError):
            NeighborSampler([2]).sample(medium_graph, np.array([]), rng=rng)

    def test_fanout_profile(self):
        assert NeighborSampler([10, 5]).fanout_profile() == [10.0, 5.0]

    def test_hops(self):
        assert NeighborSampler([10, 5]).expected_hops() == 2


class TestLayerSampler:
    def test_layer_budget_respected(self, medium_graph, rng):
        sampler = LayerSampler([100, 50])
        targets = rng.choice(medium_graph.num_nodes, 64, replace=False)
        batch = sampler.sample(medium_graph, targets, rng=rng)
        # |Vi| <= |B0| + Δ1 + Δ2
        assert batch.num_nodes <= 64 + 100 + 50

    def test_importance_prefers_high_degree(self, medium_graph):
        rng = np.random.default_rng(3)
        targets = rng.choice(medium_graph.num_nodes, 200, replace=False)
        imp = LayerSampler([80], importance=True)
        uni = LayerSampler([80], importance=False)
        deg_imp = deg_uni = 0.0
        for _ in range(15):
            b1 = imp.sample(medium_graph, targets, rng=rng)
            b2 = uni.sample(medium_graph, targets, rng=rng)
            deg_imp += medium_graph.degrees[b1.nodes].mean()
            deg_uni += medium_graph.degrees[b2.nodes].mean()
        assert deg_imp > deg_uni

    def test_fanout_profile_eq3(self):
        sampler = LayerSampler([100, 50])
        sampler._last_batch_hint = 50
        profile = sampler.fanout_profile()
        assert profile[0] == pytest.approx(2.0)  # Δ1/|B0| = 100/50
        assert profile[1] == pytest.approx(0.5)  # Δ2/Δ1 = 50/100

    def test_rejects_empty_sizes(self):
        with pytest.raises(SamplingError):
            LayerSampler([])


class TestSaintSampler:
    def test_loss_targets_cover_subgraph(self, medium_graph, rng):
        sampler = SaintSampler(walk_length=4)
        targets = rng.choice(medium_graph.num_nodes, 64, replace=False)
        batch = sampler.sample(medium_graph, targets, rng=rng)
        assert batch.num_targets == batch.num_nodes

    def test_loss_on_roots_only(self, medium_graph, rng):
        sampler = SaintSampler(walk_length=4, loss_on_all=False)
        targets = rng.choice(medium_graph.num_nodes, 64, replace=False)
        batch = sampler.sample(medium_graph, targets, rng=rng)
        assert batch.num_targets == np.unique(targets).size

    def test_fanout_profile_single_neighbor(self):
        assert SaintSampler(walk_length=3).fanout_profile() == [1.0, 1.0, 1.0]

    def test_walks_stay_connected(self, medium_graph, rng):
        """Every visited vertex is reachable within walk_length hops."""
        sampler = SaintSampler(walk_length=2)
        targets = np.array([0, 1])
        batch = sampler.sample(medium_graph, targets, rng=rng)
        # 2-hop BFS ball around the roots must contain the batch.
        ball = set(targets.tolist())
        frontier = set(targets.tolist())
        for _ in range(2):
            nxt = set()
            for v in frontier:
                nxt.update(medium_graph.neighbors(v).tolist())
            ball |= nxt
            frontier = nxt
        assert set(batch.nodes.tolist()) <= ball

    def test_rejects_bad_walk_length(self):
        with pytest.raises(SamplingError):
            SaintSampler(walk_length=0)

    def test_isolated_tail_node_does_not_crash(self, rng):
        """A degree-0 walker at the CSR tail has indptr == len(indices);
        the masked neighbour gather must not index past the edge array."""
        from repro.graphs.csr import CSRGraph

        # 0-1 connected, 2 isolated and last: indptr[2] == indices.size.
        graph = CSRGraph(
            indptr=np.array([0, 1, 2, 2]),
            indices=np.array([1, 0]),
        )
        sampler = SaintSampler(walk_length=3)
        batch = sampler.sample(graph, np.array([0, 2]), rng=rng)
        assert 2 in batch.nodes.tolist()  # the stranded root stays put


class TestBiasedSampler:
    def test_zero_bias_matches_unbiased_distribution(self, medium_graph):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        targets = np.arange(100)
        biased = BiasedNeighborSampler([4, 2], bias_rate=0.0)
        plain = NeighborSampler([4, 2])
        b1 = biased.sample(medium_graph, targets, rng=rng1)
        b2 = plain.sample(medium_graph, targets, rng=rng2)
        # Identical RNG stream + no weights => identical samples.
        assert np.array_equal(b1.nodes, b2.nodes)

    def test_bias_concentrates_on_hot_set(self, medium_graph):
        rng = np.random.default_rng(10)
        hot = np.arange(300)
        targets = np.arange(300, 500)
        biased = BiasedNeighborSampler([4, 2], bias_rate=1.0, hot_nodes=hot)
        plain = NeighborSampler([4, 2])
        hot_frac_b = hot_frac_p = 0.0
        for _ in range(10):
            bb = biased.sample(medium_graph, targets, rng=rng)
            bp = plain.sample(medium_graph, targets, rng=rng)
            hot_frac_b += np.isin(bb.nodes, hot).mean()
            hot_frac_p += np.isin(bp.nodes, hot).mean()
        assert hot_frac_b > hot_frac_p

    def test_set_hot_nodes_invalidates_cache(self, medium_graph, rng):
        sampler = BiasedNeighborSampler([3], bias_rate=0.5, hot_nodes=np.arange(10))
        sampler.sample(medium_graph, np.arange(20), rng=rng)
        sampler.set_hot_nodes(np.arange(50))
        assert sampler._weights is None

    def test_rejects_bad_bias(self):
        with pytest.raises(SamplingError):
            BiasedNeighborSampler([3], bias_rate=1.5)


class TestBatchIterator:
    def test_covers_all_nodes(self, rng):
        nodes = np.arange(100)
        it = BatchIterator(nodes, 32, seed=0)
        seen = np.concatenate(list(it.epoch()))
        assert np.array_equal(np.sort(seen), nodes)

    def test_len_matches_iteration(self):
        it = BatchIterator(np.arange(100), 32)
        assert len(it) == len(list(it.epoch())) == 4

    def test_drop_last(self):
        it = BatchIterator(np.arange(100), 32, drop_last=True)
        batches = list(it.epoch())
        assert len(batches) == 3
        assert all(b.size == 32 for b in batches)

    def test_partition_order_groups(self):
        nodes = np.arange(100)
        part = (nodes // 50).astype(np.int64)  # two partitions
        it = BatchIterator(nodes, 25, order="partition", partition=part, seed=1)
        batches = list(it.epoch())
        # Each batch stays within one partition (50 % 25 == 0).
        for b in batches:
            assert np.unique(part[b]).size == 1

    def test_sequential_order(self):
        it = BatchIterator(np.arange(10), 5, order="sequential")
        first = next(iter(it.epoch()))
        assert np.array_equal(first, np.arange(5))

    def test_partition_requires_vector(self):
        with pytest.raises(SamplingError):
            BatchIterator(np.arange(10), 5, order="partition")

    def test_rejects_empty_nodes(self):
        with pytest.raises(SamplingError):
            BatchIterator(np.array([]), 5)

    def test_epochs_shuffle_differently(self):
        it = BatchIterator(np.arange(64), 64, seed=3)
        first = next(iter(it.epoch())).copy()
        second = next(iter(it.epoch())).copy()
        assert not np.array_equal(first, second)


class TestExpectation:
    def test_tree_growth_bound(self):
        assert tree_growth_bound(10, [2.0, 1.0]) == pytest.approx(10 * 3 * 2)

    def test_tau_exponent(self):
        assert tree_growth_bound(10, [3.0], tau=0.5) == pytest.approx(20.0)

    def test_saturation_caps_at_n(self):
        assert saturating_expectation(1e9, 1000) <= 1000

    def test_saturation_monotone(self):
        lo = saturating_expectation(100, 1000)
        hi = saturating_expectation(500, 1000)
        assert hi > lo

    def test_small_bound_nearly_linear(self):
        assert saturating_expectation(10, 100_000) == pytest.approx(10, rel=0.01)

    def test_rejects_bad_args(self):
        with pytest.raises(SamplingError):
            tree_growth_bound(0, [1.0])
        with pytest.raises(SamplingError):
            saturating_expectation(10, 0)


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(1, 200),
    fanouts=st.lists(st.floats(0.0, 20.0), min_size=1, max_size=4),
)
def test_expectation_bound_property(batch, fanouts):
    """Saturating expectation never exceeds the tree-growth bound or |V|."""
    n = 5000
    bound = tree_growth_bound(batch, fanouts)
    expected = float(saturating_expectation(bound, n))
    assert expected <= min(bound + 1e-6, n)
