"""Distributed profiling fleet tests.

Covers the fleet bottom-up: the consistent-hash ring and lease table as
units, the registry's membership/liveness rules, the wire shapes for the
``/v1/fleet/*`` endpoints, the dispatcher's claim/commit/expiry semantics
driven in-process with fabricated records (no training), and finally real
end-to-end navigations over HTTP — fleet-vs-local result parity, the
warm-store rerun, idempotent commit replay, and the chaos scenario where
one of two executors is killed mid-job and the lease machinery hands its
work to the survivor without losing or duplicating a run.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import TaskSpec
from repro.config.settings import TrainingConfig
from repro.errors import (
    ProtocolError,
    ServingError,
    UnknownExecutorError,
)
from repro.runtime.parallel import (
    ProfilingService,
    graph_fingerprint,
    predicted_cost,
    record_to_dict,
)
from repro.serving import NavigationClient, NavigationServer
from repro.serving.fleet import (
    ClaimGrant,
    ExecutorRegistry,
    FleetClient,
    FleetDispatcher,
    HashRing,
    LeaseTable,
    ProfilingExecutor,
)
from repro.serving.metrics import MetricsRegistry, labeled
from repro.serving.transport import IDEMPOTENCY_HEADER, NavigationHTTPServer
from repro.serving.transport.protocol import (
    PROTOCOL_VERSION,
    FleetClaimRequest,
    FleetClaimResponse,
    FleetCommitRequest,
    FleetCommitResponse,
    FleetRegisterRequest,
    FleetRegisterResponse,
    graph_from_wire,
    graph_to_wire,
    task_from_wire,
    task_to_wire,
)


def _task(**kwargs) -> TaskSpec:
    kwargs.setdefault("dataset", "tiny")
    kwargs.setdefault("arch", "sage")
    kwargs.setdefault("epochs", 1)
    return TaskSpec(**kwargs)


def _config(base: TrainingConfig, **overrides) -> TrainingConfig:
    data = base.to_dict()
    data.update(overrides)
    return TrainingConfig.from_dict(data)


def _post(url: str, body, headers: dict | None = None):
    """Raw POST; returns (status, payload) without raising on HTTP errors."""
    data = body if isinstance(body, bytes) else json.dumps(body).encode()
    request = urllib.request.Request(url, data=data, method="POST")
    request.add_header("Content-Type", "application/json")
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


# ---------------------------------------------------------------- hash ring
class TestHashRing:
    def test_empty_ring_routes_nowhere(self):
        assert HashRing().route("anything") is None

    def test_routing_is_deterministic_and_total(self):
        ring = HashRing()
        ring.add("a")
        ring.add("b")
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.route(key) for key in keys]
        assert set(first) <= {"a", "b"}
        assert [ring.route(key) for key in keys] == first

    def test_virtual_nodes_spread_load(self):
        ring = HashRing(replicas=64)
        for node in ("a", "b", "c"):
            ring.add(node)
        owners = {ring.route(f"key-{i}") for i in range(300)}
        assert owners == {"a", "b", "c"}

    def test_removal_only_remaps_the_lost_arcs(self):
        ring = HashRing()
        ring.add("a")
        ring.add("b")
        keys = [f"key-{i}" for i in range(200)]
        before = {key: ring.route(key) for key in keys}
        ring.remove("b")
        assert len(ring) == 1
        for key in keys:
            if before[key] == "a":  # survivors keep their arcs
                assert ring.route(key) == "a"
            else:  # orphans all land on the survivor
                assert ring.route(key) == "a"

    def test_add_is_idempotent(self):
        ring = HashRing(replicas=8)
        ring.add("a")
        ring.add("a")
        assert len(ring) == 1
        ring.remove("a")
        assert ring.route("key") is None


# --------------------------------------------------------------- lease table
class TestLeaseTable:
    def test_issue_get_release(self):
        table = LeaseTable()
        lease = table.issue("ex-0", ["k1", "k2"], ttl=5.0)
        assert lease.lease_id == "lease-000000"
        assert lease.keys == ("k1", "k2")
        assert table.get(lease.lease_id) is lease
        assert len(table) == 1
        assert table.release(lease.lease_id) is lease
        assert table.release(lease.lease_id) is None
        assert len(table) == 0

    def test_expiry_pops_overdue_leases(self):
        table = LeaseTable()
        dead = table.issue("ex-0", ["k1"], ttl=0.01)
        alive = table.issue("ex-1", ["k2"], ttl=60.0)
        time.sleep(0.03)
        expired = table.expired()
        assert [lease.lease_id for lease in expired] == [dead.lease_id]
        assert table.get(dead.lease_id) is None
        assert table.get(alive.lease_id) is not None

    def test_renew_owner_extends_only_that_owner(self):
        table = LeaseTable()
        mine = table.issue("ex-0", ["k1"], ttl=0.05)
        other = table.issue("ex-1", ["k2"], ttl=0.05)
        assert table.renew_owner("ex-0", ttl=60.0) == 1
        time.sleep(0.1)
        expired = {lease.lease_id for lease in table.expired()}
        assert expired == {other.lease_id}
        assert table.get(mine.lease_id) is not None

    def test_renewal_never_shortens_a_deadline(self):
        table = LeaseTable()
        lease = table.issue("ex-0", ["k1"], ttl=60.0)
        table.renew_owner("ex-0", ttl=0.001)
        assert table.get(lease.lease_id).deadline == lease.deadline


# ----------------------------------------------------------------- registry
class TestExecutorRegistry:
    def test_register_assigns_sequential_ids(self):
        registry = ExecutorRegistry()
        assert registry.register(workers=2).executor_id == "ex-0000"
        assert registry.register(workers=1).executor_id == "ex-0001"
        assert len(registry) == 2

    def test_touch_unknown_raises(self):
        registry = ExecutorRegistry()
        with pytest.raises(UnknownExecutorError):
            registry.touch("ex-9999")

    def test_reregistration_keeps_counters_and_bumps_generation(self):
        registry = ExecutorRegistry()
        info = registry.register(workers=1)
        info.claims = 7
        again = registry.register(workers=4, executor_id=info.executor_id)
        assert again is info
        assert again.claims == 7
        assert again.workers == 4
        assert again.generation == 1

    def test_deregister_and_route(self):
        registry = ExecutorRegistry()
        assert registry.route("key") is None
        info = registry.register()
        assert registry.route("key") == info.executor_id
        assert registry.deregister(info.executor_id) is True
        assert registry.deregister(info.executor_id) is False
        assert registry.route("key") is None

    def test_live_and_prune_horizons(self):
        registry = ExecutorRegistry()
        stale = registry.register()
        fresh = registry.register()
        stale.last_seen -= 100.0
        live = registry.live(horizon=10.0)
        assert [info.executor_id for info in live] == [fresh.executor_id]
        removed = registry.prune(horizon=10.0)
        assert [info.executor_id for info in removed] == [stale.executor_id]
        assert len(registry) == 1


# ------------------------------------------------------------------- wire
class TestFleetWire:
    def test_register_round_trip(self):
        request = FleetRegisterRequest(workers=3, executor_id="ex-0007")
        assert FleetRegisterRequest.from_wire(request.to_wire()) == request
        fresh = FleetRegisterRequest(workers=1)
        wire = fresh.to_wire()
        assert "executor_id" not in wire
        assert FleetRegisterRequest.from_wire(wire) == fresh
        response = FleetRegisterResponse(
            executor_id="ex-0007", heartbeat_seconds=1.5, lease_ttl=4.5
        )
        assert FleetRegisterResponse.from_wire(response.to_wire()) == response

    def test_register_rejects_bad_workers(self):
        with pytest.raises(ProtocolError):
            FleetRegisterRequest.from_wire(
                {"protocol": PROTOCOL_VERSION, "workers": 0}
            )

    def test_claim_round_trip_and_empty(self):
        request = FleetClaimRequest(
            executor_id="ex-0000", max_candidates=4, timeout=2.0
        )
        assert FleetClaimRequest.from_wire(request.to_wire()) == request
        grant = FleetClaimResponse(
            lease_id="lease-000001",
            ttl=10.0,
            task={"dataset": "tiny"},
            dataset="tiny",
            fingerprint="abc",
            keys=["k1"],
            configs=[{"batch_size": 64}],
        )
        back = FleetClaimResponse.from_wire(grant.to_wire())
        assert back == grant
        assert not back.empty
        assert FleetClaimResponse.from_wire(
            FleetClaimResponse(lease_id=None, ttl=10.0).to_wire()
        ).empty

    def test_claim_response_rejects_misaligned_batch(self):
        with pytest.raises(ProtocolError):
            FleetClaimResponse.from_wire(
                {
                    "protocol": PROTOCOL_VERSION,
                    "lease_id": "lease-000001",
                    "ttl": 1.0,
                    "keys": ["k1", "k2"],
                    "configs": [{}],
                }
            )

    def test_commit_round_trip_and_header_fallback(self):
        request = FleetCommitRequest(
            executor_id="ex-0000",
            lease_id="lease-000001",
            keys=["k1"],
            records=[{"accuracy": 0.5}],
            idempotency_key="lease-000001",
        )
        assert FleetCommitRequest.from_wire(request.to_wire()) == request
        # header supplies the key when the body omits it; body wins otherwise
        bare = FleetCommitRequest(
            executor_id="ex-0000", lease_id=None, keys=[], records=[]
        )
        via_header = FleetCommitRequest.from_wire(
            bare.to_wire(), header_key="retry-1"
        )
        assert via_header.idempotency_key == "retry-1"
        body_wins = FleetCommitRequest.from_wire(
            request.to_wire(), header_key="retry-1"
        )
        assert body_wins.idempotency_key == "lease-000001"
        response = FleetCommitResponse(accepted=3, duplicates=1, replayed=True)
        assert FleetCommitResponse.from_wire(response.to_wire()) == response

    def test_commit_rejects_malformed_batches(self):
        base = {
            "protocol": PROTOCOL_VERSION,
            "executor_id": "ex-0000",
            "lease_id": None,
        }
        with pytest.raises(ProtocolError):
            FleetCommitRequest.from_wire(
                dict(base, keys=["k1", "k2"], records=[{}])
            )
        with pytest.raises(ProtocolError):
            FleetCommitRequest.from_wire(
                dict(base, keys=["k1"], records=["not-a-dict"])
            )

    def test_task_wire_round_trip(self, tiny_task):
        assert task_from_wire(task_to_wire(tiny_task)) == tiny_task
        with pytest.raises(ProtocolError):
            task_from_wire({"dataset": "tiny"})  # missing fields

    def test_graph_wire_round_trip_preserves_fingerprint(self, small_graph):
        back = graph_from_wire(graph_to_wire(small_graph))
        assert graph_fingerprint(back) == graph_fingerprint(small_graph)
        assert back.num_nodes == small_graph.num_nodes
        with pytest.raises(ProtocolError):
            graph_from_wire({"name": "tiny"})  # no arrays at all


# ---------------------------------------------------------------- dispatcher
@pytest.fixture()
def dispatcher():
    """A dispatcher over a bare in-memory service (fabricated records —
    none of these tests run training)."""
    service = ProfilingService()
    return FleetDispatcher(service, lease_ttl=0.2, metrics=MetricsRegistry())


def _start_batch(dispatcher, task, configs, graph, keys):
    """Run run_batch on a thread; returns (thread, out-dict)."""
    out: dict = {}

    def runner():
        try:
            out["records"] = dispatcher.run_batch(
                dispatcher.service, task, configs, graph, keys=keys
            )
        except BaseException as exc:  # surfaced by the test, not swallowed
            out["error"] = exc

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    return thread, out


def _finish(thread, out):
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "run_batch never completed"
    if "error" in out:
        raise out["error"]
    return out["records"]


class TestFleetDispatcher:
    def test_accepts_only_with_live_executors(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        assert not dispatcher.accepts(tiny_task, [tiny_config], small_graph)
        info = dispatcher.register(workers=1)
        assert dispatcher.accepts(tiny_task, [tiny_config], small_graph)
        dispatcher.deregister(info.executor_id)
        assert not dispatcher.accepts(tiny_task, [tiny_config], small_graph)

    def test_claim_commit_round_trip(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        info = dispatcher.register(workers=2)
        assert dispatcher.claim(info.executor_id).empty  # nothing pending
        configs = [_config(tiny_config, batch_size=b) for b in (32, 64, 128)]
        keys = ["k-0", "k-1", "k-2"]
        thread, out = _start_batch(
            dispatcher, tiny_task, configs, small_graph, keys
        )
        grant = dispatcher.claim(info.executor_id, timeout=5.0)
        assert not grant.empty
        assert sorted(grant.keys) == keys
        assert grant.task == tiny_task
        assert grant.fingerprint == graph_fingerprint(small_graph)
        assert dispatcher.pending_count == 0
        assert dispatcher.leased_count == 3
        records = {key: f"record-for-{key}" for key in grant.keys}
        outcome = dispatcher.commit(
            info.executor_id,
            grant.lease_id,
            list(grant.keys),
            [records[key] for key in grant.keys],
            idempotency_key=grant.lease_id,
        )
        assert outcome.accepted == 3
        assert outcome.duplicates == 0
        assert not outcome.replayed
        assert _finish(thread, out) == [records[key] for key in keys]
        assert dispatcher.service.stats.executed == 3
        snap = dispatcher.metrics.snapshot()
        assert snap["fleet_claims"] == 1
        assert snap["fleet_commits"] == 1
        assert snap[labeled("fleet_claims", executor=info.executor_id)] == 1
        assert info.claims == 1 and info.commits == 1

    def test_claim_orders_batch_longest_first(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        info = dispatcher.register(workers=3)
        # Submitted cheapest-first; the grant must come back costliest-first
        # so the makespan isn't dominated by a long run claimed last.
        configs = [
            _config(tiny_config, hidden_channels=h, batch_size=b)
            for h, b in ((8, 256), (32, 64), (64, 32))
        ]
        costs = [predicted_cost(tiny_task, c, small_graph) for c in configs]
        assert sorted(costs) == costs and len(set(costs)) == len(costs)
        keys = [f"k-{i}" for i in range(len(configs))]
        thread, out = _start_batch(
            dispatcher, tiny_task, configs, small_graph, keys
        )
        grant = dispatcher.claim(info.executor_id, timeout=5.0)
        granted_costs = [
            predicted_cost(grant.task, c, small_graph) for c in grant.configs
        ]
        assert granted_costs == sorted(granted_costs, reverse=True)
        # keys stay aligned with their (reordered) configs
        expect = {k: c for k, c in zip(keys, configs, strict=True)}
        assert [expect[k] for k in grant.keys] == list(grant.configs)
        dispatcher.commit(
            info.executor_id,
            grant.lease_id,
            list(grant.keys),
            [f"record-{k}" for k in grant.keys],
            idempotency_key=grant.lease_id,
        )
        assert _finish(thread, out) == [f"record-{k}" for k in keys]

    def test_retried_commit_replays_without_side_effects(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        info = dispatcher.register()
        thread, out = _start_batch(
            dispatcher, tiny_task, [tiny_config], small_graph, ["k-0"]
        )
        grant = dispatcher.claim(info.executor_id, timeout=5.0)
        first = dispatcher.commit(
            info.executor_id,
            grant.lease_id,
            list(grant.keys),
            ["the-record"],
            idempotency_key=grant.lease_id,
        )
        executed = dispatcher.service.stats.executed
        # the response was "dropped": the executor retries the exact POST
        second = dispatcher.commit(
            info.executor_id,
            grant.lease_id,
            list(grant.keys),
            ["the-record"],
            idempotency_key=grant.lease_id,
        )
        assert second.replayed
        assert (second.accepted, second.duplicates) == (
            first.accepted,
            first.duplicates,
        )
        assert dispatcher.service.stats.executed == executed  # no double count
        assert _finish(thread, out) == ["the-record"]

    def test_expired_lease_requeues_and_zombie_commit_is_duplicate(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        zombie = dispatcher.register()
        thread, out = _start_batch(
            dispatcher, tiny_task, [tiny_config], small_graph, ["k-0"]
        )
        stale = dispatcher.claim(zombie.executor_id, timeout=5.0)
        assert not stale.empty
        # the zombie never heartbeats again; the survivor's long-poll spans
        # the 0.2s TTL (keeping the fleet alive) and picks up the re-queued
        # keys the moment the sweep expires the stale lease
        survivor = dispatcher.register()
        grant = dispatcher.claim(survivor.executor_id, timeout=5.0)
        assert grant.keys == stale.keys  # the work came back
        dispatcher.commit(
            survivor.executor_id,
            grant.lease_id,
            list(grant.keys),
            ["survivor-record"],
            idempotency_key=grant.lease_id,
        )
        executed = dispatcher.service.stats.executed
        late = dispatcher.commit(
            zombie.executor_id,
            stale.lease_id,
            list(stale.keys),
            ["zombie-record"],
            idempotency_key=stale.lease_id,
        )
        assert late.accepted == 0
        assert late.duplicates == 1
        assert dispatcher.service.stats.executed == executed
        # the survivor's record won; the zombie's never landed
        assert _finish(thread, out) == ["survivor-record"]
        assert dispatcher.metrics.snapshot()["fleet_lease_expiries"] >= 1
        assert zombie.lease_expiries >= 1

    def test_heartbeat_renews_leases(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        info = dispatcher.register()
        thread, out = _start_batch(
            dispatcher, tiny_task, [tiny_config], small_graph, ["k-0"]
        )
        grant = dispatcher.claim(info.executor_id, timeout=5.0)
        deadline = time.monotonic() + 0.6  # 3x the TTL
        while time.monotonic() < deadline:
            assert dispatcher.heartbeat(info.executor_id) == 1
            time.sleep(0.05)
        assert (
            dispatcher.metrics.snapshot().get("fleet_lease_expiries", 0) == 0
        )
        dispatcher.commit(
            info.executor_id,
            grant.lease_id,
            list(grant.keys),
            ["kept-alive"],
            idempotency_key=grant.lease_id,
        )
        assert _finish(thread, out) == ["kept-alive"]

    def test_deregister_requeues_immediately(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        leaver = dispatcher.register()
        thread, out = _start_batch(
            dispatcher, tiny_task, [tiny_config], small_graph, ["k-0"]
        )
        grant = dispatcher.claim(leaver.executor_id, timeout=5.0)
        assert not grant.empty
        dispatcher.deregister(leaver.executor_id)  # graceful: no TTL wait
        assert dispatcher.pending_count == 1
        taker = dispatcher.register()
        regrant = dispatcher.claim(taker.executor_id, timeout=5.0)
        assert regrant.keys == grant.keys
        dispatcher.commit(
            taker.executor_id,
            regrant.lease_id,
            list(regrant.keys),
            ["taken-over"],
            idempotency_key=regrant.lease_id,
        )
        assert _finish(thread, out) == ["taken-over"]
        # the leaver's labeled series are gone, the taker's remain
        snap = dispatcher.metrics.snapshot()
        assert labeled("fleet_claims", executor=leaver.executor_id) not in snap
        assert snap[labeled("fleet_claims", executor=taker.executor_id)] == 1

    def test_dead_fleet_falls_back_to_local_pool(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        info = dispatcher.register()
        info.last_seen -= 100.0  # the whole fleet went silent
        key = dispatcher.service._keys(tiny_task, [tiny_config], small_graph)[0]
        thread, out = _start_batch(
            dispatcher, tiny_task, [tiny_config.canonical()], small_graph, [key]
        )
        records = _finish(thread, out)
        assert len(records) == 1
        assert records[0].accuracy >= 0.0  # a real training run happened
        assert dispatcher.service.stats.executed == 1
        snap = dispatcher.metrics.snapshot()
        assert snap["fleet_local_fallbacks"] == 1

    def test_commit_rejects_misaligned_batch(self, dispatcher):
        info = dispatcher.register()
        with pytest.raises(ServingError):
            dispatcher.commit(info.executor_id, None, ["k1", "k2"], ["r1"])

    def test_graph_lookup(
        self, dispatcher, tiny_task, tiny_config, small_graph
    ):
        with pytest.raises(ServingError):
            dispatcher.graph("no-such-fingerprint")
        info = dispatcher.register()
        thread, out = _start_batch(
            dispatcher, tiny_task, [tiny_config], small_graph, ["k-0"]
        )
        grant = dispatcher.claim(info.executor_id, timeout=5.0)
        assert dispatcher.graph(grant.fingerprint) is small_graph
        dispatcher.commit(
            info.executor_id,
            grant.lease_id,
            list(grant.keys),
            ["r"],
            idempotency_key=grant.lease_id,
        )
        _finish(thread, out)

    def test_claim_grant_none_shape(self):
        empty = ClaimGrant.none(4.0)
        assert empty.empty
        assert empty.keys == () and empty.configs == ()
        assert empty.ttl == 4.0


# ------------------------------------------------------------------- metrics
class TestLabeledMetrics:
    def test_labeled_rendering_is_key_sorted(self):
        assert labeled("fleet_claims") == "fleet_claims"
        assert (
            labeled("fleet_claims", executor="ex-0000")
            == 'fleet_claims{executor="ex-0000"}'
        )
        assert labeled("x", b="2", a="1") == 'x{a="1",b="2"}'

    def test_remove_forgets_either_kind(self):
        registry = MetricsRegistry()
        registry.inc("counter_one")
        registry.gauge("gauge_one", lambda: 7)
        assert registry.remove("counter_one") is True
        assert registry.remove("gauge_one") is True
        assert registry.remove("never_existed") is False
        assert registry.snapshot() == {}


# ----------------------------------------------------------------- HTTP end
@pytest.fixture()
def fleet_stack(small_graph, tmp_path):
    """A navigation server with a short fleet lease TTL plus its HTTP
    transport, for executor lifecycle and chaos tests."""
    server = NavigationServer(
        workers=2,
        graphs={"tiny": small_graph},
        cache_dir=str(tmp_path / "store"),
        fleet_lease_ttl=1.0,
    )
    http = NavigationHTTPServer(server)
    http.start()
    yield server, http
    http.stop()
    server.stop()


@pytest.fixture(scope="module")
def baseline_result(small_graph, tmp_path_factory):
    """The reference navigation, run entirely locally (no fleet) against a
    private store — the bit-for-bit yardstick for every fleet run."""
    server = NavigationServer(
        workers=2,
        graphs={"tiny": small_graph},
        cache_dir=str(tmp_path_factory.mktemp("baseline-store")),
    )
    try:
        yield NavigationClient(server).navigate(
            _task(), budget=8, profile_epochs=1, timeout=240
        )
    finally:
        server.stop()


class TestFleetHTTP:
    def test_register_heartbeat_claim_deregister(self, fleet_stack):
        server, http = fleet_stack
        client = FleetClient(http.url)
        granted = client.register(workers=2)
        assert granted.executor_id == "ex-0000"
        assert granted.lease_ttl == pytest.approx(1.0)
        assert granted.heartbeat_seconds == pytest.approx(1.0 / 3.0)
        assert client.heartbeat(granted.executor_id).renewed == 0
        assert client.claim(granted.executor_id, timeout=0.0).empty
        census = client.fleet_status()
        assert [row["executor_id"] for row in census.executors] == ["ex-0000"]
        assert census.pending == 0 and census.leased == 0
        assert client.deregister(granted.executor_id) is True
        with pytest.raises(UnknownExecutorError):
            client.heartbeat(granted.executor_id)

    def test_unknown_executor_maps_to_404(self, fleet_stack):
        _, http = fleet_stack
        code, payload = _post(
            f"{http.url}/v1/fleet/heartbeat",
            {"protocol": PROTOCOL_VERSION, "executor_id": "ex-9999"},
        )
        assert code == 404
        assert payload["error"]["kind"] == "UnknownExecutorError"

    def test_malformed_register_is_a_protocol_error(self, fleet_stack):
        _, http = fleet_stack
        code, payload = _post(
            f"{http.url}/v1/fleet/register",
            {"protocol": PROTOCOL_VERSION, "workers": 0},
        )
        assert code == 400
        assert payload["error"]["kind"] == "ProtocolError"

    def test_graph_fetch_round_trips_by_fingerprint(
        self, fleet_stack, small_graph
    ):
        server, http = fleet_stack
        fingerprint = graph_fingerprint(small_graph)
        server.fleet._graphs[fingerprint] = small_graph
        fetched = FleetClient(http.url).fetch_graph(fingerprint)
        assert graph_fingerprint(fetched) == fingerprint

    def test_fleet_navigation_matches_local_and_reruns_warm(
        self, fleet_stack, baseline_result
    ):
        server, http = fleet_stack
        executor = ProfilingExecutor(
            http.url, workers=2, claim_timeout=0.5
        )
        executor.start()
        try:
            client = NavigationClient(server)
            result = client.navigate(
                _task(), budget=8, profile_epochs=1, timeout=240
            )
            # bit-identical to the purely local run
            assert result.to_dict() == baseline_result.to_dict()
            # every training run happened on the executor, none on the server
            assert executor.runs > 0
            assert executor.committed == executor.runs
            snap = server.metrics.snapshot()
            assert snap["fleet_claims"] >= 1
            assert snap["fleet_commits"] >= 1
            assert snap.get("fleet_local_fallbacks", 0) == 0
            assert (
                snap[labeled("fleet_claims", executor=executor.executor_id)]
                >= 1
            )
            # warm rerun: the store answers, the fleet runs nothing new
            runs_before = executor.runs
            again = client.navigate(
                _task(), budget=8, profile_epochs=1, timeout=240
            )
            assert again.to_dict() == result.to_dict()
            assert executor.runs == runs_before
        finally:
            executor.stop()
        # graceful exit dropped the executor's labeled series
        snap = server.metrics.snapshot()
        assert (
            labeled("fleet_claims", executor=executor.executor_id) not in snap
        )
        assert snap["fleet_executors"] == 0

    def test_chaos_killing_an_executor_loses_no_work(
        self, fleet_stack, baseline_result
    ):
        server, http = fleet_stack
        victim = ProfilingExecutor(http.url, workers=1, claim_timeout=0.5)
        victim.before_run = lambda grant: victim.kill()  # die on first claim
        survivor = ProfilingExecutor(http.url, workers=2, claim_timeout=0.5)
        victim.start()
        try:
            handle = NavigationClient(server).submit(
                _task(), budget=8, profile_epochs=1
            )
            # the victim (alone in the fleet) claims the first batch and
            # vanishes without committing; its lease must expire and the
            # survivor must pick the work back up
            deadline = time.monotonic() + 30.0
            while victim.claimed == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert victim.claimed >= 1
            survivor.start()
            result = handle.result(timeout=240)
        finally:
            survivor.stop()
        assert result.to_dict() == baseline_result.to_dict()  # zero lost runs
        assert victim.committed == 0  # it really died uncommitted
        assert survivor.committed > 0
        snap = server.metrics.snapshot()
        assert snap["fleet_lease_expiries"] >= 1

    def test_idempotent_commit_over_http(
        self, fleet_stack, small_graph, tiny_config
    ):
        server, http = fleet_stack
        client = FleetClient(http.url)
        granted = client.register(workers=1)

        # keep our hand-rolled "executor" alive (and its lease renewed)
        # while the test slowly produces records on a local service
        beating = threading.Event()

        def heartbeats():
            while not beating.wait(0.2):
                client.heartbeat(granted.executor_id)

        beater = threading.Thread(target=heartbeats, daemon=True)
        beater.start()

        task = _task()
        configs = [_config(tiny_config, batch_size=b) for b in (32, 64)]
        batch: dict = {}

        def profile():
            batch["records"] = server.service.profile(
                task, configs, graph=small_graph
            )

        thread = threading.Thread(target=profile, daemon=True)
        thread.start()
        grant = client.claim(granted.executor_id, timeout=10.0)
        assert not grant.empty
        assert len(grant.keys) == 2

        # run the batch on a local service, exactly as an executor would
        local = ProfilingService()
        records = local.profile(
            task_from_wire(grant.task),
            [TrainingConfig.from_dict(c) for c in grant.configs],
            graph=small_graph,
        )
        body = FleetCommitRequest(
            executor_id=granted.executor_id,
            lease_id=grant.lease_id,
            keys=list(grant.keys),
            records=[record_to_dict(record) for record in records],
            idempotency_key=grant.lease_id,
        ).to_wire()
        headers = {IDEMPOTENCY_HEADER: grant.lease_id}

        code, first = _post(f"{http.url}/v1/fleet/commit", body, headers)
        assert code == 200
        assert first["accepted"] == 2 and not first["replayed"]
        executed = server.service.stats.executed
        stored = len(server.service.store)

        # the "response was lost" retry: byte-identical POST, same key
        code, second = _post(f"{http.url}/v1/fleet/commit", body, headers)
        assert code == 200
        assert second["replayed"] is True
        assert second["accepted"] == first["accepted"]
        assert second["duplicates"] == first["duplicates"]
        assert server.service.stats.executed == executed  # not double-counted
        assert len(server.service.store) == stored  # not double-written

        thread.join(timeout=60.0)
        beating.set()
        assert not thread.is_alive()
        assert [record_to_dict(r) for r in batch["records"]] == [
            record_to_dict(r) for r in records
        ]

    def test_zero_executor_server_runs_locally(self, fleet_stack):
        server, http = fleet_stack
        # nobody ever registered: the seam must leave the local path alone
        result = NavigationClient(server).navigate(
            _task(), budget=8, profile_epochs=1, timeout=240
        )
        assert result.report.num_ground_truth > 0
        assert server.service.stats.executed > 0  # ran on the server itself
        snap = server.metrics.snapshot()
        assert snap.get("fleet_claims", 0) == 0
        assert snap.get("fleet_commits", 0) == 0
        assert snap["fleet_executors"] == 0
