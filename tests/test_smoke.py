"""End-to-end smoke suite (``pytest -m smoke``) — the CI smoke job.

These are the serving, network and cancellation smokes that used to live as
copy-pasted shell steps in ``.github/workflows/ci.yml``, rewritten as
pytest tests so they run identically locally and in CI.  They use the real
synthetic datasets (not the tiny fixtures) and real subprocesses for the
network cases, so they are deliberately heavier than the unit suite —
``pytest.ini`` deselects them from a bare ``pytest`` run.

Run them with::

    PYTHONPATH=src python -m pytest -m smoke -q
"""

from __future__ import annotations

import json
import os
import re
import select
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cli
from repro.config import TaskSpec
from repro.serving import (
    JobStatus,
    NavigationClient,
    NavigationRequest,
    NavigationServer,
)
from repro.serving.fleet import FleetClient
from repro.serving.transport import RemoteNavigationClient

pytestmark = pytest.mark.smoke

REPO_ROOT = Path(__file__).resolve().parents[1]

#: the standard smoke workload: real dataset, minimum budget, one epoch.
SMOKE_SPEC = {
    "dataset": "ogbn-arxiv",
    "arch": "sage",
    "epochs": 1,
    "budget": 8,
    "profile_epochs": 1,
}


def _smoke_args(*extra: str) -> list[str]:
    return [
        "--dataset", "ogbn-arxiv", "--epochs", "1",
        "--budget", "8", "--profile-epochs", "1", *extra,
    ]


@pytest.fixture()
def jobs_file(tmp_path) -> str:
    path = tmp_path / "jobs.json"
    path.write_text(
        json.dumps(
            [
                SMOKE_SPEC,
                {**SMOKE_SPEC, "priorities": ["ex_tm"], "priority": 2},
            ]
        )
    )
    return str(path)


def _spawn(args: list[str]) -> subprocess.Popen:
    """Launch one repro CLI child with src/ on its import path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        args,
        cwd=str(REPO_ROOT),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


def _await_banner(proc: subprocess.Popen, pattern: bytes) -> str:
    """First regex group of ``pattern`` from the child's output.

    select + bounded os.read: a child that hangs *before* printing the
    banner must trip this 60s deadline with a diagnostic, not park the
    test on readline() until the CI job timeout kills it.
    """
    fd = proc.stdout.fileno()
    deadline = time.monotonic() + 60
    seen = b""
    while time.monotonic() < deadline:
        ready, _, _ = select.select([fd], [], [], 0.1)
        if ready:
            chunk = os.read(fd, 65536)
            if chunk:
                seen += chunk
                match = re.search(pattern, seen)
                if match:
                    return match.group(1).decode()
                continue
        if proc.poll() is not None:
            break
    raise AssertionError(f"child never printed its banner (output: {seen!r})")


class _Child:
    """Shared lifecycle for the smoke suite's repro child processes."""

    proc: subprocess.Popen

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover — last resort
            self.proc.kill()
            self.proc.wait()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _Server(_Child):
    """A real ``repro serve --port`` child process (the two-process smoke)."""

    def __init__(self, store: str | None, *extra: str) -> None:
        args = [sys.executable, "-m", "repro.cli", "serve", "--port", "0"]
        args += ["--cache-dir", store] if store else ["--no-store"]
        args += list(extra)
        self.proc = _spawn(args)
        self.url = _await_banner(self.proc, rb"serving on (http://\S+)")


class _Executor(_Child):
    """A real ``repro executor`` child joined to a server over HTTP."""

    def __init__(self, server_url: str, *extra: str) -> None:
        args = [
            sys.executable, "-m", "repro.cli", "executor",
            "--server", server_url, *extra,
        ]
        self.proc = _spawn(args)
        self.executor_id = _await_banner(self.proc, rb"executor (\S+) joined")

    def kill(self) -> None:
        """SIGKILL — the chaos path: no deregistration, no final commit."""
        self.proc.kill()
        self.proc.wait()


def _run_cli(capsys, *argv: str) -> tuple[int, str]:
    """One in-process CLI invocation; returns (exit code, stdout)."""
    code = cli.main(list(argv))
    return code, capsys.readouterr().out


# -------------------------------------------------------------- serving smoke
def test_serving_smoke_warm_store_runs_nothing(jobs_file, tmp_path, capsys):
    """``repro serve`` over a job file; the warm rerun is all cache hits."""
    store = str(tmp_path / "store")
    code, out = _run_cli(
        capsys, "serve", "--jobs", jobs_file, "--cache-dir", store
    )
    assert code == 0, out
    assert out.count("done") >= 2

    code, out = _run_cli(
        capsys, "serve", "--jobs", jobs_file, "--cache-dir", store
    )
    assert code == 0, out
    assert "profiling: 0 runs" in out, out


# -------------------------------------------------------------- network smoke
def test_network_smoke_remote_submit_and_warm_restart(tmp_path, capsys):
    """Two-process smoke: submit over HTTP, DONE results, then a server
    restart on the same store profiles nothing at all."""
    store = str(tmp_path / "net-store")
    with _Server(store) as server:
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url,
            *_smoke_args("--wait", "--timeout", "600"),
        )
        assert code == 0 and "job-0000 [done]" in out, out
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url,
            *_smoke_args("--priority", "ex_tm", "--wait", "--timeout", "600"),
        )
        assert code == 0 and "job-0001 [done]" in out, out
        code, out = _run_cli(capsys, "stats", "--server", server.url)
        assert code == 0 and "profiling:" in out

    # warm restart: a fresh process on the same store must profile nothing
    with _Server(store) as server:
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url,
            *_smoke_args("--wait", "--timeout", "600"),
        )
        assert code == 0 and "[done]" in out, out
        code, out = _run_cli(capsys, "stats", "--server", server.url)
        assert code == 0
        assert "profiling: 0 runs" in out, out


def test_follow_job_over_http_with_watch(capsys):
    """Follow-a-job smoke: ``submit --follow`` streams live progress lines
    and ``repro watch`` replays the finished job's whole event stream."""
    with _Server(None) as server:
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url, *_smoke_args("--follow"),
        )
        assert code == 0, out
        assert "submitted job-0000" in out
        # live progress lines arrived before the outcome line
        assert re.search(r"\[running\] profiling \d+/\d+ runs", out), out
        assert "[done] done" in out
        # the stream ends, then the outcome line closes the output
        assert "job-0000 [done]" in out.rstrip().splitlines()[-1]

        # a late watcher replays the identical stream from seq 0
        code, out = _run_cli(
            capsys, "watch", "job-0000", "--server", server.url
        )
        assert code == 0, out
        assert out.splitlines()[0].startswith("  #0 job-0000 [pending] queued")
        assert out.rstrip().splitlines()[-1].split()[1] == "job-0000"
        assert "[done] done" in out

        # metrics endpoint is live and consistent with the one job served
        code, out = _run_cli(capsys, "metrics", "--server", server.url)
        assert code == 0
        assert re.search(r"jobs_done\s+1", out), out


# --------------------------------------------------------- cancellation smoke
def test_cancellation_smoke_running_job(capsys):
    """Cancel one RUNNING job; survivors finish; no orphaned claims."""
    task = TaskSpec(dataset="ogbn-arxiv", arch="sage", epochs=1)

    def request(seed: int) -> NavigationRequest:
        return NavigationRequest(
            task=task, budget=8, profile_epochs=1, seed=seed
        )

    with NavigationServer(workers=1, cache_dir=None) as server:
        victim = server.submit(request(0))
        survivors = [server.submit(request(seed)) for seed in (1, 2)]
        deadline = time.monotonic() + 120
        while True:
            status = server.status(victim)
            if status is JobStatus.RUNNING:
                break
            assert status is JobStatus.PENDING, (
                f"victim went terminal before it could be cancelled: "
                f"{server.job(victim).describe()}"
            )
            assert time.monotonic() < deadline, "victim never started"
            time.sleep(0.01)
        assert server.cancel(victim), "cancel() on a RUNNING job must take"
        server.drain(timeout=600)

    assert server.status(victim) is JobStatus.CANCELLED
    assert all(
        server.status(job_id) is JobStatus.DONE for job_id in survivors
    )
    assert not server.profiler._inflight, (
        f"orphaned in-flight claims: {server.profiler._inflight}"
    )
    # the victim's event stream ends with its cancellation
    batch = server.events(victim, timeout=0)
    assert batch.done and batch.events[-1].phase == "cancelled"


# ----------------------------------------------------------------- fleet smoke
def test_fleet_smoke_remote_executor_matches_inprocess(tmp_path, capsys):
    """Two-process fleet smoke: a server plus one remote ``repro executor``
    over HTTP produces a bit-identical result to the purely in-process
    path, and a warm restart on the same store — executor attached —
    executes zero training runs anywhere."""
    task = TaskSpec(**{
        k: SMOKE_SPEC[k] for k in ("dataset", "arch", "epochs")
    })

    # the in-process yardstick (its own throwaway store)
    with NavigationServer(
        workers=1, cache_dir=str(tmp_path / "local-store")
    ) as local:
        baseline = NavigationClient(local).navigate(
            task, budget=8, profile_epochs=1, timeout=600
        )

    store = str(tmp_path / "fleet-store")
    with _Server(store, "--workers", "2", "--lease-ttl", "5") as server:
        with _Executor(server.url, "--workers", "2") as executor:
            result = RemoteNavigationClient(server.url).navigate(
                task, budget=8, profile_epochs=1, timeout=600
            )
            assert result.to_dict() == baseline.to_dict()
            # the fleet really did the work, visible per executor
            code, out = _run_cli(capsys, "metrics", "--server", server.url)
            assert code == 0
            assert re.search(r"fleet_claims\s+[1-9]", out), out
            assert re.search(r"fleet_commits\s+[1-9]", out), out
            assert f'fleet_claims{{executor="{executor.executor_id}"}}' in out
            code, out = _run_cli(capsys, "fleet", "status",
                                 "--server", server.url)
            assert code == 0 and executor.executor_id in out, out

    # warm restart on the same store, fleet attached: all cache hits, so
    # neither the server nor the executor runs a single candidate
    with _Server(store, "--workers", "2", "--lease-ttl", "5") as server:
        with _Executor(server.url, "--workers", "2"):
            again = RemoteNavigationClient(server.url).navigate(
                task, budget=8, profile_epochs=1, timeout=600
            )
            assert again.to_dict() == baseline.to_dict()
            code, out = _run_cli(capsys, "stats", "--server", server.url)
            assert code == 0
            assert "profiling: 0 runs" in out, out


def test_fleet_chaos_smoke_sigkill_mid_job(tmp_path, capsys):
    """Chaos smoke: SIGKILL one of two remote executors while it holds a
    lease; the job still completes and the re-issued lease is observable
    in the server's metrics."""
    task = TaskSpec(**{
        k: SMOKE_SPEC[k] for k in ("dataset", "arch", "epochs")
    })
    store = str(tmp_path / "chaos-store")
    with _Server(store, "--workers", "2", "--lease-ttl", "2") as server:
        with _Executor(
            server.url, "--workers", "1", "--max-candidates", "2"
        ) as victim, _Executor(server.url, "--workers", "2") as survivor:
            client = RemoteNavigationClient(server.url)
            handle = client.submit(task, budget=8, profile_epochs=1)

            # kill the victim the moment it holds an uncommitted lease
            fleet = FleetClient(server.url)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                rows = {
                    row["executor_id"]: row
                    for row in fleet.fleet_status().executors
                }
                mine = rows.get(victim.executor_id)
                if mine is not None and mine["leased_keys"] > 0:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("victim never claimed a lease")
            victim.kill()

            result = handle.result(timeout=600)
            assert result.report.num_ground_truth > 0
            assert survivor.executor_id  # still up

        code, out = _run_cli(capsys, "metrics", "--server", server.url)
        assert code == 0
        assert re.search(r"fleet_lease_expiries\s+[1-9]", out), out
        # the dead executor's lease went back to the fleet, not local
        assert not re.search(r"fleet_local_fallbacks\s+[1-9]", out), out
