"""End-to-end smoke suite (``pytest -m smoke``) — the CI smoke job.

These are the serving, network and cancellation smokes that used to live as
copy-pasted shell steps in ``.github/workflows/ci.yml``, rewritten as
pytest tests so they run identically locally and in CI.  They use the real
synthetic datasets (not the tiny fixtures) and real subprocesses for the
network cases, so they are deliberately heavier than the unit suite —
``pytest.ini`` deselects them from a bare ``pytest`` run.

Run them with::

    PYTHONPATH=src python -m pytest -m smoke -q
"""

from __future__ import annotations

import json
import os
import re
import select
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cli
from repro.config import TaskSpec
from repro.serving import JobStatus, NavigationRequest, NavigationServer

pytestmark = pytest.mark.smoke

REPO_ROOT = Path(__file__).resolve().parents[1]

#: the standard smoke workload: real dataset, minimum budget, one epoch.
SMOKE_SPEC = {
    "dataset": "ogbn-arxiv",
    "arch": "sage",
    "epochs": 1,
    "budget": 8,
    "profile_epochs": 1,
}


def _smoke_args(*extra: str) -> list[str]:
    return [
        "--dataset", "ogbn-arxiv", "--epochs", "1",
        "--budget", "8", "--profile-epochs", "1", *extra,
    ]


@pytest.fixture()
def jobs_file(tmp_path) -> str:
    path = tmp_path / "jobs.json"
    path.write_text(
        json.dumps(
            [
                SMOKE_SPEC,
                {**SMOKE_SPEC, "priorities": ["ex_tm"], "priority": 2},
            ]
        )
    )
    return str(path)


class _Server:
    """A real ``repro serve --port`` child process (the two-process smoke)."""

    def __init__(self, store: str | None, *extra: str) -> None:
        args = [sys.executable, "-m", "repro.cli", "serve", "--port", "0"]
        args += ["--cache-dir", store] if store else ["--no-store"]
        args += list(extra)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            args,
            cwd=str(REPO_ROOT),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        self.url = self._await_url()

    def _await_url(self) -> str:
        # select + bounded os.read: a child that hangs *before* printing
        # the banner must trip this 60s deadline with a diagnostic, not
        # park the test on readline() until the CI job timeout kills it.
        fd = self.proc.stdout.fileno()
        deadline = time.monotonic() + 60
        seen = b""
        while time.monotonic() < deadline:
            ready, _, _ = select.select([fd], [], [], 0.1)
            if ready:
                chunk = os.read(fd, 65536)
                if chunk:
                    seen += chunk
                    match = re.search(rb"serving on (http://\S+)", seen)
                    if match:
                        return match.group(1).decode()
                    continue
            if self.proc.poll() is not None:
                break
        raise AssertionError(f"server never came up (output: {seen!r})")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover — last resort
            self.proc.kill()
            self.proc.wait()

    def __enter__(self) -> "_Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _run_cli(capsys, *argv: str) -> tuple[int, str]:
    """One in-process CLI invocation; returns (exit code, stdout)."""
    code = cli.main(list(argv))
    return code, capsys.readouterr().out


# -------------------------------------------------------------- serving smoke
def test_serving_smoke_warm_store_runs_nothing(jobs_file, tmp_path, capsys):
    """``repro serve`` over a job file; the warm rerun is all cache hits."""
    store = str(tmp_path / "store")
    code, out = _run_cli(
        capsys, "serve", "--jobs", jobs_file, "--cache-dir", store
    )
    assert code == 0, out
    assert out.count("done") >= 2

    code, out = _run_cli(
        capsys, "serve", "--jobs", jobs_file, "--cache-dir", store
    )
    assert code == 0, out
    assert "profiling: 0 runs" in out, out


# -------------------------------------------------------------- network smoke
def test_network_smoke_remote_submit_and_warm_restart(tmp_path, capsys):
    """Two-process smoke: submit over HTTP, DONE results, then a server
    restart on the same store profiles nothing at all."""
    store = str(tmp_path / "net-store")
    with _Server(store) as server:
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url,
            *_smoke_args("--wait", "--timeout", "600"),
        )
        assert code == 0 and "job-0000 [done]" in out, out
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url,
            *_smoke_args("--priority", "ex_tm", "--wait", "--timeout", "600"),
        )
        assert code == 0 and "job-0001 [done]" in out, out
        code, out = _run_cli(capsys, "stats", "--server", server.url)
        assert code == 0 and "profiling:" in out

    # warm restart: a fresh process on the same store must profile nothing
    with _Server(store) as server:
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url,
            *_smoke_args("--wait", "--timeout", "600"),
        )
        assert code == 0 and "[done]" in out, out
        code, out = _run_cli(capsys, "stats", "--server", server.url)
        assert code == 0
        assert "profiling: 0 runs" in out, out


def test_follow_job_over_http_with_watch(capsys):
    """Follow-a-job smoke: ``submit --follow`` streams live progress lines
    and ``repro watch`` replays the finished job's whole event stream."""
    with _Server(None) as server:
        code, out = _run_cli(
            capsys,
            "submit", "--server", server.url, *_smoke_args("--follow"),
        )
        assert code == 0, out
        assert "submitted job-0000" in out
        # live progress lines arrived before the outcome line
        assert re.search(r"\[running\] profiling \d+/\d+ runs", out), out
        assert "[done] done" in out
        # the stream ends, then the outcome line closes the output
        assert "job-0000 [done]" in out.rstrip().splitlines()[-1]

        # a late watcher replays the identical stream from seq 0
        code, out = _run_cli(
            capsys, "watch", "job-0000", "--server", server.url
        )
        assert code == 0, out
        assert out.splitlines()[0].startswith("  #0 job-0000 [pending] queued")
        assert out.rstrip().splitlines()[-1].split()[1] == "job-0000"
        assert "[done] done" in out

        # metrics endpoint is live and consistent with the one job served
        code, out = _run_cli(capsys, "metrics", "--server", server.url)
        assert code == 0
        assert re.search(r"jobs_done\s+1", out), out


# --------------------------------------------------------- cancellation smoke
def test_cancellation_smoke_running_job(capsys):
    """Cancel one RUNNING job; survivors finish; no orphaned claims."""
    task = TaskSpec(dataset="ogbn-arxiv", arch="sage", epochs=1)

    def request(seed: int) -> NavigationRequest:
        return NavigationRequest(
            task=task, budget=8, profile_epochs=1, seed=seed
        )

    with NavigationServer(workers=1, cache_dir=None) as server:
        victim = server.submit(request(0))
        survivors = [server.submit(request(seed)) for seed in (1, 2)]
        deadline = time.monotonic() + 120
        while True:
            status = server.status(victim)
            if status is JobStatus.RUNNING:
                break
            assert status is JobStatus.PENDING, (
                f"victim went terminal before it could be cancelled: "
                f"{server.job(victim).describe()}"
            )
            assert time.monotonic() < deadline, "victim never started"
            time.sleep(0.01)
        assert server.cancel(victim), "cancel() on a RUNNING job must take"
        server.drain(timeout=600)

    assert server.status(victim) is JobStatus.CANCELLED
    assert all(
        server.status(job_id) is JobStatus.DONE for job_id in survivors
    )
    assert not server.profiler._inflight, (
        f"orphaned in-flight claims: {server.profiler._inflight}"
    )
    # the victim's event stream ends with its cancellation
    batch = server.events(victim, timeout=0)
    assert batch.done and batch.events[-1].phase == "cancelled"
